//! Open-loop request traffic for the serving layer.
//!
//! The paper's consumers do not hand the library a ready-made batch: PELE
//! integrates thousands of independent cells, XGC regenerates its band
//! systems every timestep, SUNDIALS re-factors per Newton iteration. A
//! serving layer sees that as a *stream* of individual `(AB, B)` requests
//! arriving at some rate with mixed shapes. This module generates such a
//! stream: Poisson (exponential inter-arrival) arrivals, a weighted shape
//! mix, diagonally-dominant payloads (optionally poisoned with exactly
//! singular systems to exercise per-lane failure isolation), and a
//! per-request deadline budget.
//!
//! Open-loop means arrival times are fixed up front and never react to
//! service latency — the standard worst-case admission model for a server
//! (a closed loop would self-throttle and hide overload behavior).
//! Everything is deterministic given the RNG seed.

use gbatch_core::band::BandMatrixMut;
use gbatch_core::{Precision, ShapeKey};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// One entry of the traffic's shape mix.
#[derive(Debug, Clone, Copy)]
pub struct ShapeMix {
    /// The request geometry.
    pub shape: ShapeKey,
    /// Relative weight (need not be normalized; must be positive).
    pub weight: f64,
}

/// Traffic-stream configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Mean arrival rate over the whole mix, in requests per second.
    pub rate_hz: f64,
    /// Deadline budget granted to every request, in seconds from its
    /// arrival — the serving layer must answer (or spill) within it.
    pub deadline_s: f64,
    /// Weighted shape mix; arrivals draw shapes independently.
    pub mix: Vec<ShapeMix>,
    /// When `Some(k)`, every `k`-th request (1-based count, so request
    /// ids `k-1, 2k-1, ...`) gets an exactly singular matrix (first
    /// column zeroed) to exercise per-lane failure isolation downstream.
    pub poison_every: Option<usize>,
}

impl TrafficConfig {
    /// A Section-2-flavoured four-bucket mix: PELE-like small kinetics
    /// systems, an XGC-like finite-element stencil, SUNDIALS-like BDF
    /// matrices, and a tridiagonal stream — all factor storage, 1 RHS.
    pub fn section2_mix(rate_hz: f64, deadline_s: f64) -> Self {
        TrafficConfig {
            rate_hz,
            deadline_s,
            mix: vec![
                // PELE: "many are sized 50 or less", moderate band.
                ShapeMix {
                    shape: ShapeKey::gbsv(50, 4, 4, 1),
                    weight: 4.0,
                },
                // XGC: order 193, Q3 stencil => kl = ku = 9.
                ShapeMix {
                    shape: ShapeKey::gbsv(193, 9, 9, 1),
                    weight: 2.0,
                },
                // SUNDIALS ReactEval-like: order 128, (2, 3) band.
                ShapeMix {
                    shape: ShapeKey::gbsv(128, 2, 3, 1),
                    weight: 2.0,
                },
                // Tridiagonal stream (ADI-style sweeps).
                ShapeMix {
                    shape: ShapeKey::gbsv(64, 1, 1, 1),
                    weight: 1.0,
                },
            ],
            poison_every: None,
        }
    }

    /// The Section-2 mix sprinkled with rare **single large systems**:
    /// `n ∈ {10^4, 10^5, 10^6}` at a `(8, 8)` band, one RHS, arriving as
    /// lone requests (they never share a bucket with the small shapes).
    /// These are the streamed circulation/field solves that motivate the
    /// SPIKE split regime: each request is far too large to wait for
    /// same-shape company, yet splits into enough diagonal blocks to keep
    /// a device busy on its own. Weights put the large tail at roughly 1%
    /// of arrivals, heaviest at the smallest order.
    pub fn few_large(rate_hz: f64, deadline_s: f64) -> Self {
        let mut cfg = Self::section2_mix(rate_hz, deadline_s);
        cfg.mix.push(ShapeMix {
            shape: ShapeKey::gbsv(10_000, 8, 8, 1),
            weight: 0.06,
        });
        cfg.mix.push(ShapeMix {
            shape: ShapeKey::gbsv(100_000, 8, 8, 1),
            weight: 0.03,
        });
        cfg.mix.push(ShapeMix {
            shape: ShapeKey::gbsv(1_000_000, 8, 8, 1),
            weight: 0.01,
        });
        cfg
    }
}

/// One request of the stream: arrival time, geometry, payload, deadline.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Sequence number (0-based, unique per stream).
    pub id: u64,
    /// Arrival time in seconds from stream start.
    pub at_s: f64,
    /// Request geometry.
    pub shape: ShapeKey,
    /// Absolute response deadline in stream time (`at_s + budget`).
    pub deadline_s: f64,
    /// Band payload in the shape's minimal-`ldab` storage.
    pub ab: Vec<f64>,
    /// Right-hand-side payload (`n * nrhs`, column-major).
    pub rhs: Vec<f64>,
}

/// Generate `n` Poisson arrivals. Deterministic for a given seed: shape
/// draws, inter-arrival gaps, and payload entries all come from `rng` in a
/// fixed order.
///
/// # Panics
/// Panics when the mix is empty, a weight is not positive, or the rate is
/// not positive.
pub fn poisson_traffic(rng: &mut impl Rng, n: usize, cfg: &TrafficConfig) -> Vec<Arrival> {
    assert!(!cfg.mix.is_empty(), "traffic mix must not be empty");
    assert!(cfg.rate_hz > 0.0, "arrival rate must be positive");
    assert!(
        cfg.mix.iter().all(|m| m.weight > 0.0),
        "mix weights must be positive"
    );
    let total_w: f64 = cfg.mix.iter().map(|m| m.weight).sum();
    let uni = Uniform::new(0.0f64, 1.0);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        // Exponential inter-arrival gap: -ln(1 - U) / rate, U in [0, 1).
        let u = uni.sample(rng);
        t += -(1.0 - u).ln() / cfg.rate_hz;
        // Weighted shape draw.
        let mut pick = uni.sample(rng) * total_w;
        let mut shape = cfg.mix[0].shape;
        for m in &cfg.mix {
            if pick < m.weight {
                shape = m.shape;
                break;
            }
            pick -= m.weight;
        }
        let poisoned = cfg
            .poison_every
            .is_some_and(|k| k > 0 && (id + 1) % k as u64 == 0);
        let (ab, rhs) = request_payload(rng, &shape, poisoned);
        out.push(Arrival {
            id,
            at_s: t,
            shape,
            deadline_s: t + cfg.deadline_s,
            ab,
            rhs,
        });
    }
    out
}

/// A poison storm: every `every` requests, `len` *consecutive* arrivals
/// carry exactly singular operators. Bisect isolation handles a lone
/// poisoned lane cheaply; a storm forces repeated splits in one flush —
/// the adversarial case for the retry machinery.
#[derive(Debug, Clone, Copy)]
pub struct PoisonStorm {
    /// Storm period in requests (ids `p, 2p, ...` start storms; a period
    /// of 0 disables storms).
    pub every: usize,
    /// Consecutive poisoned requests per storm.
    pub len: usize,
}

/// Adversarial traffic for fleet soak tests: everything the plain
/// Poisson stream is *not*. Each dimension is independently seeded and
/// deterministic:
///
/// - **bursty arrivals** — a two-state Markov-modulated Poisson process
///   (calm/burst), sojourn lengths geometric-ish from the stream RNG, the
///   burst state multiplying the arrival rate;
/// - **shape churn** — only a rotating window of the mix is active at a
///   time, so the server's working set of buckets (and the factor
///   cache's) keeps shifting instead of converging;
/// - **poison storms** — runs of consecutive singular operators
///   ([`PoisonStorm`]);
/// - **interleaved precision** — every `k`-th request is re-tagged
///   `f32`, so single- and double-precision streams share the queue but
///   never a bucket.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Base rate/deadline/mix (the calm-state parameters).
    pub base: TrafficConfig,
    /// Burst-state arrival-rate multiplier (1.0 disables bursts).
    pub burst_multiplier: f64,
    /// Mean burst sojourn, in requests.
    pub mean_burst: usize,
    /// Mean calm sojourn, in requests.
    pub mean_calm: usize,
    /// Requests per churn phase (0 disables churn).
    pub churn_period: usize,
    /// Active mix entries per churn phase (clamped to `[1, mix.len()]`).
    pub churn_width: usize,
    /// Poison storms, if any.
    pub poison_storm: Option<PoisonStorm>,
    /// Re-tag every `k`-th request as `f32` (`None` disables).
    pub f32_every: Option<usize>,
}

impl AdversarialConfig {
    /// The canonical adversarial fleet mix used by the fleet soak, the
    /// bench's fleet section and the `fleet_demo` example: the Section-2
    /// small-shape mix plus a rare large-`n` SPIKE lane, 8× bursts,
    /// 3-wide shape churn every 1000 requests, 8-request poison storms,
    /// and an f32 stream interleaved at one request in seven.
    pub fn fleet_mix(rate_hz: f64, deadline_s: f64) -> Self {
        let mut base = TrafficConfig::section2_mix(rate_hz, deadline_s);
        // A lone-request SPIKE lane: large enough for the split regime,
        // small enough for debug-build soaks.
        base.mix.push(ShapeMix {
            shape: ShapeKey::gbsv(4096, 2, 2, 1),
            weight: 0.05,
        });
        AdversarialConfig {
            base,
            burst_multiplier: 8.0,
            mean_burst: 64,
            mean_calm: 256,
            churn_period: 1000,
            churn_width: 3,
            poison_storm: Some(PoisonStorm {
                every: 1500,
                len: 8,
            }),
            f32_every: Some(7),
        }
    }
}

/// Generate `n` adversarial arrivals per [`AdversarialConfig`]. Like
/// [`poisson_traffic`], the stream is a pure function of the RNG seed:
/// state transitions, gaps, shape draws and payloads consume `rng` in a
/// fixed order.
///
/// # Panics
/// Panics when the mix is empty, a weight is not positive, the rate is
/// not positive, or the burst multiplier is not positive.
pub fn adversarial_traffic(rng: &mut impl Rng, n: usize, cfg: &AdversarialConfig) -> Vec<Arrival> {
    assert!(!cfg.base.mix.is_empty(), "traffic mix must not be empty");
    assert!(cfg.base.rate_hz > 0.0, "arrival rate must be positive");
    assert!(
        cfg.burst_multiplier > 0.0,
        "burst multiplier must be positive"
    );
    assert!(
        cfg.base.mix.iter().all(|m| m.weight > 0.0),
        "mix weights must be positive"
    );
    let uni = Uniform::new(0.0f64, 1.0);
    let mix_len = cfg.base.mix.len();
    let width = cfg.churn_width.clamp(1, mix_len);
    let mut t = 0.0f64;
    // MMPP state: start calm; sojourn lengths drawn at state entry.
    let mut bursting = false;
    let mut sojourn = 0usize;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        if sojourn == 0 {
            bursting = !bursting;
            let mean = if bursting {
                cfg.mean_burst
            } else {
                cfg.mean_calm
            }
            .max(1);
            let u = uni.sample(rng);
            sojourn = ((-(1.0 - u).ln() * mean as f64).round() as usize).max(1);
        }
        sojourn -= 1;
        let rate = cfg.base.rate_hz * if bursting { cfg.burst_multiplier } else { 1.0 };
        let u = uni.sample(rng);
        t += -(1.0 - u).ln() / rate;
        // Shape churn: a rotating window of the mix is active this phase.
        let phase = (id as usize)
            .checked_div(cfg.churn_period)
            .map_or(0, |p| p % mix_len);
        let total_w: f64 = (0..width)
            .map(|j| cfg.base.mix[(phase + j) % mix_len].weight)
            .sum();
        let mut pick = uni.sample(rng) * total_w;
        let mut shape = cfg.base.mix[phase].shape;
        for j in 0..width {
            let m = &cfg.base.mix[(phase + j) % mix_len];
            if pick < m.weight {
                shape = m.shape;
                break;
            }
            pick -= m.weight;
        }
        if cfg
            .f32_every
            .is_some_and(|k| k > 0 && (id + 1) % k as u64 == 0)
        {
            shape = shape.with_precision(Precision::F32);
        }
        let poisoned = cfg.poison_storm.is_some_and(|s| {
            s.every > 0 && (id as usize % s.every) < s.len && id as usize >= s.every
        });
        let (ab, rhs) = request_payload(rng, &shape, poisoned);
        out.push(Arrival {
            id,
            at_s: t,
            shape,
            deadline_s: t + cfg.base.deadline_s,
            ab,
            rhs,
        });
    }
    out
}

/// Build one request's payload: a diagonally-dominant band matrix in the
/// shape's minimal storage plus a bounded random RHS. `poisoned` zeroes
/// the whole first column, making the system exactly singular at the
/// first pivot step.
pub fn request_payload(
    rng: &mut impl Rng,
    shape: &ShapeKey,
    poisoned: bool,
) -> (Vec<f64>, Vec<f64>) {
    let l = shape.layout().expect("shape keys describe valid layouts");
    let uni = Uniform::new_inclusive(-1.0f64, 1.0);
    let mut ab = vec![0.0f64; l.len()];
    {
        let mut m = BandMatrixMut {
            layout: l,
            data: &mut ab,
        };
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                m.set(i, j, uni.sample(rng));
            }
            let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
            m.set(j, j, sum + 1.0);
        }
        if poisoned {
            let (s, e) = l.col_rows(0);
            for i in s..e {
                m.set(i, 0, 0.0);
            }
        }
    }
    let rhs: Vec<f64> = (0..shape.rhs_len()).map(|_| uni.sample(rng)).collect();
    (ab, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_under_seed() {
        let cfg = TrafficConfig::section2_mix(1e4, 0.05);
        let a = poisson_traffic(&mut StdRng::seed_from_u64(5), 200, &cfg);
        let b = poisson_traffic(&mut StdRng::seed_from_u64(5), 200, &cfg);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.at_s, y.at_s);
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.ab, y.ab);
            assert_eq!(x.rhs, y.rhs);
        }
    }

    #[test]
    fn arrivals_are_ordered_and_rate_is_plausible() {
        let cfg = TrafficConfig::section2_mix(1e4, 0.05);
        let a = poisson_traffic(&mut StdRng::seed_from_u64(7), 4000, &cfg);
        for w in a.windows(2) {
            assert!(w[1].at_s >= w[0].at_s, "arrival times must be sorted");
        }
        let span = a.last().unwrap().at_s - a[0].at_s;
        let rate = 3999.0 / span;
        assert!(
            (0.8..1.25).contains(&(rate / 1e4)),
            "empirical rate {rate:.0} Hz vs configured 10000 Hz"
        );
        // Deadlines carry the configured budget.
        assert!(a
            .iter()
            .all(|r| (r.deadline_s - r.at_s - 0.05).abs() < 1e-12));
    }

    #[test]
    fn mix_covers_every_shape() {
        let cfg = TrafficConfig::section2_mix(1e3, 0.1);
        let a = poisson_traffic(&mut StdRng::seed_from_u64(11), 2000, &cfg);
        for m in &cfg.mix {
            let count = a.iter().filter(|r| r.shape == m.shape).count();
            assert!(count > 0, "shape {} never drawn", m.shape);
        }
        // Weights are respected roughly: the heaviest bucket dominates.
        let pele = a.iter().filter(|r| r.shape.n == 50).count();
        assert!(pele > 2000 * 3 / 10, "weight-4 of 9 bucket got {pele}");
    }

    #[test]
    fn few_large_extends_the_mix_with_lone_large_systems() {
        let cfg = TrafficConfig::few_large(1e4, 0.05);
        let small = TrafficConfig::section2_mix(1e4, 0.05);
        // The small mix rides along unchanged.
        for (a, b) in cfg.mix.iter().zip(&small.mix) {
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.weight, b.weight);
        }
        // Three large single-matrix buckets, one per decade, valid
        // layouts, rare relative to the small traffic.
        let large: Vec<_> = cfg.mix[small.mix.len()..].to_vec();
        assert_eq!(large.len(), 3);
        let small_w: f64 = small.mix.iter().map(|m| m.weight).sum();
        for (decade, m) in large.iter().enumerate() {
            assert_eq!(m.shape.n, 10_000 * 10usize.pow(decade as u32));
            assert_eq!((m.shape.kl, m.shape.ku, m.shape.nrhs), (8, 8, 1));
            assert!(m.shape.layout().is_ok());
            assert!(m.weight > 0.0 && m.weight < small_w / 50.0);
        }
        // Drawing from the mix stays well-formed; any large arrival
        // carries a full payload at its shape's minimal storage. Keep the
        // draw small — a 10^6-order payload is ~200 MB.
        let mut trimmed = cfg.clone();
        trimmed.mix.retain(|m| m.shape.n <= 10_000);
        let a = poisson_traffic(&mut StdRng::seed_from_u64(17), 400, &trimmed);
        let big = a.iter().filter(|r| r.shape.n == 10_000).count();
        assert!(big >= 1, "the large bucket must actually be drawn");
        for r in a.iter().filter(|r| r.shape.n == 10_000) {
            assert_eq!(r.ab.len(), r.shape.ab_len());
            assert_eq!(r.rhs.len(), r.shape.rhs_len());
        }
    }

    #[test]
    fn payload_solves_and_poison_is_singular() {
        let shape = ShapeKey::gbsv(32, 2, 3, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let (mut ab, _rhs) = request_payload(&mut rng, &shape, false);
        let l = shape.layout().unwrap();
        let mut piv = vec![0i32; 32];
        assert_eq!(gbatch_core::gbtf2::gbtf2(&l, &mut ab, &mut piv), 0);

        let (mut bad, _) = request_payload(&mut rng, &shape, true);
        assert_eq!(gbatch_core::gbtf2::gbtf2(&l, &mut bad, &mut piv), 1);
    }

    #[test]
    fn adversarial_stream_is_deterministic_and_bursty() {
        let cfg = AdversarialConfig::fleet_mix(1e4, 0.05);
        let a = adversarial_traffic(&mut StdRng::seed_from_u64(21), 3000, &cfg);
        let b = adversarial_traffic(&mut StdRng::seed_from_u64(21), 3000, &cfg);
        assert_eq!(a.len(), 3000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.at_s, x.shape), (y.id, y.at_s, y.shape));
            assert_eq!(x.ab, y.ab);
        }
        for w in a.windows(2) {
            assert!(w[1].at_s >= w[0].at_s);
        }
        // Burstiness: the squared coefficient of variation of the gaps of
        // an MMPP is strictly above a plain Poisson's 1.0.
        let gaps: Vec<f64> = a.windows(2).map(|w| w[1].at_s - w[0].at_s).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.2, "MMPP gaps should overdisperse: cv² = {cv2:.2}");
    }

    #[test]
    fn adversarial_churn_storms_and_precision_interleave() {
        let cfg = AdversarialConfig::fleet_mix(1e4, 0.05);
        let a = adversarial_traffic(&mut StdRng::seed_from_u64(23), 6000, &cfg);
        // Precision interleave: exactly every 7th request is f32.
        for r in &a {
            let want_f32 = (r.id + 1) % 7 == 0;
            assert_eq!(r.shape.precision == Precision::F32, want_f32, "id {}", r.id);
        }
        // Poison storms: 8 consecutive singular operators per period of
        // 1500, none before the first period elapses.
        let storm = cfg.poison_storm.unwrap();
        for r in &a {
            let id = r.id as usize;
            let in_storm = id >= storm.every && id % storm.every < storm.len;
            let l = r.shape.layout().unwrap();
            let mut ab = r.ab.clone();
            let mut piv = vec![0i32; l.n];
            let info = gbatch_core::gbtf2::gbtf2(&l, &mut ab, &mut piv);
            assert_eq!(info > 0, in_storm, "id {} poison mismatch", r.id);
        }
        // Shape churn: different phases activate different mix windows,
        // so consecutive phases draw measurably different shape sets.
        let shapes_in = |lo: usize, hi: usize| -> std::collections::BTreeSet<ShapeKey> {
            a.iter()
                .filter(|r| (lo..hi).contains(&(r.id as usize)))
                .map(|r| r.shape.with_precision(Precision::F64))
                .collect()
        };
        let p0 = shapes_in(0, 1000);
        let p3 = shapes_in(3000, 4000);
        assert_ne!(p0, p3, "churn phases must rotate the active shapes");
    }

    #[test]
    fn poison_every_marks_exact_ids() {
        let mut cfg = TrafficConfig::section2_mix(1e4, 0.05);
        cfg.poison_every = Some(50);
        let a = poisson_traffic(&mut StdRng::seed_from_u64(13), 200, &cfg);
        for r in &a {
            let l = r.shape.layout().unwrap();
            let mut ab = r.ab.clone();
            let mut piv = vec![0i32; l.n];
            let info = gbatch_core::gbtf2::gbtf2(&l, &mut ab, &mut piv);
            if (r.id + 1) % 50 == 0 {
                assert_eq!(info, 1, "request {} should be poisoned", r.id);
            } else {
                assert_eq!(info, 0, "request {} should be healthy", r.id);
            }
        }
    }
}
