//! Symbolic integer expressions over named shape parameters.
//!
//! Kernel access models describe shared-memory offsets, lengths, bounds
//! and guards as [`Expr`] trees in symbols like `n`, `kl`, `ku`, `j`.
//! The trees are small and closed under the four things band-kernel index
//! arithmetic actually uses: constants, `+`, `-`, `*`, `min` and `max`.
//! Two consumers walk them: the conformance concretizer evaluates them
//! under a fully concrete environment ([`Expr::eval`]), and the race
//! prover lowers them to linear forms with case splits for `min`/`max`
//! ([`crate::lin::linearize`]).

use std::collections::BTreeMap;

/// Concrete assignment of symbols to integer values.
pub type Env = BTreeMap<&'static str, i64>;

/// A symbolic integer expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    K(i64),
    /// Named symbol.
    V(&'static str),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product (the race prover requires one factor to ground to a
    /// constant; the concretizer evaluates any product).
    Mul(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum.
    Max(Box<Expr>, Box<Expr>),
    /// Round up to a multiple of 8 (the shared-memory arena's allocation
    /// grain). Only meaningful in shared-memory byte formulas; the race
    /// prover rejects it in access offsets.
    Ceil8(Box<Expr>),
}

/// Constant expression.
pub fn k(v: i64) -> Expr {
    Expr::K(v)
}

/// Symbol expression.
pub fn v(name: &'static str) -> Expr {
    Expr::V(name)
}

/// `min(a, b)`.
pub fn emin(a: Expr, b: Expr) -> Expr {
    Expr::Min(Box::new(a), Box::new(b))
}

/// `max(a, b)`.
pub fn emax(a: Expr, b: Expr) -> Expr {
    Expr::Max(Box::new(a), Box::new(b))
}

/// `e` rounded up to a multiple of 8 bytes (one `SharedMem` grain).
pub fn ceil8(e: Expr) -> Expr {
    Expr::Ceil8(Box::new(e))
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Expr {
    /// Evaluate under a concrete environment. Panics on an unbound symbol
    /// — that is a model-authoring error, not an input condition.
    pub fn eval(&self, env: &Env) -> i64 {
        match self {
            Expr::K(c) => *c,
            Expr::V(name) => *env
                .get(name)
                .unwrap_or_else(|| panic!("unbound symbol `{name}` in access model")),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Min(a, b) => a.eval(env).min(b.eval(env)),
            Expr::Max(a, b) => a.eval(env).max(b.eval(env)),
            Expr::Ceil8(a) => (a.eval(env) + 7).div_euclid(8) * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_walks_the_tree() {
        let e = emin(v("n"), k(3) * v("kl") + k(1)) - emax(k(0), v("kl") - v("n"));
        let env = Env::from([("n", 10), ("kl", 2)]);
        assert_eq!(e.eval(&env), 7);
    }

    #[test]
    #[should_panic(expected = "unbound symbol `missing`")]
    fn eval_rejects_unbound_symbols() {
        v("missing").eval(&Env::new());
    }
}
