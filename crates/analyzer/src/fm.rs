//! Rational feasibility of linear inequality systems by Fourier–Motzkin
//! elimination.
//!
//! The race prover encodes "these two accesses conflict" as a system of
//! linear constraints (`Lin >= 0` each) and asks whether any assignment
//! satisfies it. Fourier–Motzkin decides *rational* feasibility exactly:
//! if the system is rationally infeasible it is certainly integer
//! infeasible, so `feasible(..) == false` is a sound proof that the
//! conflict cannot happen. The converse direction (rationally feasible
//! but integer infeasible) can only cause a spurious *potential* conflict,
//! which the prover then fails to concretize and reports as unproven —
//! never a missed race.

use crate::lin::{Lin, VKey};
use std::collections::BTreeSet;

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Divide all coefficients (constant included) by their gcd. Rational
/// scaling preserves the solution set of `lin >= 0`.
fn normalize(mut lin: Lin) -> Lin {
    let mut g = lin.k.abs();
    for c in lin.terms.values() {
        g = gcd(g, *c);
    }
    if g > 1 {
        lin.k /= g;
        for c in lin.terms.values_mut() {
            *c /= g;
        }
    }
    lin
}

/// Growth cap: a system that explodes past this many constraints is
/// reported feasible ("unknown"), which the prover treats as a potential
/// conflict — conservative, never unsound. Real model systems stay tiny.
const MAX_CONSTRAINTS: usize = 50_000;

/// Whether the system `{ c >= 0 | c in cons }` has a rational solution.
pub fn feasible(cons: &[Lin]) -> bool {
    let mut system: BTreeSet<Lin> = BTreeSet::new();
    for c in cons {
        let c = normalize(c.clone());
        if let Some(val) = c.as_const() {
            if val < 0 {
                return false; // constant contradiction
            }
            continue;
        }
        system.insert(c);
    }

    while let Some(var) = pick_var(&system) {
        let mut lower = Vec::new(); // coeff > 0: gives a lower bound on var
        let mut upper = Vec::new(); // coeff < 0: gives an upper bound
        let mut rest = BTreeSet::new();
        for c in std::mem::take(&mut system) {
            match c.terms.get(&var).copied() {
                Some(a) if a > 0 => lower.push((a, c)),
                Some(a) => upper.push((-a, c)),
                None => {
                    rest.insert(c);
                }
            }
        }
        system = rest;
        // a·x + f >= 0  (a > 0)  and  -b·x + g >= 0  (b > 0)
        // combine to  b·f + a·g >= 0  with x eliminated.
        for (a, lo) in &lower {
            for (b, up) in &upper {
                let mut combined = lo.scale(*b).add(&up.scale(*a));
                combined.terms.remove(&var);
                let combined = normalize(combined);
                if let Some(val) = combined.as_const() {
                    if val < 0 {
                        return false;
                    }
                    continue;
                }
                system.insert(combined);
                if system.len() > MAX_CONSTRAINTS {
                    return true; // give up: treat as (potentially) feasible
                }
            }
        }
    }
    // All variables eliminated without hitting a constant contradiction.
    true
}

/// Pick the variable whose elimination produces the fewest combined
/// constraints (classic min-product heuristic); `None` when var-free.
fn pick_var(system: &BTreeSet<Lin>) -> Option<VKey> {
    let mut counts: std::collections::BTreeMap<VKey, (usize, usize)> = Default::default();
    for c in system {
        for (key, coeff) in &c.terms {
            let e = counts.entry(*key).or_insert((0, 0));
            if *coeff > 0 {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    counts
        .into_iter()
        .min_by_key(|(_, (lo, up))| lo * up)
        .map(|(key, _)| key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &'static str) -> Lin {
        Lin::var((name, 0))
    }

    #[test]
    fn trivial_systems() {
        assert!(feasible(&[]));
        assert!(feasible(&[Lin::konst(0)]));
        assert!(!feasible(&[Lin::konst(-1)]));
    }

    #[test]
    fn bounded_interval() {
        // x >= 3 and 5 - x >= 0: feasible.
        assert!(feasible(&[
            var("x").sub(&Lin::konst(3)),
            Lin::konst(5).sub(&var("x")),
        ]));
        // x >= 6 and 5 - x >= 0: infeasible.
        assert!(!feasible(&[
            var("x").sub(&Lin::konst(6)),
            Lin::konst(5).sub(&var("x")),
        ]));
    }

    #[test]
    fn chained_variables() {
        // x >= y + 1, y >= x: infeasible.
        let x = var("x");
        let y = var("y");
        assert!(!feasible(&[x.sub(&y).sub(&Lin::konst(1)), y.sub(&x),]));
        // x >= y + 1, y >= 0, 10 - x >= 0: feasible.
        assert!(feasible(&[
            x.sub(&y).sub(&Lin::konst(1)),
            y.clone(),
            Lin::konst(10).sub(&x),
        ]));
    }

    #[test]
    fn scaled_combination() {
        // 2x - 3 >= 0 and 1 - x >= 0: rationally feasible (x = 1.5 is not
        // integral, but FM decides rationals — and 1.5 is a solution over
        // the rationals anyway... x in [1.5, 1] is empty!). Check hard:
        // 2x >= 3 requires x >= 1.5; x <= 1 contradicts.
        assert!(!feasible(&[
            var("x").scale(2).sub(&Lin::konst(3)),
            Lin::konst(1).sub(&var("x")),
        ]));
        // 2x - 3 >= 0 and 2 - x >= 0: feasible (x = 1.5 .. 2).
        assert!(feasible(&[
            var("x").scale(2).sub(&Lin::konst(3)),
            Lin::konst(2).sub(&var("x")),
        ]));
    }

    #[test]
    fn band_style_disjointness() {
        // The shape of a real obligation: two column ranges with a gap.
        // base2 - base1 = 7·c with c >= 1; overlap needs base1 + len - 1 >=
        // base2 with len <= 3: 7c <= 2 — infeasible.
        let c = var("c");
        let len = var("len");
        assert!(!feasible(&[
            c.sub(&Lin::konst(1)),                    // c >= 1
            len.sub(&Lin::konst(1)),                  // len >= 1
            Lin::konst(3).sub(&len),                  // len <= 3
            len.sub(&Lin::konst(1)).sub(&c.scale(7)), // len - 1 - 7c >= 0 (overlap)
        ]));
    }
}
