//! Declarative kernel access models.
//!
//! Each kernel family registers a [`KernelModel`]: its shared-memory
//! allocations, one [`EpochTemplate`] per kind of barrier epoch the kernel
//! executes (the accesses between two `sync`s), a symbolic shared-memory
//! formula, and the parameter envelope it supports. Offsets and bounds are
//! [`Expr`]s over the shape symbols (`n`, `kl`, `ku`, `nrhs`, `nb`, …) and
//! per-epoch data-dependent symbols (`j`, `jp`, `km`, `ju`, …) with
//! declared ranges.
//!
//! Three consumers share the same declarations, so they cannot drift
//! apart:
//!
//! - the race prover ([`crate::race`]) proves every epoch template free of
//!   inter-lane read/write and write/write overlap across the whole
//!   envelope;
//! - the smem auditor ([`crate::smem`]) evaluates the byte formula against
//!   device limits;
//! - the conformance pass ([`crate::conformance`]) concretizes the
//!   templates along a family-provided [`schedule`](KernelModel::schedule)
//!   and matches them against the real kernel's `HazardMode::Trace`
//!   footprint.

use crate::expr::{Env, Expr};

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Shared-memory read.
    Read,
    /// Shared-memory write.
    Write,
}

/// Lane-attribution pattern of one tracked access, mirroring the
/// `HazardTracker` tagging calls the kernels make.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// `striped_read`/`striped_write`: element `base + k` is touched by
    /// lane `k % threads`, for `k in 0..len`.
    Striped {
        /// First element offset (within the access's allocation).
        base: Expr,
        /// Number of elements.
        len: Expr,
    },
    /// `broadcast_read`: one offset read by every lane.
    Broadcast {
        /// Element offset.
        off: Expr,
    },
    /// `range_read`/`range_write` (and per-owner point accesses):
    /// `[base, base + len)` all touched by lane `owner % threads`.
    Owned {
        /// Owning-lane index (taken modulo the block's thread count).
        owner: Expr,
        /// First element offset.
        base: Expr,
        /// Number of elements.
        len: Expr,
    },
}

/// A bounded symbolic variable.
#[derive(Clone, Debug)]
pub struct VarDef {
    /// Symbol name.
    pub name: &'static str,
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Inclusive upper bound.
    pub hi: Expr,
    /// Whether the race prover enumerates this variable concretely
    /// instead of treating it symbolically. Required when the variable
    /// multiplies another symbol (e.g. an RHS column index `c` in
    /// `c * n`); the bounds must then ground to constants.
    pub enumerate: bool,
}

impl VarDef {
    /// Symbolic variable in `[lo, hi]`.
    pub fn new(name: &'static str, lo: Expr, hi: Expr) -> VarDef {
        VarDef {
            name,
            lo,
            hi,
            enumerate: false,
        }
    }

    /// Concretely enumerated variable in `[lo, hi]`.
    pub fn enumerated(name: &'static str, lo: Expr, hi: Expr) -> VarDef {
        VarDef {
            name,
            lo,
            hi,
            enumerate: true,
        }
    }

    /// Variable fixed to an exact expression (`lo == hi == e`).
    pub fn fixed(name: &'static str, e: Expr) -> VarDef {
        VarDef {
            name,
            lo: e.clone(),
            hi: e,
            enumerate: false,
        }
    }
}

/// One tracked access inside an epoch template.
#[derive(Clone, Debug)]
pub struct Access {
    /// Index into [`KernelModel::allocs`] — accesses to different
    /// allocations are disjoint by construction (`SharedMem` is a bump
    /// arena of grain-disjoint allocations).
    pub alloc: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// Lane/offset pattern.
    pub pattern: Pattern,
    /// Loop variables: one instance of the access exists per assignment,
    /// and all instances coexist within the epoch (no barrier between
    /// loop iterations).
    pub vars: Vec<VarDef>,
    /// Shape guards (each `>= 0`) gating the access.
    pub guards: Vec<Expr>,
    /// Data-dependent predicates gating the access (e.g. "the multiplier
    /// is nonzero"). The race prover ignores them (assumes they may
    /// hold); the concretizer asks the [`Oracle`].
    pub preds: Vec<Pred>,
}

/// A named data-dependent predicate with expression arguments.
#[derive(Clone, Debug)]
pub struct Pred {
    /// Predicate name (resolved against [`Oracle::flags`]).
    pub name: &'static str,
    /// Arguments, evaluated under the epoch environment.
    pub args: Vec<Expr>,
}

/// The accesses between two consecutive barriers, parameterized by epoch
/// variables (fixed for one epoch instance — e.g. the column index `j`,
/// its pivot offset `jp`).
#[derive(Clone, Debug)]
pub struct EpochTemplate {
    /// Template name (for diagnostics).
    pub name: &'static str,
    /// Epoch variables with their declared ranges.
    pub vars: Vec<VarDef>,
    /// Shape guards (each `>= 0`) under which the epoch occurs at all.
    pub guards: Vec<Expr>,
    /// Tracked accesses.
    pub accesses: Vec<Access>,
}

/// One named shared-memory allocation.
#[derive(Clone, Debug)]
pub struct AllocModel {
    /// Allocation name (for diagnostics).
    pub name: &'static str,
    /// Element count (in scalar elements), as allocated by the kernel.
    pub elems: Expr,
}

/// The enumeration envelope a model is verified over.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Shape symbols enumerated exhaustively over value grids.
    pub grid: Vec<(&'static str, Vec<i64>)>,
    /// Derived ground symbols, computed per grid point in order (e.g.
    /// `ldab = 2·kl + ku + 1`). May reference grid and earlier derived
    /// symbols.
    pub derived: Vec<(&'static str, Expr)>,
    /// Symbols kept symbolic with numeric bounds (typically `n`).
    pub frees: Vec<(&'static str, i64, i64)>,
    /// Block thread counts tried when concretizing a counterexample.
    pub threads: Vec<u32>,
    /// `n` values tried when concretizing a counterexample (ascending).
    pub search_n: Vec<i64>,
}

impl Envelope {
    /// All ground environments: the cartesian product of the grids, each
    /// extended with its derived symbols.
    pub fn groundings(&self) -> Vec<Env> {
        let mut envs = vec![Env::new()];
        for (name, values) in &self.grid {
            let mut next = Vec::with_capacity(envs.len() * values.len());
            for env in &envs {
                for val in values {
                    let mut e = env.clone();
                    e.insert(name, *val);
                    next.push(e);
                }
            }
            envs = next;
        }
        for env in &mut envs {
            for (name, expr) in &self.derived {
                let val = expr.eval(env);
                env.insert(name, val);
            }
        }
        envs
    }
}

/// A concrete kernel launch shape, shared by the conformance pass and the
/// smem boundary checks. Families ignore the fields they do not use.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Matrix order (square systems).
    pub n: usize,
    /// Subdiagonals.
    pub kl: usize,
    /// Superdiagonals.
    pub ku: usize,
    /// Right-hand sides.
    pub nrhs: usize,
    /// Column-block width (window / blocked-solve families).
    pub nb: usize,
    /// Effective block thread count the kernel stripes over.
    pub threads: usize,
    /// Interleaved lanes per block.
    pub lanes: usize,
}

impl Shape {
    /// Base environment with the shape symbols plus the derived band
    /// geometry (`kv = kl + ku`, `ldab = 2·kl + ku + 1`).
    pub fn env(&self) -> Env {
        Env::from([
            ("n", self.n as i64),
            ("kl", self.kl as i64),
            ("ku", self.ku as i64),
            ("nrhs", self.nrhs as i64),
            ("nb", self.nb as i64),
            ("lanes", self.lanes as i64),
            ("kv", (self.kl + self.ku) as i64),
            ("ldab", (2 * self.kl + self.ku + 1) as i64),
        ])
    }
}

/// Data-dependent facts harvested from a real kernel run, consumed by the
/// family schedules and access predicates during conformance.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    /// Pivot offset per column (`ipiv[j] - j`).
    pub jp: Vec<i64>,
    /// Named predicate values, keyed by `(name, args)`.
    pub flags: std::collections::BTreeMap<(&'static str, Vec<i64>), bool>,
}

impl Oracle {
    /// Look up a predicate value; missing entries are a harness bug.
    pub fn flag(&self, name: &'static str, args: &[i64]) -> bool {
        *self
            .flags
            .get(&(name, args.to_vec()))
            .unwrap_or_else(|| panic!("oracle has no value for predicate {name}{args:?}"))
    }
}

/// One epoch of a concretized schedule: which template runs (or `None`
/// for an epoch with no tracked accesses) and the concrete values of its
/// epoch variables (plus any shape symbols the template references).
#[derive(Clone, Debug)]
pub struct EpochInstance {
    /// Index into [`KernelModel::templates`], or `None` for an epoch the
    /// kernel passes through without touching shared memory.
    pub template: Option<usize>,
    /// Concrete epoch environment.
    pub env: Env,
}

/// A kernel family's complete access model.
pub struct KernelModel {
    /// Family name (for reports).
    pub family: &'static str,
    /// Kernel label, as tagged on its `LaunchConfig` (matched against
    /// `HazardReport::label` during conformance).
    pub label: &'static str,
    /// Shared-memory allocations, in allocation order.
    pub allocs: Vec<AllocModel>,
    /// Barrier-epoch templates.
    pub templates: Vec<EpochTemplate>,
    /// Shared-memory bytes as an expression over the shape symbols plus
    /// `sbytes` (the scalar width).
    pub smem_bytes: Expr,
    /// Verified parameter envelope.
    pub envelope: Envelope,
    /// Conformance schedule: the exact epoch sequence for a concrete
    /// shape and oracle. `None` for families that never touch the
    /// tracker (lane-private kernels), which must observe an empty trace.
    pub schedule: Option<fn(&Shape, &Oracle) -> Vec<EpochInstance>>,
}

impl KernelModel {
    /// Find a template index by name (panics if absent — harness bug).
    pub fn template_index(&self, name: &str) -> usize {
        self.templates
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("model {} has no template named {name}", self.family))
    }
}
