//! Symbolic shared-memory feasibility: the largest `n` each kernel
//! family fits on each device.
//!
//! Every [`KernelModel`](crate::model::KernelModel) carries its
//! shared-memory byte formula as an [`Expr`] over the shape symbols plus
//! `sbytes` (the scalar width). All band-kernel formulas are
//! nondecreasing in `n` (they are sums/products of `min(n, …)` windows
//! and `n`-linear terms), so the frontier against a device limit is a
//! single threshold, found here by bisection.

use crate::expr::{Env, Expr};

/// Cap on the searched `n` range: formulas that still fit at this order
/// are reported [`MaxN::Unbounded`] (their window terms saturated — `n`
/// no longer appears in the footprint).
pub const N_CAP: i64 = 1 << 20;

/// The largest matrix order a family's shared-memory footprint allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxN {
    /// Fits up to (and including) this `n`; `n + 1` exceeds the limit.
    Bounded(i64),
    /// Fits at every order up to [`N_CAP`]: the footprint saturates
    /// (window-buffered families) before the device limit.
    Unbounded,
    /// Does not fit even at `n = 1` on this device.
    Never,
}

impl std::fmt::Display for MaxN {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaxN::Bounded(n) => write!(f, "{n}"),
            MaxN::Unbounded => f.write_str("unbounded"),
            MaxN::Never => f.write_str("never"),
        }
    }
}

/// Evaluate `smem_bytes` at order `n` under `env` (which must bind every
/// other symbol the formula uses, including `sbytes`).
pub fn smem_at(smem_bytes: &Expr, env: &Env, n: i64) -> i64 {
    let mut e = env.clone();
    e.insert("n", n);
    smem_bytes.eval(&e)
}

/// Largest `n` with `smem_bytes(n) <= limit_bytes`, by bisection.
///
/// Soundness rests on the formula being nondecreasing in `n`; all
/// registered families satisfy this by construction (their `n` terms are
/// `min(n, window)` factors and nonnegative-coefficient products).
pub fn max_feasible_n(smem_bytes: &Expr, env: &Env, limit_bytes: usize) -> MaxN {
    let limit = limit_bytes as i64;
    if smem_at(smem_bytes, env, 1) > limit {
        return MaxN::Never;
    }
    if smem_at(smem_bytes, env, N_CAP) <= limit {
        return MaxN::Unbounded;
    }
    // Invariant: fits at lo, exceeds at hi.
    let (mut lo, mut hi) = (1i64, N_CAP);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if smem_at(smem_bytes, env, mid) <= limit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    MaxN::Bounded(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{emin, k, v};

    #[test]
    fn bisection_finds_the_exact_threshold() {
        // ldab * n * sbytes with ldab = 7, sbytes = 8: 56·n <= 4096 → n <= 73.
        let formula = v("ldab") * v("n") * v("sbytes");
        let env = Env::from([("ldab", 7), ("sbytes", 8)]);
        assert_eq!(max_feasible_n(&formula, &env, 4096), MaxN::Bounded(73));
        assert_eq!(smem_at(&formula, &env, 73), 4088);
        assert_eq!(smem_at(&formula, &env, 74), 4144);
    }

    #[test]
    fn saturating_formulas_are_unbounded() {
        // ldab * min(n, nb + 4) * sbytes saturates at n = nb + 4.
        let formula = v("ldab") * emin(v("n"), v("nb") + k(4)) * v("sbytes");
        let env = Env::from([("ldab", 7), ("nb", 8), ("sbytes", 8)]);
        assert_eq!(max_feasible_n(&formula, &env, 4096), MaxN::Unbounded);
        // A limit below even n = 1 is Never.
        assert_eq!(max_feasible_n(&formula, &env, 32), MaxN::Never);
    }
}
