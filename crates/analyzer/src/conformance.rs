//! Model-vs-kernel conformance: concretize a model's schedule and match
//! it against the real kernel's `HazardMode::Trace` footprint.
//!
//! The race proof is only as good as the model it runs on. This pass
//! closes the loop: for a concrete shape, the family's
//! [`schedule`](crate::model::KernelModel::schedule) lays out the exact
//! epoch sequence, [`concretize`] expands every template into the
//! [`AccessRecord`]s the kernel *should* produce, and [`compare_trace`]
//! checks the prediction against what the kernel *did* produce (the
//! per-block trace recorded by the `HazardTracker` under
//! [`HazardMode::Trace`](gbatch_gpu_sim::hazard::HazardMode::Trace)) —
//! epoch count and per-epoch access multisets must both match exactly.

use crate::expr::Env;
use crate::model::{AccessKind, KernelModel, Oracle, Pattern, Shape, VarDef};
use gbatch_gpu_sim::hazard::{AccessRecord, HazardReport, ALL_LANES};

/// Element base offset of each allocation, replicating the kernels'
/// `SharedMem::alloc_scalar` packing: allocations are rounded up to
/// 8-byte grains and handed out back to back, with offsets expressed in
/// scalar elements of width `sbytes`.
pub fn alloc_bases(model: &KernelModel, env: &Env, sbytes: usize) -> Vec<usize> {
    let per_grain = 8 / sbytes;
    let mut bases = Vec::with_capacity(model.allocs.len());
    let mut grains = 0usize;
    for al in &model.allocs {
        bases.push(grains * per_grain);
        let elems = al.elems.eval(env).max(0) as usize;
        grains += (elems * sbytes).div_ceil(8);
    }
    bases
}

fn for_each_assignment(vars: &[VarDef], env: &mut Env, f: &mut impl FnMut(&mut Env)) {
    let Some((v, rest)) = vars.split_first() else {
        f(env);
        return;
    };
    let lo = v.lo.eval(env);
    let hi = v.hi.eval(env);
    for val in lo..=hi {
        env.insert(v.name, val);
        for_each_assignment(rest, env, f);
    }
    env.remove(v.name);
}

/// Expand the model's schedule at `shape` into the predicted per-epoch
/// access records (sorted within each epoch). `sbytes` is the scalar
/// width of the launch being predicted; `oracle` answers the
/// data-dependent predicates. Panics if the model has no schedule or a
/// scheduled epoch violates its template's shape guards — both are
/// model/harness bugs, not input conditions.
pub fn concretize(
    model: &KernelModel,
    shape: &Shape,
    oracle: &Oracle,
    sbytes: usize,
) -> Vec<Vec<AccessRecord>> {
    let schedule = model
        .schedule
        .unwrap_or_else(|| panic!("model {} has no schedule", model.family));
    let mut base_env = shape.env();
    base_env.insert("sbytes", sbytes as i64);
    let bases = alloc_bases(model, &base_env, sbytes);
    let threads = shape.threads as u32;

    let mut epochs: Vec<Vec<AccessRecord>> = Vec::new();
    for inst in schedule(shape, oracle) {
        let epoch = epochs.len() as u64;
        let mut records: Vec<AccessRecord> = Vec::new();
        if let Some(tpl_idx) = inst.template {
            let tpl = &model.templates[tpl_idx];
            let mut env = base_env.clone();
            env.extend(inst.env.iter().map(|(k, v)| (*k, *v)));
            // Resolve the template variables in declaration order. The
            // schedule provides the data-dependent ones (checked against
            // their declared ranges — the race proof quantified over those
            // ranges, so a value outside them would mean the proof covered
            // a different kernel than the one running); variables pinned to
            // a single expression (`lo == hi`) are derived here.
            for vd in &tpl.vars {
                let (lo, hi) = (vd.lo.eval(&env), vd.hi.eval(&env));
                match env.get(vd.name) {
                    Some(&val) => assert!(
                        lo <= val && val <= hi,
                        "model {}: epoch {} template `{}` var `{}` = {} outside [{}, {}]",
                        model.family,
                        epoch,
                        tpl.name,
                        vd.name,
                        val,
                        lo,
                        hi,
                    ),
                    None => {
                        assert!(
                            lo == hi,
                            "model {}: epoch {} template `{}` leaves free var `{}` unset",
                            model.family,
                            epoch,
                            tpl.name,
                            vd.name,
                        );
                        env.insert(vd.name, lo);
                    }
                }
            }
            for g in &tpl.guards {
                assert!(
                    g.eval(&env) >= 0,
                    "model {}: scheduled epoch {} violates template `{}` guard",
                    model.family,
                    epoch,
                    tpl.name,
                );
            }
            for a in &tpl.accesses {
                let alloc_base = bases[a.alloc];
                for_each_assignment(&a.vars, &mut env, &mut |env| {
                    if !a.guards.iter().all(|g| g.eval(env) >= 0) {
                        return;
                    }
                    let holds = a.preds.iter().all(|p| {
                        let args: Vec<i64> = p.args.iter().map(|e| e.eval(env)).collect();
                        oracle.flag(p.name, &args)
                    });
                    if !holds {
                        return;
                    }
                    let write = a.kind == AccessKind::Write;
                    match &a.pattern {
                        Pattern::Striped { base, len } => {
                            let b = base.eval(env);
                            let l = len.eval(env);
                            for kk in 0..l.max(0) {
                                records.push(AccessRecord {
                                    epoch,
                                    lane: (kk as u64 % u64::from(threads.max(1))) as u32,
                                    offset: alloc_base + (b + kk) as usize,
                                    write,
                                });
                            }
                        }
                        Pattern::Broadcast { off } => {
                            records.push(AccessRecord {
                                epoch,
                                lane: ALL_LANES,
                                offset: alloc_base + off.eval(env) as usize,
                                write,
                            });
                        }
                        Pattern::Owned { owner, base, len } => {
                            let lane = (owner.eval(env) as u64 % u64::from(threads.max(1))) as u32;
                            let b = base.eval(env);
                            for kk in 0..len.eval(env).max(0) {
                                records.push(AccessRecord {
                                    epoch,
                                    lane,
                                    offset: alloc_base + (b + kk) as usize,
                                    write,
                                });
                            }
                        }
                    }
                });
            }
        }
        records.sort_unstable();
        epochs.push(records);
    }
    epochs
}

/// Match a predicted footprint against one block's observed trace.
///
/// Requires the epoch counts to agree and every epoch's access multiset
/// (lane, offset, read/write) to agree exactly. Returns a located
/// mismatch description on failure.
pub fn compare_trace(predicted: &[Vec<AccessRecord>], report: &HazardReport) -> Result<(), String> {
    if predicted.len() as u64 != report.epochs {
        return Err(format!(
            "block {} ({}): model predicts {} epochs, kernel ran {}",
            report.block_id,
            report.label,
            predicted.len(),
            report.epochs
        ));
    }
    let mut observed: Vec<Vec<AccessRecord>> = vec![Vec::new(); predicted.len()];
    for rec in &report.accesses {
        observed[rec.epoch as usize].push(*rec);
    }
    for (epoch, (pred, mut obs)) in predicted.iter().zip(observed).enumerate() {
        obs.sort_unstable();
        if pred != &obs {
            let detail = pred
                .iter()
                .zip(&obs)
                .find(|(p, o)| p != o)
                .map(|(p, o)| format!("first divergence: predicted {p:?}, observed {o:?}"))
                .unwrap_or_else(|| "one footprint is a strict prefix of the other".to_string());
            return Err(format!(
                "block {} ({}) epoch {}: predicted {} accesses, observed {}; {}",
                report.block_id,
                report.label,
                epoch,
                pred.len(),
                obs.len(),
                detail
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_reports_epoch_count_mismatch() {
        let report = HazardReport {
            block_id: 0,
            label: "t",
            epochs: 2,
            reads: 0,
            writes: 0,
            hazards: Vec::new(),
            total_hazards: 0,
            accesses: Vec::new(),
        };
        let err = compare_trace(&[Vec::new()], &report).unwrap_err();
        assert!(err.contains("predicts 1 epochs"), "{err}");
    }

    #[test]
    fn compare_matches_sorted_multisets() {
        let rec = |lane, offset, write| AccessRecord {
            epoch: 0,
            lane,
            offset,
            write,
        };
        let report = HazardReport {
            block_id: 0,
            label: "t",
            epochs: 1,
            reads: 1,
            writes: 1,
            hazards: Vec::new(),
            total_hazards: 0,
            accesses: vec![rec(1, 4, true), rec(0, 3, false)],
        };
        assert!(compare_trace(&[vec![rec(0, 3, false), rec(1, 4, true)]], &report).is_ok());
        let err = compare_trace(&[vec![rec(0, 3, false), rec(1, 5, true)]], &report).unwrap_err();
        assert!(err.contains("first divergence"), "{err}");
    }
}
