//! Lowering of [`Expr`](crate::expr::Expr) trees to linear forms.
//!
//! The race prover reasons over systems of linear inequalities, so model
//! expressions are lowered to [`Lin`] — an integer-coefficient affine form
//! over symbolic variables — under a *grounding* that fixes the enumerated
//! shape parameters (`kl`, `ku`, `nb`, `nrhs`, …) to concrete values.
//! `min`/`max` nodes cannot be expressed linearly, so lowering returns a
//! set of [`Branch`]es: each branch carries the linear value the
//! expression takes plus the linear side conditions (`cond >= 0`) under
//! which that value is the correct one. Branches cover the whole domain
//! (ties appear in both), so proving a property on every branch proves it
//! outright.
//!
//! Variables are keyed by `(name, copy)`: the prover analyzes *pairs* of
//! accesses, and the second access's loop variables are renamed to copy 1
//! so the two instances stay independent.

use crate::expr::{Env, Expr};
use std::collections::BTreeMap;

/// Variable key: symbol name plus instance copy (0 = shared / first
/// access, 1 = second access's renamed loop variables).
pub type VKey = (&'static str, u8);

/// Affine form `k + Σ coeff · var` with `i128` coefficients.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Lin {
    /// Constant term.
    pub k: i128,
    /// Per-variable coefficients (zero coefficients are not stored).
    pub terms: BTreeMap<VKey, i128>,
}

impl Lin {
    /// The constant form `c`.
    pub fn konst(c: i128) -> Lin {
        Lin {
            k: c,
            terms: BTreeMap::new(),
        }
    }

    /// The single-variable form `var`.
    pub fn var(key: VKey) -> Lin {
        Lin {
            k: 0,
            terms: BTreeMap::from([(key, 1)]),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.k += other.k;
        for (key, c) in &other.terms {
            let e = out.terms.entry(*key).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(key);
            }
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// `self * c`.
    pub fn scale(&self, c: i128) -> Lin {
        if c == 0 {
            return Lin::konst(0);
        }
        Lin {
            k: self.k * c,
            terms: self.terms.iter().map(|(key, v)| (*key, v * c)).collect(),
        }
    }

    /// Whether the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.k == 0 && self.terms.is_empty()
    }

    /// The constant value, if the form has no variables.
    pub fn as_const(&self) -> Option<i128> {
        self.terms.is_empty().then_some(self.k)
    }

    /// Rename every occurrence of variable `from` to `to` (merging
    /// coefficients if `to` is already present).
    pub fn rename(&self, from: VKey, to: VKey) -> Lin {
        let Some(c) = self.terms.get(&from).copied() else {
            return self.clone();
        };
        let mut out = self.clone();
        out.terms.remove(&from);
        let e = out.terms.entry(to).or_insert(0);
        *e += c;
        if *e == 0 {
            out.terms.remove(&to);
        }
        out
    }

    /// Evaluate under concrete variable values (panics on unbound vars).
    pub fn eval(&self, values: &BTreeMap<VKey, i64>) -> i128 {
        let mut acc = self.k;
        for (key, c) in &self.terms {
            let v = values
                .get(key)
                .unwrap_or_else(|| panic!("unbound variable {key:?} in linear form"));
            acc += c * i128::from(*v);
        }
        acc
    }
}

/// One case of a lowered `min`/`max` expression: the linear value under
/// the listed side conditions (each `cond >= 0`).
#[derive(Clone, Debug)]
pub struct Branch {
    /// Linear value of the expression on this branch.
    pub lin: Lin,
    /// Side conditions (`>= 0`) under which this branch applies.
    pub cond: Vec<Lin>,
}

fn combine(a: &[Branch], b: &[Branch], f: impl Fn(&Lin, &Lin) -> Vec<Branch>) -> Vec<Branch> {
    let mut out = Vec::new();
    for ba in a {
        for bb in b {
            for mut nb in f(&ba.lin, &bb.lin) {
                let mut cond = ba.cond.clone();
                cond.extend(bb.cond.iter().cloned());
                cond.append(&mut nb.cond);
                out.push(Branch { lin: nb.lin, cond });
            }
        }
    }
    out
}

fn plain(lin: Lin) -> Vec<Branch> {
    vec![Branch {
        lin,
        cond: Vec::new(),
    }]
}

/// Lower `e` to linear branches under `ground` (symbols with concrete
/// values; all other symbols become copy-0 variables). Panics on a product
/// where neither factor grounds to a constant — enumerate one side instead
/// of writing a nonlinear model.
pub fn linearize(e: &Expr, ground: &Env) -> Vec<Branch> {
    match e {
        Expr::K(c) => plain(Lin::konst(i128::from(*c))),
        Expr::V(name) => match ground.get(name) {
            Some(val) => plain(Lin::konst(i128::from(*val))),
            None => plain(Lin::var((name, 0))),
        },
        Expr::Add(a, b) => combine(&linearize(a, ground), &linearize(b, ground), |x, y| {
            plain(x.add(y))
        }),
        Expr::Sub(a, b) => combine(&linearize(a, ground), &linearize(b, ground), |x, y| {
            plain(x.sub(y))
        }),
        Expr::Mul(a, b) => combine(&linearize(a, ground), &linearize(b, ground), |x, y| {
            if let Some(c) = x.as_const() {
                plain(y.scale(c))
            } else if let Some(c) = y.as_const() {
                plain(x.scale(c))
            } else {
                panic!("nonlinear product in access model: {e:?} (enumerate one factor)")
            }
        }),
        Expr::Min(a, b) => combine(&linearize(a, ground), &linearize(b, ground), |x, y| {
            vec![
                Branch {
                    lin: x.clone(),
                    cond: vec![y.sub(x)], // y - x >= 0 — x is the min
                },
                Branch {
                    lin: y.clone(),
                    cond: vec![x.sub(y)],
                },
            ]
        }),
        Expr::Max(a, b) => combine(&linearize(a, ground), &linearize(b, ground), |x, y| {
            vec![
                Branch {
                    lin: x.clone(),
                    cond: vec![x.sub(y)], // x - y >= 0 — x is the max
                },
                Branch {
                    lin: y.clone(),
                    cond: vec![y.sub(x)],
                },
            ]
        }),
        Expr::Ceil8(_) => panic!("ceil8 is for smem formulas only, not access offsets: {e:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{emin, k, v};

    #[test]
    fn grounded_symbols_fold_to_constants() {
        let ground = Env::from([("kl", 3)]);
        let branches = linearize(&(v("kl") * v("n") + k(1)), &ground);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].lin.k, 1);
        assert_eq!(branches[0].lin.terms[&("n", 0)], 3);
    }

    #[test]
    fn min_splits_into_guarded_branches() {
        let branches = linearize(&emin(v("n"), k(5)), &Env::new());
        assert_eq!(branches.len(), 2);
        // Branch 0: value n, condition 5 - n >= 0.
        assert_eq!(branches[0].lin, Lin::var(("n", 0)));
        assert_eq!(branches[0].cond[0], Lin::konst(5).sub(&Lin::var(("n", 0))));
    }

    #[test]
    #[should_panic(expected = "nonlinear product")]
    fn nonlinear_products_are_rejected() {
        linearize(&(v("n") * v("m")), &Env::new());
    }
}
