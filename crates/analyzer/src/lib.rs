//! Static kernel-schedule verification for the band-LU kernel stack.
//!
//! Kernel families declare [`model::KernelModel`]s — a small IR of their
//! per-barrier-epoch shared-memory accesses as affine index expressions
//! over the shape symbols, with symbolic bounds. Three passes consume the
//! same declarations:
//!
//! 1. **Race proof** ([`race::prove_model`]): every inter-lane
//!    write/write and read/write pair within every epoch template is
//!    proven disjoint across the *whole* supported envelope (grids over
//!    the band parameters, symbolic unbounded `n`) by Fourier–Motzkin
//!    reasoning over the lowered linear forms. Failures come back as
//!    concrete, minimal, replayed counterexample shapes.
//! 2. **Shared-memory audit** ([`smem::max_feasible_n`]): each family's
//!    symbolic footprint formula is bisected against device limits into a
//!    max-feasible-`n` table, which the driver cross-checks against what
//!    dispatch actually considers feasible.
//! 3. **Conformance** ([`conformance::concretize`] +
//!    [`conformance::compare_trace`]): the model's predicted footprint is
//!    matched, epoch by epoch and access by access, against the real
//!    kernel's `HazardMode::Trace` recording — so the proved model and
//!    the shipped kernel cannot drift apart.
//!
//! The crate is deliberately independent of the kernels: it knows only
//! the IR and the `gpu-sim` hazard layer. Model declarations live beside
//! each kernel family in `gbatch-kernels`, and `cargo xtask
//! verify-kernels` drives all three passes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod expr;
pub mod fm;
pub mod lin;
pub mod model;
pub mod race;
pub mod smem;

pub use conformance::{compare_trace, concretize};
pub use expr::{ceil8, emax, emin, k, v, Env, Expr};
pub use model::{
    Access, AccessKind, AllocModel, Envelope, EpochInstance, EpochTemplate, KernelModel, Oracle,
    Pattern, Pred, Shape, VarDef,
};
pub use race::{prove_model, Counterexample, ProofStats, RaceError};
pub use smem::{max_feasible_n, MaxN};
