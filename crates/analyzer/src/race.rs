//! The disjointness prover: race-freedom of every epoch template across
//! the whole parameter envelope.
//!
//! For each ordered pair of accesses in one epoch template (at least one
//! a write, same allocation), the prover asks: can two instances land on
//! the same shared offset from different lanes? The question is encoded
//! as a linear system — variable bounds, epoch/access guards, the range
//! overlap condition, and the instance-ordering case — and discharged by
//! Fourier–Motzkin ([`crate::fm`]): an infeasible system is a proof that
//! the conflict cannot occur for *any* shape in the envelope, including
//! the symbolic (unbounded) `n` direction.
//!
//! Enumerated shape parameters (`kl`, `ku`, `nb`, `nrhs`, loop variables
//! that multiply other symbols) are grounded over the envelope grids;
//! everything else stays symbolic. Same-lane access pairs (identical
//! striping base, identical owner) are recognized structurally and
//! skipped — they are ordered on real hardware.
//!
//! When a system is feasible the prover *concretizes*: it walks shapes in
//! ascending size, instantiates the suspect template into a real
//! [`HazardTracker`], and reports the first conflicting shape as a
//! located counterexample ([`Counterexample`]). A feasible system that
//! fails to concretize within the search budget is still an error
//! ([`RaceError::Unproven`]) — the prover is sound, never silent.

use crate::expr::Env;
use crate::fm::feasible;
use crate::lin::{linearize, Branch, Lin, VKey};
use crate::model::{Access, AccessKind, Envelope, EpochTemplate, KernelModel, Pattern, VarDef};
use gbatch_gpu_sim::hazard::{Hazard, HazardMode, HazardTracker};

/// Proof statistics for one model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofStats {
    /// Ground envelope points enumerated.
    pub groundings: usize,
    /// Access-pair proof obligations discharged.
    pub pair_systems: usize,
    /// Fourier–Motzkin feasibility checks run.
    pub fm_calls: usize,
}

/// A concrete, replayed conflict: the minimal shape (in the search order:
/// ascending parameter sum) on which the template races.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Model family.
    pub family: &'static str,
    /// Epoch template that races.
    pub template: &'static str,
    /// Concrete shape parameters (grid + derived + free symbols).
    pub shape: Env,
    /// Block thread count the conflict manifests under.
    pub threads: u32,
    /// Concrete epoch-variable assignment.
    pub epoch_env: Env,
    /// The conflict, as detected by a real `HazardTracker` replay.
    pub hazard: Hazard,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt_env = |env: &Env| {
            env.iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{}/{}: {} at shape {{{}}} threads={} epoch {{{}}}",
            self.family,
            self.template,
            self.hazard,
            fmt_env(&self.shape),
            self.threads,
            fmt_env(&self.epoch_env),
        )
    }
}

/// Why a model failed verification.
#[derive(Debug, Clone)]
pub enum RaceError {
    /// A replayed, located conflict.
    Counterexample(Box<Counterexample>),
    /// A feasible conflict system that did not concretize within the
    /// search budget (an over-approximation the model should tighten —
    /// treated as failure because the proof did not close).
    Unproven {
        /// Model family.
        family: &'static str,
        /// Epoch template.
        template: &'static str,
        /// Offending access pair (indices into the template).
        pair: (usize, usize),
        /// Ground envelope point of the feasible system.
        grounding: Env,
    },
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceError::Counterexample(ce) => write!(f, "race counterexample: {ce}"),
            RaceError::Unproven {
                family,
                template,
                pair,
                grounding,
            } => write!(
                f,
                "{family}/{template}: accesses {} and {} have a feasible conflict \
                 system at {grounding:?} but no concrete witness was found — \
                 tighten the model bounds/guards",
                pair.0, pair.1
            ),
        }
    }
}

/// Prove every epoch template of `model` race-free over its envelope.
pub fn prove_model(model: &KernelModel) -> Result<ProofStats, RaceError> {
    let mut stats = ProofStats::default();
    let groundings = model.envelope.groundings();
    stats.groundings = groundings.len();
    for tpl_idx in 0..model.templates.len() {
        for ground in &groundings {
            check_template(model, tpl_idx, ground, &mut stats)?;
        }
    }
    Ok(stats)
}

fn partition_vars(vars: &[VarDef]) -> (Vec<&VarDef>, Vec<&VarDef>) {
    let (enu, sym): (Vec<&VarDef>, Vec<&VarDef>) = vars.iter().partition(|v| v.enumerate);
    (enu, sym)
}

/// All assignments of enumerated vars (bounds must ground-evaluate).
fn enum_product(vars: &[&VarDef], ground: &Env) -> Vec<Vec<(&'static str, i64)>> {
    let mut out: Vec<Vec<(&'static str, i64)>> = vec![Vec::new()];
    for v in vars {
        let lo = v.lo.eval(ground);
        let hi = v.hi.eval(ground);
        let mut next = Vec::new();
        for asg in &out {
            for val in lo..=hi {
                let mut a = asg.clone();
                a.push((v.name, val));
                next.push(a);
            }
        }
        out = next;
    }
    out
}

fn check_template(
    model: &KernelModel,
    tpl_idx: usize,
    ground: &Env,
    stats: &mut ProofStats,
) -> Result<(), RaceError> {
    let tpl = &model.templates[tpl_idx];
    let (tpl_enum, tpl_sym) = partition_vars(&tpl.vars);
    for ext in enum_product(&tpl_enum, ground) {
        let mut g = ground.clone();
        g.extend(ext.iter().copied());
        check_pairs(model, tpl_idx, tpl, &tpl_sym, &g, stats)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_pairs(
    model: &KernelModel,
    tpl_idx: usize,
    tpl: &EpochTemplate,
    tpl_sym: &[&VarDef],
    ground: &Env,
    stats: &mut ProofStats,
) -> Result<(), RaceError> {
    for ai in 0..tpl.accesses.len() {
        for bi in ai..tpl.accesses.len() {
            let (a, b) = (&tpl.accesses[ai], &tpl.accesses[bi]);
            if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                continue;
            }
            if a.alloc != b.alloc {
                continue; // distinct allocations never alias
            }
            check_pair(model, tpl_idx, tpl, tpl_sym, ground, (ai, bi), stats)?;
        }
    }
    Ok(())
}

/// Instance relation of one linked loop variable.
#[derive(Clone, Copy, PartialEq)]
enum Rel {
    Eq,
    Lt, // B's copy strictly below A's
    Gt, // B's copy strictly above A's
}

fn rel_cases(count: usize) -> Vec<Vec<Rel>> {
    let mut out: Vec<Vec<Rel>> = vec![Vec::new()];
    for _ in 0..count {
        let mut next = Vec::with_capacity(out.len() * 3);
        for case in &out {
            for rel in [Rel::Eq, Rel::Lt, Rel::Gt] {
                let mut c = case.clone();
                c.push(rel);
                next.push(c);
            }
        }
        out = next;
    }
    out
}

/// Lowered pattern: one (base, len, lane) combo per `min`/`max` branch.
struct PatCombo {
    lane: LaneDesc,
    base: Lin,
    len: Lin,
    cond: Vec<Lin>,
}

enum LaneDesc {
    Striped(Lin),
    Owner(Lin),
    Broadcast,
}

fn lower_pattern(p: &Pattern, ground: &Env) -> Vec<PatCombo> {
    match p {
        Pattern::Striped { base, len } => {
            let mut out = Vec::new();
            for bb in linearize(base, ground) {
                for lb in linearize(len, ground) {
                    let mut cond = bb.cond.clone();
                    cond.extend(lb.cond.iter().cloned());
                    out.push(PatCombo {
                        lane: LaneDesc::Striped(bb.lin.clone()),
                        base: bb.lin.clone(),
                        len: lb.lin.clone(),
                        cond,
                    });
                }
            }
            out
        }
        Pattern::Broadcast { off } => linearize(off, ground)
            .into_iter()
            .map(|bb| PatCombo {
                lane: LaneDesc::Broadcast,
                base: bb.lin,
                len: Lin::konst(1),
                cond: bb.cond,
            })
            .collect(),
        Pattern::Owned { owner, base, len } => {
            let mut out = Vec::new();
            for ob in linearize(owner, ground) {
                for bb in linearize(base, ground) {
                    for lb in linearize(len, ground) {
                        let mut cond = ob.cond.clone();
                        cond.extend(bb.cond.iter().cloned());
                        cond.extend(lb.cond.iter().cloned());
                        out.push(PatCombo {
                            lane: LaneDesc::Owner(ob.lin.clone()),
                            base: bb.lin.clone(),
                            len: lb.lin.clone(),
                            cond,
                        });
                    }
                }
            }
            out
        }
    }
}

fn rename_lin(lin: &Lin, renames: &[(VKey, VKey)]) -> Lin {
    let mut out = lin.clone();
    for (from, to) in renames {
        out = out.rename(*from, *to);
    }
    out
}

fn rename_combo(c: &PatCombo, renames: &[(VKey, VKey)]) -> PatCombo {
    PatCombo {
        lane: match &c.lane {
            LaneDesc::Striped(l) => LaneDesc::Striped(rename_lin(l, renames)),
            LaneDesc::Owner(l) => LaneDesc::Owner(rename_lin(l, renames)),
            LaneDesc::Broadcast => LaneDesc::Broadcast,
        },
        base: rename_lin(&c.base, renames),
        len: rename_lin(&c.len, renames),
        cond: c.cond.iter().map(|l| rename_lin(l, renames)).collect(),
    }
}

fn rename_branches(bs: Vec<Branch>, renames: &[(VKey, VKey)]) -> Vec<Branch> {
    bs.into_iter()
        .map(|b| Branch {
            lin: rename_lin(&b.lin, renames),
            cond: b.cond.iter().map(|l| rename_lin(l, renames)).collect(),
        })
        .collect()
}

/// Accesses guaranteed to come from the same physical lane at every
/// common offset: identically-striped sweeps, identical owners.
fn same_lane(a: &PatCombo, b: &PatCombo) -> bool {
    match (&a.lane, &b.lane) {
        (LaneDesc::Striped(x), LaneDesc::Striped(y)) => x.sub(y).is_zero(),
        (LaneDesc::Owner(x), LaneDesc::Owner(y)) => x.sub(y).is_zero(),
        _ => false,
    }
}

/// Bound constraints `v - lo >= 0`, `hi - v >= 0` for a symbolic var.
fn bound_sets(v: &VarDef, key: VKey, ground: &Env, renames: &[(VKey, VKey)]) -> Vec<Vec<Branch>> {
    let var = Lin::var(key);
    let lo = rename_branches(linearize(&v.lo, ground), renames);
    let hi = rename_branches(linearize(&v.hi, ground), renames);
    vec![
        lo.into_iter()
            .map(|b| Branch {
                lin: var.sub(&b.lin),
                cond: b.cond,
            })
            .collect(),
        hi.into_iter()
            .map(|b| Branch {
                lin: b.lin.sub(&var),
                cond: b.cond,
            })
            .collect(),
    ]
}

/// Guard constraints `g >= 0`.
fn guard_sets(
    guards: &[crate::expr::Expr],
    ground: &Env,
    renames: &[(VKey, VKey)],
) -> Vec<Vec<Branch>> {
    guards
        .iter()
        .map(|g| rename_branches(linearize(g, ground), renames))
        .collect()
}

/// Is any branch combination of `sets`, together with `base`, feasible?
fn any_combo_feasible(base: &mut Vec<Lin>, sets: &[Vec<Branch>], fm_calls: &mut usize) -> bool {
    let Some((first, rest)) = sets.split_first() else {
        *fm_calls += 1;
        return feasible(base);
    };
    for branch in first {
        let mark = base.len();
        base.push(branch.lin.clone());
        base.extend(branch.cond.iter().cloned());
        let hit = any_combo_feasible(base, rest, fm_calls);
        base.truncate(mark);
        if hit {
            return true;
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn check_pair(
    model: &KernelModel,
    tpl_idx: usize,
    tpl: &EpochTemplate,
    tpl_sym: &[&VarDef],
    ground: &Env,
    (ai, bi): (usize, usize),
    stats: &mut ProofStats,
) -> Result<(), RaceError> {
    let (a, b) = (&tpl.accesses[ai], &tpl.accesses[bi]);
    let (a_enum, a_sym) = partition_vars(&a.vars);
    let (b_enum, b_sym) = partition_vars(&b.vars);
    // B's symbolic loop vars become copy 1 so the two instances are
    // independent.
    let b_renames: Vec<(VKey, VKey)> = b_sym.iter().map(|v| ((v.name, 0), (v.name, 1))).collect();
    let linked: Vec<&'static str> = a_sym
        .iter()
        .map(|v| v.name)
        .filter(|n| b_sym.iter().any(|w| w.name == *n))
        .collect();

    for ea in enum_product(&a_enum, ground) {
        let mut ga = ground.clone();
        ga.extend(ea.iter().copied());
        for eb in enum_product(&b_enum, ground) {
            let mut gb = ground.clone();
            gb.extend(eb.iter().copied());
            let self_same = ai == bi && ea == eb;
            if self_same && a_sym.is_empty() {
                // A single access instance touches each offset once.
                continue;
            }
            for case in rel_cases(linked.len()) {
                if self_same && case.iter().all(|r| *r == Rel::Eq) {
                    continue; // the identical instance
                }
                stats.pair_systems += 1;
                // Eq-related vars fold back onto copy 0 so polynomial
                // identity (same-lane detection) sees them as shared.
                let mut renames = b_renames.clone();
                for (name, rel) in linked.iter().zip(&case) {
                    if *rel == Rel::Eq {
                        renames.push(((name, 1), (name, 0)));
                    }
                }
                let combos_a = lower_pattern(&a.pattern, &ga);
                let combos_b: Vec<PatCombo> = lower_pattern(&b.pattern, &gb)
                    .iter()
                    .map(|c| rename_combo(c, &renames))
                    .collect();

                // Branch-independent constraint sets.
                let mut sets: Vec<Vec<Branch>> = Vec::new();
                for v in tpl_sym {
                    sets.extend(bound_sets(v, (v.name, 0), ground, &[]));
                }
                for v in &a_sym {
                    sets.extend(bound_sets(v, (v.name, 0), &ga, &[]));
                }
                for v in &b_sym {
                    let key = renames.iter().fold(
                        (v.name, 1),
                        |k, (from, to)| if k == *from { *to } else { k },
                    );
                    sets.extend(bound_sets(v, key, &gb, &renames));
                }
                sets.extend(guard_sets(&tpl.guards, ground, &[]));
                sets.extend(guard_sets(&a.guards, &ga, &[]));
                sets.extend(guard_sets(&b.guards, &gb, &renames));

                let mut base: Vec<Lin> = Vec::new();
                for (name, lo, hi) in &model.envelope.frees {
                    let var = Lin::var((name, 0));
                    base.push(var.sub(&Lin::konst(i128::from(*lo))));
                    base.push(Lin::konst(i128::from(*hi)).sub(&var));
                }
                for (name, rel) in linked.iter().zip(&case) {
                    let x = Lin::var((name, 0));
                    let y = Lin::var((name, 1));
                    match rel {
                        Rel::Eq => {}
                        Rel::Lt => base.push(x.sub(&y).sub(&Lin::konst(1))),
                        Rel::Gt => base.push(y.sub(&x).sub(&Lin::konst(1))),
                    }
                }

                let base_len = base.len();
                for ca in &combos_a {
                    for cb in &combos_b {
                        if same_lane(ca, cb) {
                            continue; // ordered on real hardware
                        }
                        base.truncate(base_len);
                        // Non-empty ranges.
                        base.push(ca.len.sub(&Lin::konst(1)));
                        base.push(cb.len.sub(&Lin::konst(1)));
                        // Overlap: baseA <= baseB + lenB - 1 and
                        //          baseB <= baseA + lenA - 1.
                        base.push(cb.base.add(&cb.len).sub(&Lin::konst(1)).sub(&ca.base));
                        base.push(ca.base.add(&ca.len).sub(&Lin::konst(1)).sub(&cb.base));
                        base.extend(ca.cond.iter().cloned());
                        base.extend(cb.cond.iter().cloned());
                        if any_combo_feasible(&mut base, &sets, &mut stats.fm_calls) {
                            return Err(match search_counterexample(model, tpl_idx) {
                                Some(ce) => RaceError::Counterexample(Box::new(ce)),
                                None => RaceError::Unproven {
                                    family: model.family,
                                    template: tpl.name,
                                    pair: (ai, bi),
                                    grounding: ground.clone(),
                                },
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

// --- counterexample concretization ---------------------------------------

/// Concrete shape environments in ascending parameter-sum order.
fn shape_envs_sorted(env: &Envelope) -> Vec<Env> {
    let mut shapes: Vec<(i64, Env)> = vec![(0, Env::new())];
    let extend = |shapes: Vec<(i64, Env)>, name: &'static str, vals: &[i64]| {
        let mut next = Vec::with_capacity(shapes.len() * vals.len());
        for (key, e) in &shapes {
            for val in vals {
                let mut e2 = e.clone();
                e2.insert(name, *val);
                next.push((key + val, e2));
            }
        }
        next
    };
    for (name, vals) in &env.grid {
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        shapes = extend(shapes, name, &sorted);
    }
    for (name, lo, hi) in &env.frees {
        let vals: Vec<i64> = if *name == "n" && !env.search_n.is_empty() {
            env.search_n
                .iter()
                .copied()
                .filter(|v| v >= lo && v <= hi)
                .collect()
        } else {
            (*lo..=(*lo + 8).min(*hi)).collect()
        };
        shapes = extend(shapes, name, &vals);
    }
    shapes.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    shapes
        .into_iter()
        .map(|(_, mut e)| {
            for (name, expr) in &env.derived {
                let val = expr.eval(&e);
                e.insert(name, val);
            }
            e
        })
        .collect()
}

/// Enumerate assignments of `vars` (bounds evaluated left-to-right under
/// the growing env); call `f` for each. Returns `false` to stop early.
fn for_each_assignment(
    vars: &[VarDef],
    env: &mut Env,
    f: &mut impl FnMut(&mut Env) -> bool,
) -> bool {
    let Some((v, rest)) = vars.split_first() else {
        return f(env);
    };
    let lo = v.lo.eval(env);
    let hi = v.hi.eval(env);
    for val in lo..=hi {
        env.insert(v.name, val);
        if !for_each_assignment(rest, env, f) {
            env.remove(v.name);
            return false;
        }
    }
    env.remove(v.name);
    true
}

fn emit_access(
    t: &mut HazardTracker,
    a: &Access,
    alloc_base: usize,
    env: &mut Env,
    threads: u32,
    budget: &mut i64,
) {
    for_each_assignment(&a.vars, env, &mut |env| {
        if !a.guards.iter().all(|g| g.eval(env) >= 0) {
            return true;
        }
        // Data predicates are assumed true during the search.
        match &a.pattern {
            Pattern::Striped { base, len } => {
                let b = base.eval(env);
                let l = len.eval(env);
                if b >= 0 && l > 0 {
                    *budget -= l;
                    let off = alloc_base + b as usize;
                    match a.kind {
                        AccessKind::Read => t.striped_read(off, l as usize, threads),
                        AccessKind::Write => t.striped_write(off, l as usize, threads),
                    }
                }
            }
            Pattern::Broadcast { off } => {
                let o = off.eval(env);
                if o >= 0 {
                    *budget -= 1;
                    t.broadcast_read(alloc_base + o as usize);
                }
            }
            Pattern::Owned { owner, base, len } => {
                let ow = owner.eval(env);
                let b = base.eval(env);
                let l = len.eval(env);
                if ow >= 0 && b >= 0 && l > 0 {
                    *budget -= l;
                    let lane = (ow as u64 % u64::from(threads.max(1))) as u32;
                    let off = alloc_base + b as usize;
                    match a.kind {
                        AccessKind::Read => t.range_read(lane, off, l as usize),
                        AccessKind::Write => t.range_write(lane, off, l as usize),
                    }
                }
            }
        }
        true
    });
}

/// Search the envelope for a concrete shape on which `template` conflicts,
/// replaying instances through a real `HazardTracker` (Record mode).
pub fn search_counterexample(model: &KernelModel, tpl_idx: usize) -> Option<Counterexample> {
    let tpl = &model.templates[tpl_idx];
    let mut budget: i64 = 4_000_000;
    let mut tracker = HazardTracker::new(HazardMode::Record);
    for shape in shape_envs_sorted(&model.envelope) {
        for &threads in &model.envelope.threads {
            // Alloc bases: pack allocations back to back with padding so
            // cross-allocation offsets never collide in the tracker.
            let mut alloc_bases = Vec::with_capacity(model.allocs.len());
            let mut cursor = 0usize;
            for al in &model.allocs {
                alloc_bases.push(cursor);
                cursor += al.elems.eval(&shape).max(0) as usize + 64;
            }
            let mut found: Option<(Env, Hazard)> = None;
            let mut env = shape.clone();
            for_each_assignment(&tpl.vars, &mut env, &mut |env| {
                if !tpl.guards.iter().all(|g| g.eval(env) >= 0) {
                    return true;
                }
                tracker.reset_for(0, tpl.name);
                for a in &tpl.accesses {
                    emit_access(
                        &mut tracker,
                        a,
                        alloc_bases[a.alloc],
                        env,
                        threads,
                        &mut budget,
                    );
                }
                if tracker.total_hazards() > 0 {
                    let rep = tracker.take_report().expect("touched tracker has a report");
                    let epoch_env: Env = tpl
                        .vars
                        .iter()
                        .filter_map(|v| env.get(v.name).map(|val| (v.name, *val)))
                        .collect();
                    found = Some((epoch_env, rep.hazards[0].clone()));
                    return false;
                }
                budget > 0
            });
            if let Some((epoch_env, hazard)) = found {
                return Some(Counterexample {
                    family: model.family,
                    template: tpl.name,
                    shape,
                    threads,
                    epoch_env,
                    hazard,
                });
            }
            if budget <= 0 {
                return None;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{k, v};
    use crate::model::{AllocModel, EpochTemplate};

    fn envelope() -> Envelope {
        Envelope {
            grid: vec![("m", vec![1, 2, 3])],
            derived: vec![],
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![2, 3, 4],
            search_n: vec![1, 2, 3, 4, 6, 8],
        }
    }

    fn model(templates: Vec<EpochTemplate>) -> KernelModel {
        KernelModel {
            family: "test",
            label: "test",
            allocs: vec![AllocModel {
                name: "buf",
                elems: v("n") * k(4),
            }],
            templates,
            smem_bytes: v("n") * k(32),
            envelope: envelope(),
            schedule: None,
        }
    }

    fn access(kind: AccessKind, pattern: Pattern) -> Access {
        Access {
            alloc: 0,
            kind,
            pattern,
            vars: vec![],
            guards: vec![],
            preds: vec![],
        }
    }

    #[test]
    fn disjoint_halves_prove_even_with_symbolic_n() {
        let m = model(vec![EpochTemplate {
            name: "halves",
            vars: vec![],
            guards: vec![],
            accesses: vec![
                access(
                    AccessKind::Write,
                    Pattern::Striped {
                        base: k(0),
                        len: v("n"),
                    },
                ),
                access(
                    AccessKind::Read,
                    Pattern::Striped {
                        base: v("n"),
                        len: v("n"),
                    },
                ),
            ],
        }]);
        let stats = prove_model(&m).expect("disjoint halves must prove");
        assert!(stats.fm_calls > 0);
    }

    #[test]
    fn per_owner_point_writes_prove_via_case_split() {
        // One write at offset i owned by lane i, i in [0, n-1]: the self
        // pair needs the i != i' split to see the offsets differ too.
        let m = model(vec![EpochTemplate {
            name: "points",
            vars: vec![],
            guards: vec![],
            accesses: vec![Access {
                alloc: 0,
                kind: AccessKind::Write,
                pattern: Pattern::Owned {
                    owner: v("i"),
                    base: v("i"),
                    len: k(1),
                },
                vars: vec![VarDef::new("i", k(0), v("n") - k(1))],
                guards: vec![],
                preds: vec![],
            }],
        }]);
        prove_model(&m).expect("distinct owners at distinct offsets must prove");
    }

    #[test]
    fn enumerated_chunks_prove_despite_nonlinear_offsets() {
        // Owner c writes [c*m, c*m + m): c*m is nonlinear, so c must be
        // enumerated; chunks of distinct owners are disjoint.
        let m = model(vec![EpochTemplate {
            name: "chunks",
            vars: vec![],
            guards: vec![],
            accesses: vec![Access {
                alloc: 0,
                kind: AccessKind::Write,
                pattern: Pattern::Owned {
                    owner: v("c"),
                    base: v("c") * v("m"),
                    len: v("m"),
                },
                vars: vec![VarDef::enumerated("c", k(0), k(3))],
                guards: vec![],
                preds: vec![],
            }],
        }]);
        prove_model(&m).expect("disjoint owner chunks must prove");
    }

    #[test]
    fn broadcast_under_a_write_yields_a_counterexample() {
        let m = model(vec![EpochTemplate {
            name: "bcast_race",
            vars: vec![],
            guards: vec![],
            accesses: vec![
                access(
                    AccessKind::Write,
                    Pattern::Striped {
                        base: k(0),
                        len: v("n"),
                    },
                ),
                access(AccessKind::Read, Pattern::Broadcast { off: k(0) }),
            ],
        }]);
        match prove_model(&m) {
            Err(RaceError::Counterexample(ce)) => {
                assert_eq!(ce.template, "bcast_race");
                // Minimal in the search order: the smallest grid point.
                assert_eq!(ce.shape.get("n"), Some(&1));
                assert_eq!(ce.shape.get("m"), Some(&1));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn same_lane_striping_is_recognized() {
        // Read and write sweep the same range with the same striping:
        // every common offset is touched by the same lane — safe.
        let m = model(vec![EpochTemplate {
            name: "inplace",
            vars: vec![],
            guards: vec![],
            accesses: vec![
                access(
                    AccessKind::Read,
                    Pattern::Striped {
                        base: k(0),
                        len: v("n"),
                    },
                ),
                access(
                    AccessKind::Write,
                    Pattern::Striped {
                        base: k(0),
                        len: v("n"),
                    },
                ),
            ],
        }]);
        prove_model(&m).expect("identically-striped in-place update must prove");
    }
}
