//! Shared-memory arena for block programs.
//!
//! A block program receives a [`SharedMem`] whose capacity equals the
//! `smem_bytes` of its launch configuration; attempts to allocate past the
//! capacity panic, mirroring how a real kernel simply cannot address more
//! shared memory than it requested. The engine validates the *request*
//! against the device limit before any block runs (see
//! [`crate::engine::launch`]), so a panic here is a kernel authoring bug,
//! not a simulated hardware failure.

use crate::hazard::{HazardMode, HazardTracker};

/// A bump-allocated `f64` arena standing in for GPU shared memory.
#[derive(Debug)]
pub struct SharedMem {
    buf: Vec<f64>,
    used: usize,
    /// Kernel label of the owning launch; attributes overflow panics and
    /// hazard diagnostics to the kernel that caused them.
    label: &'static str,
    /// Block id of the owning block (set by `BlockContext::reset_for`).
    block_id: usize,
    /// Access tracker; `None` in [`HazardMode::Off`] so untracked launches
    /// pay one pointer-null branch per instrumented phase and nothing else.
    tracker: Option<Box<HazardTracker>>,
}

impl SharedMem {
    /// Arena with capacity for `bytes` bytes (rounded down to whole `f64`s).
    pub fn with_bytes(bytes: usize) -> Self {
        SharedMem {
            // Round up to whole grains: an f32 kernel's byte request need
            // not be 8-byte aligned, and truncating would under-provision
            // the last partial grain. f64 requests are always multiples of
            // 8, so their capacity is unchanged.
            buf: vec![0.0; bytes.div_ceil(std::mem::size_of::<f64>())],
            used: 0,
            label: "kernel",
            block_id: 0,
            tracker: None,
        }
    }

    /// Like [`SharedMem::with_bytes`], but recycling `buf`'s allocation:
    /// the buffer is cleared and resized to the requested grain count, so
    /// when its capacity already suffices (a resident worker re-running a
    /// launch of the same footprint) no heap allocation happens. The
    /// resulting state is element-for-element identical to a fresh arena.
    pub fn with_bytes_reusing(bytes: usize, mut buf: Vec<f64>) -> Self {
        let grains = bytes.div_ceil(std::mem::size_of::<f64>());
        buf.clear();
        buf.resize(grains, 0.0);
        SharedMem {
            buf,
            used: 0,
            label: "kernel",
            block_id: 0,
            tracker: None,
        }
    }

    /// Take the arena's buffer for reuse by a later
    /// [`SharedMem::with_bytes_reusing`].
    pub fn into_buffer(self) -> Vec<f64> {
        self.buf
    }

    /// Label the arena with the owning kernel (set by the executor from the
    /// launch configuration).
    pub fn set_label(&mut self, label: &'static str) {
        self.label = label;
        if let Some(t) = self.tracker.as_deref_mut() {
            t.reset_for(self.block_id, label);
        }
    }

    /// The owning kernel's label.
    #[inline]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Install (or remove) hazard tracking for subsequent blocks.
    pub fn set_hazard_mode(&mut self, mode: HazardMode) {
        if mode.is_on() {
            let mut t = HazardTracker::new(mode);
            t.reset_for(self.block_id, self.label);
            self.tracker = Some(Box::new(t));
        } else {
            self.tracker = None;
        }
    }

    /// The active hazard mode.
    #[inline]
    pub fn hazard_mode(&self) -> HazardMode {
        self.tracker
            .as_deref()
            .map_or(HazardMode::Off, |t| t.mode())
    }

    /// The access tracker, when hazard tracking is on. Kernels guard each
    /// instrumented phase with `if let Some(t) = ctx.smem.tracker()` so the
    /// `Off` path stays branch-cheap.
    #[inline]
    pub fn tracker(&mut self) -> Option<&mut HazardTracker> {
        self.tracker.as_deref_mut()
    }

    /// Conflicts detected so far in the current block.
    #[inline]
    pub fn hazard_count(&self) -> u64 {
        self.tracker.as_deref().map_or(0, |t| t.total_hazards())
    }

    /// Reassign the arena to block `block_id` (resets tracker state).
    pub(crate) fn assign_block(&mut self, block_id: usize) {
        self.block_id = block_id;
        if let Some(t) = self.tracker.as_deref_mut() {
            t.reset_for(block_id, self.label);
        }
    }

    /// Capacity in `f64` elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Elements currently allocated.
    #[inline]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Allocate `len` elements; returns the arena offset.
    ///
    /// # Panics
    /// When the request exceeds the block's declared shared memory — a
    /// kernel bug (the declared size is validated by the engine).
    pub fn alloc(&mut self, len: usize) -> usize {
        assert!(
            self.used + len <= self.buf.len(),
            "shared-memory overflow in `{}` block {}: {} + {} > {} f64s — kernel requested too little smem",
            self.label,
            self.block_id,
            self.used,
            len,
            self.buf.len()
        );
        let off = self.used;
        self.used += len;
        off
    }

    /// Allocate `len` scalar elements of `elem_bytes` bytes each; returns
    /// the offset in *scalar-element* units.
    ///
    /// The arena itself stays `f64`-grained: the request is rounded up to
    /// whole 8-byte grains, so distinct allocations remain disjoint at
    /// grain granularity (which is what the hazard tracker keys on). For
    /// `elem_bytes == 8` this is exactly [`SharedMem::alloc`].
    ///
    /// # Panics
    /// When `elem_bytes` does not divide the 8-byte grain, or on overflow
    /// (see [`SharedMem::alloc`]).
    pub fn alloc_scalar(&mut self, len: usize, elem_bytes: usize) -> usize {
        assert!(
            elem_bytes > 0 && 8 % elem_bytes == 0,
            "elem_bytes {elem_bytes} must divide the 8-byte arena grain"
        );
        let grains = (len * elem_bytes).div_ceil(8);
        let grain_off = self.alloc(grains);
        grain_off * (8 / elem_bytes)
    }

    /// Reset all allocations (used when a worker reuses the arena for the
    /// next block) and zero the buffer, matching the "fresh" state a new
    /// block observes.
    pub fn reset(&mut self) {
        self.used = 0;
        self.buf.fill(0.0);
    }

    /// View of an allocation.
    #[inline]
    pub fn slice(&self, off: usize, len: usize) -> &[f64] {
        &self.buf[off..off + len]
    }

    /// Mutable view of an allocation.
    #[inline]
    pub fn slice_mut(&mut self, off: usize, len: usize) -> &mut [f64] {
        &mut self.buf[off..off + len]
    }

    /// Two disjoint mutable views (e.g. the paper's factor window and RHS
    /// cache living side by side).
    pub fn slice2_mut(
        &mut self,
        off1: usize,
        len1: usize,
        off2: usize,
        len2: usize,
    ) -> (&mut [f64], &mut [f64]) {
        assert!(
            off1 + len1 <= off2 || off2 + len2 <= off1,
            "overlapping shared slices"
        );
        if off1 < off2 {
            let (a, b) = self.buf.split_at_mut(off2);
            (&mut a[off1..off1 + len1], &mut b[..len2])
        } else {
            let (a, b) = self.buf.split_at_mut(off1);
            let first = &mut b[..len1];
            (first, &mut a[off2..off2 + len2])
        }
    }

    /// Raw access to the whole arena (kernels that manage their own
    /// sub-allocation).
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_use() {
        let mut s = SharedMem::with_bytes(64); // 8 f64
        assert_eq!(s.capacity(), 8);
        let a = s.alloc(3);
        let b = s.alloc(5);
        assert_eq!((a, b), (0, 3));
        s.slice_mut(a, 3)[2] = 7.0;
        assert_eq!(s.slice(a, 3)[2], 7.0);
        assert_eq!(s.used(), 8);
    }

    #[test]
    #[should_panic(expected = "shared-memory overflow in `gbtrf_fused` block 11")]
    fn overflow_panic_names_kernel_and_block() {
        let mut s = SharedMem::with_bytes(16);
        s.set_label("gbtrf_fused");
        s.assign_block(11);
        s.alloc(3);
    }

    #[test]
    fn alloc_scalar_grains() {
        let mut s = SharedMem::with_bytes(64); // 8 grains
                                               // f64: identical to alloc.
        let a = s.alloc_scalar(3, 8);
        assert_eq!(a, 0);
        assert_eq!(s.used(), 3);
        // f32: 5 elements = 20 bytes = 3 grains, offset in f32 units.
        let b = s.alloc_scalar(5, 4);
        assert_eq!(b, 3 * 2);
        assert_eq!(s.used(), 6);
        // Packing: a 1-element f32 request still consumes a whole grain,
        // keeping allocations grain-disjoint for the hazard tracker.
        let c = s.alloc_scalar(1, 4);
        assert_eq!(c, 6 * 2);
        assert_eq!(s.used(), 7);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn alloc_scalar_rejects_odd_widths() {
        let mut s = SharedMem::with_bytes(64);
        let _ = s.alloc_scalar(1, 3);
    }

    #[test]
    fn reused_buffer_is_indistinguishable_from_fresh() {
        let fresh = SharedMem::with_bytes(60); // rounds up to 8 grains
        let mut dirty = vec![9.0; 100];
        dirty.shrink_to(100);
        let cap_before = dirty.capacity();
        let reused = SharedMem::with_bytes_reusing(60, dirty);
        assert_eq!(reused.capacity(), fresh.capacity());
        assert_eq!(reused.used(), 0);
        let buf = reused.into_buffer();
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|&v| v == 0.0));
        assert!(buf.capacity() >= 8 && buf.capacity() <= cap_before.max(8));
    }

    #[test]
    fn tracker_lifecycle() {
        let mut s = SharedMem::with_bytes(64);
        assert_eq!(s.hazard_mode(), HazardMode::Off);
        assert!(s.tracker().is_none());
        s.set_hazard_mode(HazardMode::Record);
        assert_eq!(s.hazard_mode(), HazardMode::Record);
        let t = s.tracker().unwrap();
        t.write(0, 2);
        t.read(1, 2);
        assert_eq!(s.hazard_count(), 1);
        // Reassigning the arena to a new block clears tracked state.
        s.assign_block(3);
        assert_eq!(s.hazard_count(), 0);
        s.set_hazard_mode(HazardMode::Off);
        assert!(s.tracker().is_none());
    }

    #[test]
    fn reset_zeroes() {
        let mut s = SharedMem::with_bytes(64);
        let a = s.alloc(8);
        s.slice_mut(a, 8).fill(5.0);
        s.reset();
        assert_eq!(s.used(), 0);
        let a = s.alloc(8);
        assert!(s.slice(a, 8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn disjoint_slices() {
        let mut s = SharedMem::with_bytes(10 * 8);
        let a = s.alloc(4);
        let b = s.alloc(6);
        let (x, y) = s.slice2_mut(a, 4, b, 6);
        x[0] = 1.0;
        y[5] = 2.0;
        assert_eq!(s.slice(a, 4)[0], 1.0);
        assert_eq!(s.slice(b, 6)[5], 2.0);
        // Reverse order also works.
        let (y2, x2) = s.slice2_mut(b, 6, a, 4);
        assert_eq!(y2[5], 2.0);
        assert_eq!(x2[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_slices_panic() {
        let mut s = SharedMem::with_bytes(10 * 8);
        let _ = s.alloc(10);
        let _ = s.slice2_mut(0, 6, 4, 4);
    }
}
