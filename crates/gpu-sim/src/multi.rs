//! Multi-device batch execution.
//!
//! The paper evaluates a *single GCD* of the MI250x; the physical card has
//! two, and production deployments split batches across devices. This
//! module provides that split: a batch of independent problems is
//! partitioned across devices proportionally to their throughput, each
//! partition launches independently, and the makespan is the slowest
//! device's time (plus one host-side dispatch per device).

use crate::device::DeviceSpec;
use crate::timing::SimTime;

/// A group of devices executing one batch cooperatively.
#[derive(Debug, Clone)]
pub struct DeviceGroup {
    /// Member devices.
    pub devices: Vec<DeviceSpec>,
}

impl DeviceGroup {
    /// Group from a list of devices.
    pub fn new(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "need at least one device");
        DeviceGroup { devices }
    }

    /// The full MI250x card: two GCDs, resolved through the device
    /// registry ([`crate::registry::MI250X_FULL`]) — the single source of
    /// truth for catalog hardware.
    pub fn mi250x_full() -> Self {
        crate::registry::group(crate::registry::MI250X_FULL).expect("mi250x_full is in the catalog")
    }

    /// Split `batch` across the devices proportionally to a simple
    /// throughput proxy (sustained memory bandwidth — the right first-order
    /// weight for the memory-bound batch kernels of this workspace), every
    /// device getting at least one problem while problems remain.
    pub fn partition(&self, batch: usize) -> Vec<usize> {
        let weights: Vec<f64> = self.devices.iter().map(|d| d.mem_bw).collect();
        let total: f64 = weights.iter().sum();
        let mut parts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * batch as f64).floor() as usize)
            .collect();
        let mut assigned: usize = parts.iter().sum();
        // Distribute the remainder round-robin.
        let len = parts.len();
        let mut i = 0;
        while assigned < batch {
            parts[i % len] += 1;
            assigned += 1;
            i += 1;
        }
        parts
    }

    /// Execute a batch by splitting it across the group: `run(dev, lo, hi)`
    /// must launch problems `[lo, hi)` on `dev` and return the modeled
    /// time. Returns the makespan (devices run concurrently; each partition
    /// pays its own launch path).
    pub fn run_split<E>(
        &self,
        batch: usize,
        mut run: impl FnMut(&DeviceSpec, usize, usize) -> Result<SimTime, E>,
    ) -> Result<SimTime, E> {
        let parts = self.partition(batch);
        let mut makespan = SimTime::ZERO;
        let mut lo = 0usize;
        for (dev, &count) in self.devices.iter().zip(&parts) {
            if count == 0 {
                continue;
            }
            let t = run(dev, lo, lo + count)?;
            if t > makespan {
                makespan = t;
            }
            lo += count;
        }
        Ok(makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::KernelCounters;
    use crate::engine::{launch, LaunchConfig};

    #[test]
    fn partition_is_complete_and_proportional() {
        let g = DeviceGroup::mi250x_full();
        let parts = g.partition(1000);
        assert_eq!(parts.iter().sum::<usize>(), 1000);
        // Identical GCDs: even split within rounding.
        assert!((parts[0] as isize - parts[1] as isize).abs() <= 1);

        // Asymmetric group: the H100 gets more work than one GCD.
        let g = DeviceGroup::new(vec![DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()]);
        let parts = g.partition(100);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        assert!(parts[0] > parts[1]);
    }

    #[test]
    fn every_device_used_for_small_batches() {
        let g = DeviceGroup::mi250x_full();
        let parts = g.partition(3);
        assert_eq!(parts.iter().sum::<usize>(), 3);
        assert!(parts.iter().all(|&p| p >= 1));
    }

    #[test]
    fn two_gcds_roughly_halve_the_makespan() {
        // A latency-bound kernel whose time is wave-dominated: splitting
        // 4000 blocks across two GCDs halves the wave count.
        let body = |_: &mut (), ctx: &mut crate::block::BlockContext| {
            ctx.gld(1024);
            ctx.seq_cycles(50_000.0);
        };
        let cfg = LaunchConfig::new(64, 32 * 1024); // 2 blocks/CU on a GCD
        let gcd = DeviceSpec::mi250x_gcd();
        let mut all = vec![(); 4000];
        let single = launch(&gcd, &cfg, &mut all, body).unwrap().time;

        let group = DeviceGroup::mi250x_full();
        let split = group
            .run_split::<crate::engine::LaunchError>(4000, |dev, lo, hi| {
                let mut part = vec![(); hi - lo];
                Ok(launch(dev, &cfg, &mut part, body)?.time)
            })
            .unwrap();
        let ratio = single.secs() / split.secs();
        assert!(
            (1.7..2.3).contains(&ratio),
            "expected ~2x from 2 GCDs, got {ratio:.2}x"
        );
        let _ = KernelCounters::default();
    }
}
