//! Kernel launch engine.
//!
//! [`launch`] validates a configuration against the device (shared-memory
//! and thread limits — the same checks that abort a real CUDA/HIP launch),
//! computes residency, executes the block program once per grid block with
//! a real shared-memory arena, merges counters, and prices the launch with
//! the timing model.
//!
//! One grid block maps to one batch problem throughout this workspace, so
//! the engine takes `&mut [P]` and hands each block mutable access to its
//! own problem — the Rust-safe equivalent of the paper's `double**`
//! batch-pointer interface.

use crate::block::BlockContext;
use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::executor::{execute_blocks, ParallelPolicy};
use crate::hazard::{global_mode, HazardMode, HazardReport};
use crate::occupancy::{occupancy_with_regs, Occupancy};
use crate::resident::EngineMode;
use crate::timing::{estimate_aggregate_with_overhead, FlopPrecision, SimTime};

/// Launch configuration: threads per block, dynamic shared memory,
/// (for register-blocked kernels) registers per thread, and the host
/// scheduling policy. The grid size is implied by the problem slice
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threads per block.
    pub threads: u32,
    /// Dynamic shared memory per block, in bytes.
    pub smem_bytes: u32,
    /// 32-bit registers per thread (0 = compiler default, no explicit
    /// pressure; occupancy then ignores the register file).
    pub regs_per_thread: u32,
    /// How blocks are scheduled onto host threads. Purely a host-side
    /// throughput knob: results and modeled time are bitwise-identical
    /// for every policy (see [`crate::executor`]).
    pub parallel: ParallelPolicy,
    /// Shared-memory hazard checking for this launch (see
    /// [`crate::hazard`]). Defaults to the process-wide mode
    /// ([`crate::hazard::global_mode`]), which is `Off` unless a test
    /// profile opts in.
    pub hazard: HazardMode,
    /// Kernel label attached to diagnostics (shared-memory overflow
    /// panics, hazard reports) so failures in a batch run are attributable.
    pub label: &'static str,
    /// Floating-point throughput class priced by the timing model.
    /// Defaults to fp64 (the paper's evaluation precision); fp32 launches
    /// run on twice the lanes per SM.
    pub precision: FlopPrecision,
    /// Engine mode: [`EngineMode::PerLaunch`] (the default) re-spawns
    /// scoped worker threads per launch and pays the cold launch overhead;
    /// [`EngineMode::Resident`] submits through a persistent worker pool
    /// and pays the warm overhead (see [`crate::resident`]). Results,
    /// hazard reports, and every counter except the provenance field
    /// `threads_spawned` are bitwise-identical across modes.
    pub engine: EngineMode,
}

impl LaunchConfig {
    /// Convenience constructor (no explicit register pressure). The engine
    /// mode defaults to the thread's ambient mode
    /// ([`crate::resident::ambient_engine`]): [`EngineMode::PerLaunch`]
    /// unless the caller sits inside a [`crate::resident::EngineScope`] —
    /// which is how backends thread `Resident` through kernel stacks that
    /// build their configurations internally.
    pub fn new(threads: u32, smem_bytes: u32) -> Self {
        LaunchConfig {
            threads,
            smem_bytes,
            regs_per_thread: 0,
            parallel: ParallelPolicy::Serial,
            hazard: global_mode(),
            label: "kernel",
            precision: FlopPrecision::Fp64,
            engine: crate::resident::ambient_engine(),
        }
    }

    /// Constructor with explicit register pressure.
    pub fn with_registers(threads: u32, smem_bytes: u32, regs_per_thread: u32) -> Self {
        LaunchConfig {
            regs_per_thread,
            ..LaunchConfig::new(threads, smem_bytes)
        }
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builder: set the hazard-checking mode for this launch.
    pub fn with_hazard(mut self, hazard: HazardMode) -> Self {
        self.hazard = hazard;
        self
    }

    /// Builder: label the launch for diagnostics.
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// Builder: set the floating-point throughput class.
    pub fn with_precision(mut self, precision: FlopPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Builder: select the engine mode (per-launch vs. resident pool).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

/// Why a launch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Requested shared memory exceeds the per-block capability — the
    /// paper's fused kernel hits this on large matrices ("even failing to
    /// run", §5.2).
    SharedMemExceeded {
        /// Bytes requested.
        requested: u32,
        /// Device per-block limit.
        limit: u32,
    },
    /// Thread count is zero or above the device maximum.
    BadThreadCount {
        /// Threads requested.
        requested: u32,
        /// Device per-block limit.
        limit: u32,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemExceeded { requested, limit } => {
                write!(
                    f,
                    "shared memory request {requested} B exceeds device limit {limit} B"
                )
            }
            LaunchError::BadThreadCount { requested, limit } => {
                write!(f, "thread count {requested} invalid (device limit {limit})")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Result of a successful launch.
#[derive(Debug, Clone)]
#[must_use = "carries the modeled time, counters, and hazard reports"]
pub struct LaunchReport {
    /// Residency achieved.
    pub occupancy: Occupancy,
    /// Aggregate counters: traffic and flops summed over blocks;
    /// critical-path fields (`cycles`, `smem_trips`, `syncs`) are the max
    /// over blocks.
    pub counters: KernelCounters,
    /// Modeled execution time (includes launch overhead).
    pub time: SimTime,
    /// Number of blocks executed.
    pub grid: usize,
    /// Per-block hazard reports from blocks where the tracker detected
    /// conflicts, sorted by block id. Empty in [`HazardMode::Off`] (no
    /// tracking) and in `Enforce` mode (the first conflict aborts the
    /// block instead of reporting).
    pub hazards: Vec<HazardReport>,
}

/// Validate a configuration without running anything (used by dispatch
/// logic to decide whether the fused kernel can run at all).
pub fn validate(dev: &DeviceSpec, cfg: &LaunchConfig) -> Result<Occupancy, LaunchError> {
    if cfg.threads == 0 || cfg.threads > dev.max_threads_per_block {
        return Err(LaunchError::BadThreadCount {
            requested: cfg.threads,
            limit: dev.max_threads_per_block,
        });
    }
    if cfg.smem_bytes > dev.max_smem_per_block {
        return Err(LaunchError::SharedMemExceeded {
            requested: cfg.smem_bytes,
            limit: dev.max_smem_per_block,
        });
    }
    occupancy_with_regs(dev, cfg.threads, cfg.smem_bytes, cfg.regs_per_thread).ok_or(
        LaunchError::BadThreadCount {
            requested: cfg.threads,
            limit: dev.max_threads_per_sm,
        },
    )
}

/// Execute `body` once per problem (= grid block) and price the launch.
///
/// The body receives the problem and a [`BlockContext`]; it must record its
/// global traffic and critical-path work through the context for the timing
/// to be meaningful (the numerics are real regardless).
pub fn launch<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: F,
) -> Result<LaunchReport, LaunchError>
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let occ = validate(dev, cfg)?;
    let grid = problems.len();
    let (agg, hazards) = execute_blocks(dev, cfg, problems, &body);
    let time = estimate_aggregate_with_overhead(
        dev,
        &occ,
        grid,
        &agg,
        cfg.precision,
        cfg.engine.launch_overhead_s(dev),
    );
    Ok(LaunchReport {
        occupancy: occ,
        counters: agg,
        time,
        grid,
        hazards,
    })
}

/// Launch variant for kernels that only need per-block ids (no problem
/// slice), e.g. cost dry-runs.
pub fn launch_ids<F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    grid: usize,
    body: F,
) -> Result<LaunchReport, LaunchError>
where
    F: Fn(usize, &mut BlockContext) + Sync,
{
    let mut ids: Vec<usize> = (0..grid).collect();
    launch(dev, cfg, &mut ids, |id, ctx| body(*id, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_block_once() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, 256);
        let mut data = vec![0u32; 37];
        let rep = launch(&dev, &cfg, &mut data, |p, ctx| {
            *p += 1;
            ctx.gld(8);
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
        assert_eq!(rep.grid, 37);
        assert_eq!(rep.counters.global_read, 37 * 8);
        assert!(rep.time.secs() > 0.0);
    }

    #[test]
    fn blocks_see_own_shared_memory() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, 1024);
        let mut data = vec![0.0f64; 5];
        let _ = launch(&dev, &cfg, &mut data, |p, ctx| {
            let off = ctx.smem.alloc(4);
            let s = ctx.smem.slice_mut(off, 4);
            // Fresh arena every block: must read zeros.
            assert!(s.iter().all(|&v| v == 0.0));
            s[0] = ctx.block_id as f64;
            *p = ctx.smem.slice(off, 4)[0];
        })
        .unwrap();
        assert_eq!(data, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_oversized_smem() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, dev.max_smem_per_block + 1);
        let mut data = vec![0u8; 1];
        let err = launch(&dev, &cfg, &mut data, |_, _| {}).unwrap_err();
        assert!(matches!(err, LaunchError::SharedMemExceeded { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_bad_threads() {
        let dev = DeviceSpec::test_device();
        let mut data = vec![0u8; 1];
        let err = launch(&dev, &LaunchConfig::new(0, 0), &mut data, |_, _| {}).unwrap_err();
        assert!(matches!(err, LaunchError::BadThreadCount { .. }));
        let err = launch(
            &dev,
            &LaunchConfig::new(dev.max_threads_per_block + 1, 0),
            &mut data,
            |_, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, LaunchError::BadThreadCount { .. }));
    }

    #[test]
    fn validate_without_running() {
        let dev = DeviceSpec::test_device();
        let occ = validate(&dev, &LaunchConfig::new(8, 8192)).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert!(validate(&dev, &LaunchConfig::new(8, 20_000)).is_err());
    }

    #[test]
    fn launch_ids_passes_block_ids() {
        let dev = DeviceSpec::test_device();
        let rep = launch_ids(&dev, &LaunchConfig::new(8, 0), 10, |id, ctx| {
            ctx.gld(id + 1);
        })
        .unwrap();
        assert_eq!(rep.counters.global_read, (1..=10).sum::<usize>() as u64);
    }

    #[test]
    fn resident_mode_prices_warm_overhead_with_identical_results() {
        let dev = DeviceSpec::test_device();
        let cold_cfg = LaunchConfig::new(8, 256);
        let warm_cfg = cold_cfg.with_engine(EngineMode::Resident);
        let mut a = vec![0u32; 21];
        let mut b = vec![0u32; 21];
        let body = |p: &mut u32, ctx: &mut BlockContext| {
            *p += 3;
            ctx.gld(64);
            ctx.seq_cycles(50.0);
        };
        let cold = launch(&dev, &cold_cfg, &mut a, body).unwrap();
        let warm = launch(&dev, &warm_cfg, &mut b, body).unwrap();
        assert_eq!(a, b);
        let delta = dev.launch_overhead_s - dev.warm_launch_overhead_s;
        assert!((cold.time.secs() - warm.time.secs() - delta).abs() < 1e-18);
        // Serial launches spawn no threads under either mode, so even the
        // provenance counter agrees.
        assert_eq!(cold.counters, warm.counters);
        assert_eq!(warm.counters.threads_spawned, 0);
    }

    #[test]
    fn ambient_engine_scope_flows_into_fresh_configs() {
        let dev = DeviceSpec::test_device();
        let mut a = vec![0u32; 5];
        let mut b = vec![0u32; 5];
        let body = |p: &mut u32, ctx: &mut BlockContext| {
            *p += 1;
            ctx.gld(32);
        };
        let cold = launch(&dev, &LaunchConfig::new(8, 0), &mut a, body).unwrap();
        let warm = crate::resident::with_engine_mode(EngineMode::Resident, || {
            // Config built *inside* the scope inherits Resident — the path
            // deep kernel stacks take when a backend opens the scope.
            let cfg = LaunchConfig::new(8, 0);
            assert_eq!(cfg.engine, EngineMode::Resident);
            launch(&dev, &cfg, &mut b, body).unwrap()
        });
        assert_eq!(a, b);
        let delta = dev.launch_overhead_s - dev.warm_launch_overhead_s;
        assert!((cold.time.secs() - warm.time.secs() - delta).abs() < 1e-18);
        // Outside the scope the default is PerLaunch again.
        assert_eq!(LaunchConfig::new(8, 0).engine, EngineMode::PerLaunch);
    }

    #[test]
    fn more_blocks_more_time() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, 8192);
        let mut small = vec![(); 8];
        let mut large = vec![(); 80];
        let body = |_: &mut (), ctx: &mut BlockContext| {
            ctx.gld(65536);
            ctx.seq_cycles(10_000.0);
        };
        let t_small = launch(&dev, &cfg, &mut small, body).unwrap().time;
        let t_large = launch(&dev, &cfg, &mut large, body).unwrap().time;
        assert!(t_large.secs() > 5.0 * t_small.secs() / 2.0);
    }
}
