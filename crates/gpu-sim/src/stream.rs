//! Concurrent-stream execution model (the paper's Figure 1 baseline).
//!
//! The alternative to a dedicated batch kernel is launching one kernel per
//! matrix, spread over `S` streams. Two effects make this lose for small
//! problems, both modeled here:
//!
//! 1. **Dispatch serialization** — the host enqueues launches one at a
//!    time; each enqueue costs a fixed overhead, so `N` launches pay
//!    `N * dispatch` on the host timeline no matter how parallel the device
//!    is.
//! 2. **Single-problem occupancy** — a kernel operating on one small matrix
//!    occupies one block; even with `S` kernels co-resident the device runs
//!    at `S` blocks total instead of thousands, far below bandwidth
//!    saturation.

use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::engine::LaunchConfig;
use crate::executor::ParallelPolicy;
use crate::occupancy::Occupancy;
use crate::timing::{effective_bandwidth, SimTime};

/// Host-side cost of enqueueing one kernel launch (seconds). Streams do not
/// parallelize this; it is the dominant term for tiny kernels.
pub const DISPATCH_OVERHEAD_S: f64 = 2.5e-6;

/// Execution time of `n_kernels` identical single-problem kernels spread
/// round-robin over `n_streams` streams.
///
/// `per_block` holds the counters of one kernel's single block. Device-side,
/// `n_streams` blocks run concurrently (assuming each kernel is one block —
/// true for all the batch-of-small-problems workloads in this crate), so the
/// effective bandwidth is evaluated at that tiny residency. Host-side, all
/// dispatches serialize. The result is the max of the two timelines — the
/// standard pipeline bound.
pub fn simulate_streams(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    n_kernels: usize,
    n_streams: usize,
    per_block: &KernelCounters,
) -> SimTime {
    simulate_streams_with_policy(
        dev,
        cfg,
        n_kernels,
        n_streams,
        per_block,
        ParallelPolicy::Serial,
    )
}

/// [`simulate_streams`] with the host's enqueue loop spread over the
/// worker threads of `host_policy` (each host thread feeds its own
/// stream subset, the standard multi-threaded-dispatch mitigation).
/// Device-side time is unchanged; only the serialized-dispatch floor
/// divides by the worker count. `ParallelPolicy::Serial` reproduces
/// [`simulate_streams`] exactly.
pub fn simulate_streams_with_policy(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    n_kernels: usize,
    n_streams: usize,
    per_block: &KernelCounters,
    host_policy: ParallelPolicy,
) -> SimTime {
    assert!(n_streams > 0, "need at least one stream");
    if n_kernels == 0 {
        return SimTime::ZERO;
    }
    // Device residency: n_streams blocks spread over the device; at most
    // one block of each kernel is resident (grid = 1 per kernel).
    let blocks_conc = n_streams.min(n_kernels) as u32;
    let warps_per_block = dev.warps_per_block(cfg.threads);
    // Spread across SMs: warps per SM is tiny.
    let warps_per_sm = (blocks_conc * warps_per_block).div_ceil(dev.sms).max(1);
    let occ = Occupancy {
        blocks_per_sm: blocks_conc.div_ceil(dev.sms).max(1),
        concurrent_blocks: blocks_conc,
        warps_per_sm,
        limiter: crate::occupancy::Limiter::BlockCap,
    };
    let eff_bw = effective_bandwidth(dev, &occ);

    // One kernel's device time: launch overhead + max(mem, latency,
    // flop throughput). The single resident block owns one SM's fp64
    // lanes — the same throughput correction the batched estimate applies.
    let mem = per_block.global_bytes() as f64 / eff_bw;
    let lat = (per_block.cycles
        + per_block.smem_elems * dev.work_scale
        + per_block.smem_trips as f64 * dev.smem_latency_cycles
        + per_block.syncs as f64 * dev.sync_cycles)
        / dev.clock_hz;
    let flop_time = per_block.flops as f64 / dev.fp64_lanes_per_sm as f64 / 2.0 / dev.clock_hz;
    let kernel_time = dev.launch_overhead_s + mem.max(lat).max(flop_time);

    // Device timeline: ceil(N / S) rounds of S concurrent kernels.
    let rounds = n_kernels.div_ceil(n_streams);
    let device_time = rounds as f64 * kernel_time;

    // Host timeline: dispatches serialize per host thread; extra host
    // threads (never more than one per stream) each drive a disjoint
    // stream subset.
    let host_threads = host_policy.workers().min(n_streams).max(1);
    let host_time = n_kernels.div_ceil(host_threads) as f64 * DISPATCH_OVERHEAD_S;

    SimTime(device_time.max(host_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{launch, LaunchConfig};

    fn small_kernel_counters() -> KernelCounters {
        KernelCounters {
            global_read: 32 * 32 * 8,
            global_write: 32 * 32 * 8,
            flops: 2 * 32 * 32 * 32,
            cycles: 3000.0,
            ..Default::default()
        }
    }

    #[test]
    fn batch_beats_streams_for_small_problems() {
        // The Figure 1 effect: one batched launch vs 500 streamed launches.
        let dev = DeviceSpec::h100_pcie();
        let cfg = LaunchConfig::new(32, 16 * 1024);
        let batch = 500;
        let c = small_kernel_counters();

        let mut problems = vec![(); batch];
        let batched = launch(&dev, &cfg, &mut problems, |_, ctx| {
            ctx.gld(32 * 32 * 8);
            ctx.gst(32 * 32 * 8);
            ctx.par_work(32 * 32, 2 * 32);
            ctx.seq_cycles(3000.0);
        })
        .unwrap()
        .time;

        let streamed = simulate_streams(&dev, &cfg, batch, 16, &c);
        let speedup = streamed.secs() / batched.secs();
        assert!(
            speedup > 4.0,
            "expected a large batch advantage, got {speedup:.2}x"
        );
    }

    #[test]
    fn more_streams_help_until_host_bound() {
        let dev = DeviceSpec::h100_pcie();
        let cfg = LaunchConfig::new(32, 1024);
        let c = small_kernel_counters();
        let t1 = simulate_streams(&dev, &cfg, 200, 1, &c);
        let t16 = simulate_streams(&dev, &cfg, 200, 16, &c);
        assert!(t16.secs() < t1.secs());
        // Host dispatch floor: no stream count can beat it.
        let t4096 = simulate_streams(&dev, &cfg, 200, 4096, &c);
        assert!(t4096.secs() >= 200.0 * DISPATCH_OVERHEAD_S - 1e-12);
    }

    #[test]
    fn zero_kernels_is_free() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, 0);
        assert_eq!(
            simulate_streams(&dev, &cfg, 0, 16, &KernelCounters::default()).secs(),
            0.0
        );
        // The parallel-host variant must agree, for every policy.
        for policy in [
            ParallelPolicy::Serial,
            ParallelPolicy::threads(4),
            ParallelPolicy::Auto,
        ] {
            assert_eq!(
                simulate_streams_with_policy(&dev, &cfg, 0, 16, &KernelCounters::default(), policy)
                    .secs(),
                0.0
            );
        }
    }

    #[test]
    fn excess_streams_cap_at_kernel_count() {
        // n_streams > n_kernels: only n_kernels blocks can ever be
        // co-resident, so 64 streams over 3 kernels must price exactly
        // like 3 streams over 3 kernels — idle streams contribute nothing.
        let dev = DeviceSpec::h100_pcie();
        let cfg = LaunchConfig::new(32, 1024);
        let c = small_kernel_counters();
        let wide = simulate_streams(&dev, &cfg, 3, 64, &c);
        let exact = simulate_streams(&dev, &cfg, 3, 3, &c);
        assert_eq!(wide.secs(), exact.secs());
        // And a single kernel on many streams is one round of one kernel.
        let one = simulate_streams(&dev, &cfg, 1, 4096, &c);
        let solo = simulate_streams(&dev, &cfg, 1, 1, &c);
        assert_eq!(one.secs(), solo.secs());
    }

    #[test]
    fn single_stream_degenerates_to_serialized_dispatch_bound() {
        // One stream: the device timeline is n_kernels fully serialized
        // kernel executions, so the result is exactly
        // max(n * kernel_time, n * dispatch) — never less than either
        // serialized floor, and equal to n times the single-kernel run.
        let dev = DeviceSpec::h100_pcie();
        let cfg = LaunchConfig::new(32, 1024);
        let c = small_kernel_counters();
        let n = 200usize;
        let serial = simulate_streams(&dev, &cfg, n, 1, &c);
        let single = simulate_streams(&dev, &cfg, 1, 1, &c);
        assert!(serial.secs() >= n as f64 * DISPATCH_OVERHEAD_S - 1e-12);
        assert!(serial.secs() >= n as f64 * single.secs() - 1e-9);
        let expected = (n as f64 * single.secs()).max(n as f64 * DISPATCH_OVERHEAD_S);
        assert!(
            (serial.secs() - expected).abs() < 1e-12,
            "serialized bound: {} vs {}",
            serial.secs(),
            expected
        );
        // Monotonicity: a second stream can only help.
        assert!(simulate_streams(&dev, &cfg, n, 2, &c).secs() <= serial.secs());
    }

    #[test]
    fn parallel_host_dispatch_lifts_the_floor() {
        let dev = DeviceSpec::h100_pcie();
        let cfg = LaunchConfig::new(32, 1024);
        let c = small_kernel_counters();
        // Serial host: 200 dispatches serialize fully.
        let serial = simulate_streams_with_policy(&dev, &cfg, 200, 16, &c, ParallelPolicy::Serial);
        assert_eq!(
            serial.secs(),
            simulate_streams(&dev, &cfg, 200, 16, &c).secs()
        );
        // Four host threads: the dispatch floor divides by 4 (the device
        // timeline may now dominate, so only the floor claim is exact).
        let quad =
            simulate_streams_with_policy(&dev, &cfg, 200, 16, &c, ParallelPolicy::threads(4));
        assert!(quad.secs() <= serial.secs());
        assert!(quad.secs() >= 50.0 * DISPATCH_OVERHEAD_S - 1e-12);
        // Host threads are capped by the stream count.
        let capped =
            simulate_streams_with_policy(&dev, &cfg, 200, 2, &c, ParallelPolicy::threads(64));
        assert!(capped.secs() >= 100.0 * DISPATCH_OVERHEAD_S - 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let dev = DeviceSpec::test_device();
        let cfg = LaunchConfig::new(8, 0);
        let _ = simulate_streams(&dev, &cfg, 1, 0, &KernelCounters::default());
    }
}
