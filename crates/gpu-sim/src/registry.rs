//! The device registry: every simulated accelerator the workspace knows,
//! constructed from one source of truth.
//!
//! Before the fleet scheduler, each consumer hand-rolled its own specs —
//! bench's `Platforms` called the [`DeviceSpec`] constructors directly,
//! `DeviceGroup::mi250x_full` lived as an ad-hoc helper, and tests pinned
//! their own copies. The registry centralizes the catalog behind stable
//! string names so serving fleets, benches and tests all resolve hardware
//! the same way:
//!
//! - [`device`] — look up a single device by catalog name;
//! - [`group`] — look up a device group (one-device groups for every
//!   catalog entry, plus composites like `"mi250x_full"`);
//! - [`FleetSpec`] — compose a heterogeneous fleet (`"h100_pcie:1,
//!   mi250x_gcd:4"`) into per-worker [`DeviceSpec`]s with stable,
//!   per-instance names.
//!
//! Names are lowercase snake case and never change once shipped; the
//! serving layer persists them in reports.

use crate::device::DeviceSpec;
use crate::multi::DeviceGroup;

/// Catalog name of the NVIDIA H100-PCIe spec ([`DeviceSpec::h100_pcie`]).
pub const H100_PCIE: &str = "h100_pcie";
/// Catalog name of one AMD MI250x GCD ([`DeviceSpec::mi250x_gcd`]).
pub const MI250X_GCD: &str = "mi250x_gcd";
/// Catalog name of the tiny deterministic test device
/// ([`DeviceSpec::test_device`]).
pub const TEST_DEVICE: &str = "test";
/// Catalog name of the full two-GCD MI250x package ([`group`]).
pub const MI250X_FULL: &str = "mi250x_full";

/// Every single-device catalog name, in registry order.
#[must_use]
pub fn device_names() -> &'static [&'static str] {
    &[H100_PCIE, MI250X_GCD, TEST_DEVICE]
}

/// Look up a single device by catalog name.
#[must_use]
pub fn device(name: &str) -> Option<DeviceSpec> {
    match name {
        H100_PCIE => Some(DeviceSpec::h100_pcie()),
        MI250X_GCD => Some(DeviceSpec::mi250x_gcd()),
        TEST_DEVICE => Some(DeviceSpec::test_device()),
        _ => None,
    }
}

/// Look up a device group by catalog name: every single-device entry
/// resolves to a one-device group, and `"mi250x_full"` to the two-GCD
/// MI250x package the paper benchmarks (§8).
#[must_use]
pub fn group(name: &str) -> Option<DeviceGroup> {
    match name {
        MI250X_FULL => {
            let mut a = DeviceSpec::mi250x_gcd();
            let mut b = DeviceSpec::mi250x_gcd();
            a.name = "MI250x-GCD0 (simulated)".to_string();
            b.name = "MI250x-GCD1 (simulated)".to_string();
            Some(DeviceGroup::new(vec![a, b]))
        }
        _ => device(name).map(|d| DeviceGroup::new(vec![d])),
    }
}

/// One entry of a fleet composition: `count` instances of a catalog
/// device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEntry {
    /// Catalog device name ([`device_names`]).
    pub device: String,
    /// Number of instances.
    pub count: usize,
}

/// A heterogeneous fleet composition over the registry catalog.
///
/// ```
/// use gbatch_gpu_sim::registry::FleetSpec;
///
/// let fleet = FleetSpec::parse("h100_pcie:1,mi250x_gcd:4").unwrap();
/// let devices = fleet.devices().unwrap();
/// assert_eq!(devices.len(), 5);
/// assert_eq!(devices[0].name, "h100_pcie:0");
/// assert_eq!(devices[4].name, "mi250x_gcd:3");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetSpec {
    /// Ordered fleet entries; instance order is composition order.
    pub entries: Vec<FleetEntry>,
}

impl FleetSpec {
    /// An empty fleet.
    #[must_use]
    pub fn new() -> Self {
        FleetSpec::default()
    }

    /// Builder: append `count` instances of a catalog device.
    #[must_use]
    pub fn with(mut self, device: &str, count: usize) -> Self {
        self.entries.push(FleetEntry {
            device: device.to_string(),
            count,
        });
        self
    }

    /// Parse a `"name:count,name:count"` composition string. A bare name
    /// means one instance.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = FleetSpec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, count) = match part.split_once(':') {
                Some((n, c)) => (
                    n.trim(),
                    c.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("bad count in {part:?}: {e}"))?,
                ),
                None => (part, 1),
            };
            if device(name).is_none() {
                return Err(format!(
                    "unknown device {name:?} (catalog: {})",
                    device_names().join(", ")
                ));
            }
            spec.entries.push(FleetEntry {
                device: name.to_string(),
                count,
            });
        }
        if spec.entries.is_empty() {
            return Err("empty fleet spec".to_string());
        }
        Ok(spec)
    }

    /// Total instance count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Whether the composition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve the composition into per-instance device specs. Each
    /// instance is renamed `"<catalog_name>:<k>"` (`k` counted per
    /// catalog entry) so fleet reports distinguish identical hardware.
    pub fn devices(&self) -> Result<Vec<DeviceSpec>, String> {
        let mut out = Vec::with_capacity(self.len());
        for e in &self.entries {
            let base = device(&e.device).ok_or_else(|| {
                format!(
                    "unknown device {:?} (catalog: {})",
                    e.device,
                    device_names().join(", ")
                )
            })?;
            for k in 0..e.count {
                let mut d = base.clone();
                d.name = format!("{}:{k}", e.device);
                out.push(d);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_resolves_every_name() {
        for name in device_names() {
            let d = device(name).expect("catalog entry resolves");
            assert!(!d.name.is_empty());
            let g = group(name).expect("one-device group resolves");
            assert_eq!(g.devices.len(), 1);
        }
        assert!(device("mi300x").is_none());
    }

    #[test]
    fn registry_specs_match_the_constructors() {
        assert_eq!(device(H100_PCIE).unwrap(), DeviceSpec::h100_pcie());
        assert_eq!(device(MI250X_GCD).unwrap(), DeviceSpec::mi250x_gcd());
        assert_eq!(device(TEST_DEVICE).unwrap(), DeviceSpec::test_device());
    }

    #[test]
    fn mi250x_full_is_two_renamed_gcds() {
        let g = group(MI250X_FULL).unwrap();
        assert_eq!(g.devices.len(), 2);
        assert_eq!(g.devices[0].name, "MI250x-GCD0 (simulated)");
        assert_eq!(g.devices[1].name, "MI250x-GCD1 (simulated)");
        let gcd = DeviceSpec::mi250x_gcd();
        for d in &g.devices {
            let mut renamed = d.clone();
            renamed.name = gcd.name.clone();
            assert_eq!(renamed, gcd, "GCD differs from the catalog spec");
        }
    }

    #[test]
    fn fleet_spec_parses_and_numbers_instances() {
        let fleet = FleetSpec::parse("h100_pcie:1, mi250x_gcd:2, test").unwrap();
        assert_eq!(fleet.len(), 4);
        let devs = fleet.devices().unwrap();
        assert_eq!(
            devs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            ["h100_pcie:0", "mi250x_gcd:0", "mi250x_gcd:1", "test:0"]
        );
        assert!(FleetSpec::parse("").is_err());
        assert!(FleetSpec::parse("mi300x:2").is_err());
        assert!(FleetSpec::parse("h100_pcie:x").is_err());
    }
}
