//! Deterministic work-stealing parallel block executor.
//!
//! The engine's block programs are independent by construction (one grid
//! block per batch problem, disjoint `&mut` problem access), and
//! [`KernelCounters`] merge associatively and commutatively (sums and
//! maxes). Those two facts let this module fan blocks out across OS
//! threads while guaranteeing results that are **bitwise-identical** to
//! the serial path:
//!
//! - each block's numerics touch only its own problem and a private
//!   shared-memory arena, so per-block outputs (factors, pivots, `info`)
//!   cannot depend on scheduling;
//! - per-block counters are merged into per-chunk partials in ascending
//!   block order, and chunk partials are merged in ascending chunk order
//!   after the join — a stable reduction tree whose every operation
//!   (u64 `+`, u64/f64 `max`) is order-insensitive anyway.
//!
//! Work distribution is deque-based stealing: contiguous block chunks are
//! seeded round-robin onto per-worker LIFO deques; an idle worker first
//! drains its own deque, then steals (FIFO) from siblings, so load
//! imbalance from variable per-matrix cost self-corrects.
//!
//! Failure isolation: a panicking block program (numerical `assert!`,
//! index bug) is caught per block. Sibling blocks still run to
//! completion — their problem entries keep their results — and the
//! lowest-block-id panic is re-raised after the join, in both the serial
//! and the parallel paths, so the two are observationally equivalent.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;

use crate::block::BlockContext;
use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::engine::LaunchConfig;
use crate::hazard::HazardReport;
use crate::resident::EngineMode;

/// How the engine schedules a launch's blocks onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelPolicy {
    /// Run every block on the calling thread, in block-id order.
    #[default]
    Serial,
    /// Work-stealing pool of exactly `n` workers (`n = 0` and `n = 1`
    /// both mean serial).
    Threads(usize),
    /// Work-stealing pool sized to the host's available parallelism.
    Auto,
}

impl ParallelPolicy {
    /// Pool of `n` worker threads.
    pub fn threads(n: usize) -> Self {
        ParallelPolicy::Threads(n)
    }

    /// Number of workers this policy resolves to on this host.
    pub fn workers(self) -> usize {
        match self {
            ParallelPolicy::Serial => 1,
            ParallelPolicy::Threads(n) => n.max(1),
            ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Whether this policy executes blocks on more than one thread.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

/// Chunk length giving each worker several steals' worth of slack.
fn chunk_len(grid: usize, workers: usize) -> usize {
    grid.div_ceil(workers.saturating_mul(4).max(1)).max(1)
}

/// Shareable base pointer for handing disjoint chunks of the problem
/// slice to workers.
///
/// Invariants that make the `unsafe impl`s below sound (upheld by
/// [`execute_parallel`], the only user):
///
/// 1. The pointer comes from a live `&mut [P]` that outlives the
///    crossbeam scope, so it stays valid for the workers' lifetime.
/// 2. Chunk ids are delivered exactly once (crossbeam deque contract),
///    and chunk `c` maps to the half-open range
///    `[c * chunk, min((c + 1) * chunk, grid))`; distinct chunk ids give
///    disjoint ranges, so no element is ever aliased by two workers.
/// 3. The owning `&mut [P]` is not touched while the scope runs; the
///    borrow checker enforces this because `execute_parallel` holds the
///    exclusive borrow across the scope join.
struct ProblemsPtr<P>(*mut P);

// SAFETY: `ProblemsPtr` is only a capability to *derive* disjoint
// `&mut [P]` chunks (invariant 2 above); sending it to a worker moves
// `P` values across threads, hence the `P: Send` bound. No worker holds
// a `&P` into another worker's chunk, so no `P: Sync` requirement
// arises.
unsafe impl<P: Send> Send for ProblemsPtr<P> {}
// SAFETY: workers share `&ProblemsPtr` but only read the raw pointer out
// of it; aliasing of the pointed-to data is prevented by the disjoint
// chunk ranges (invariant 2), exactly as for `Send`.
unsafe impl<P: Send> Sync for ProblemsPtr<P> {}

/// A caught block panic, keyed by block id for deterministic re-raise.
type BlockPanic = (usize, Box<dyn Any + Send>);

/// Run `body` for blocks `[lo, hi)` over `slice`, merging counters into
/// `partial` in ascending block order and capturing panics. The single
/// code path both executors share — serial vs. parallel differ only in
/// who calls it with which chunks.
fn run_chunk<P, F>(
    ctx: &mut BlockContext,
    slice: &mut [P],
    lo: usize,
    partial: &mut KernelCounters,
    hazards: &mut Vec<HazardReport>,
    panics: &mut Vec<BlockPanic>,
    body: &F,
) where
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    for (off, p) in slice.iter_mut().enumerate() {
        let block_id = lo + off;
        ctx.reset_for(block_id);
        match catch_unwind(AssertUnwindSafe(|| body(p, ctx))) {
            Ok(()) => partial.merge_wave(&ctx.counters()),
            Err(payload) => panics.push((block_id, payload)),
        }
        if let Some(rep) = ctx.smem.tracker().and_then(|t| t.take_report()) {
            if rep.total_hazards > 0 || !rep.accesses.is_empty() {
                hazards.push(rep);
            }
        }
    }
}

/// Re-raise the earliest (lowest block id) captured panic, if any.
fn resume_first(mut panics: Vec<BlockPanic>) {
    if !panics.is_empty() {
        panics.sort_by_key(|(id, _)| *id);
        resume_unwind(panics.swap_remove(0).1);
    }
}

/// Context matching the launch configuration: device LDS width, kernel
/// label, and hazard tracking mode.
fn context_for(dev: &DeviceSpec, cfg: &LaunchConfig) -> BlockContext {
    let mut ctx =
        BlockContext::with_lds_lanes(0, cfg.threads, cfg.smem_bytes as usize, dev.lds_lanes);
    ctx.smem.set_label(cfg.label);
    ctx.smem.set_hazard_mode(cfg.hazard);
    ctx
}

/// Execute every block once under `cfg.parallel` and return the
/// aggregate counters plus the per-block hazard reports (blocks with
/// detected conflicts only, ascending block id). Panics from block
/// programs are re-raised (lowest block id first) only after every block
/// has run.
pub(crate) fn execute_blocks<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: &F,
) -> (KernelCounters, Vec<HazardReport>)
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let grid = problems.len();
    if grid == 0 {
        return (KernelCounters::default(), Vec::new());
    }
    let workers = cfg.parallel.workers().min(grid);
    if workers <= 1 {
        let mut ctx = context_for(dev, cfg);
        let mut agg = KernelCounters::default();
        let mut hazards = Vec::new();
        let mut panics = Vec::new();
        run_chunk(
            &mut ctx,
            problems,
            0,
            &mut agg,
            &mut hazards,
            &mut panics,
            body,
        );
        resume_first(panics);
        return (agg, hazards);
    }
    match cfg.engine {
        EngineMode::PerLaunch => execute_parallel(dev, cfg, problems, body, workers),
        EngineMode::Resident => execute_resident(dev, cfg, problems, body, workers),
    }
}

fn execute_parallel<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: &F,
    workers: usize,
) -> (KernelCounters, Vec<HazardReport>)
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let grid = problems.len();
    let chunk = chunk_len(grid, workers);
    let n_chunks = grid.div_ceil(chunk);

    // Seed chunk ids round-robin across per-worker LIFO deques.
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(Worker::stealer).collect();
    for c in 0..n_chunks {
        deques[c % workers].push(c);
    }

    let base = ProblemsPtr(problems.as_mut_ptr());
    type ChunkResult = (usize, KernelCounters, Vec<HazardReport>);
    let results: Mutex<Vec<ChunkResult>> = Mutex::new(Vec::with_capacity(n_chunks));
    let panics: Mutex<Vec<BlockPanic>> = Mutex::new(Vec::new());
    let proto = context_for(dev, cfg);

    let scope_result = crossbeam::thread::scope(|s| {
        for own in deques {
            let stealers = &stealers;
            let base = &base;
            let results = &results;
            let panics = &panics;
            let proto = &proto;
            s.spawn(move |_| {
                let mut ctx = proto.fork_worker();
                'work: loop {
                    // Own deque first (LIFO), then steal FIFO from
                    // siblings; exactly-once delivery is the deque's
                    // contract, so each chunk runs on one worker.
                    let next = own.pop().or_else(|| loop {
                        let mut retry = false;
                        for st in stealers.iter() {
                            match st.steal() {
                                Steal::Success(c) => return Some(c),
                                Steal::Retry => retry = true,
                                Steal::Empty => {}
                            }
                        }
                        if !retry {
                            return None;
                        }
                    });
                    let Some(c) = next else { break 'work };
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(grid);
                    // SAFETY: upholds the `ProblemsPtr` invariants — the
                    // deque delivered chunk `c` to exactly this worker,
                    // the ranges `[c*chunk, (c+1)*chunk)` partition
                    // `[0, grid)` (so no two workers' slices overlap),
                    // `hi <= grid` keeps the slice in bounds of the
                    // original `&mut [P]`, and that borrow is held (not
                    // used) by the caller across the scope join.
                    let slice = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                    let mut partial = KernelCounters::default();
                    let mut local_hazards = Vec::new();
                    let mut local_panics = Vec::new();
                    run_chunk(
                        &mut ctx,
                        slice,
                        lo,
                        &mut partial,
                        &mut local_hazards,
                        &mut local_panics,
                        body,
                    );
                    results.lock().push((c, partial, local_hazards));
                    if !local_panics.is_empty() {
                        panics.lock().append(&mut local_panics);
                    }
                }
            });
        }
    });
    // Workers catch block panics themselves; a scope error would mean an
    // executor bug, not a kernel failure.
    scope_result.expect("executor worker crashed outside a block program");

    // Stable reduction: chunk partials merged in ascending chunk order.
    // Chunks are contiguous ascending block ranges, so concatenating the
    // per-chunk hazard reports in the same order sorts them by block id.
    let mut partials = results.into_inner();
    partials.sort_by_key(|(c, _, _)| *c);
    let mut agg = KernelCounters::default();
    let mut hazards = Vec::new();
    for (_, partial, mut chunk_hazards) in partials {
        agg.merge_wave(&partial);
        hazards.append(&mut chunk_hazards);
    }
    // Host provenance: the crossbeam scope re-spawned one OS thread per
    // worker for this launch.
    agg.threads_spawned = workers as u64;
    resume_first(panics.into_inner());
    (agg, hazards)
}

/// Resident-pool twin of [`execute_parallel`]: same chunk geometry, same
/// per-chunk execution ([`run_chunk`]) and the same ascending-chunk
/// stable reduction, but chunks are claimed from an atomic counter by the
/// persistent workers of a [`crate::resident::ResidentPool`] instead of
/// being stolen between per-launch scoped threads. Counters (bar the
/// provenance field `threads_spawned`), hazards, results, and panic
/// selection are bitwise-identical to the per-launch path because the
/// reduction is a partition-insensitive fold of `+`/`max` over the same
/// per-block values.
fn execute_resident<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: &F,
    workers: usize,
) -> (KernelCounters, Vec<HazardReport>)
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let grid = problems.len();
    let chunk = chunk_len(grid, workers);
    let n_chunks = grid.div_ceil(chunk);
    // Pool width is the policy's full width (not clamped by this grid) so
    // one policy maps to one persistent pool for the process lifetime.
    let pool = crate::resident::global_pool(cfg.parallel.workers());

    let base = ProblemsPtr(problems.as_mut_ptr());
    let next = AtomicUsize::new(0);
    type ChunkResult = (usize, KernelCounters, Vec<HazardReport>);
    let results: Mutex<Vec<ChunkResult>> = Mutex::new(Vec::with_capacity(n_chunks));
    let panics: Mutex<Vec<BlockPanic>> = Mutex::new(Vec::new());
    let proto = context_for(dev, cfg);

    // Borrow the wrapper (not its raw-pointer field) so the closure's
    // capture is the `Sync` `ProblemsPtr`, as in `execute_parallel`.
    let base = &base;
    pool.run(&|idx| {
        // Warm launches reuse the worker's cached arena buffer: zero
        // allocation on the hot path once the pool has run a launch of
        // this footprint.
        let mut ctx = proto.fork_worker_with_arena(pool.take_arena(idx));
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(grid);
            // SAFETY: upholds the `ProblemsPtr` invariants — the atomic
            // counter hands out each chunk id exactly once, the ranges
            // `[c*chunk, (c+1)*chunk)` partition `[0, grid)` (no two
            // workers' slices overlap), `hi <= grid` keeps the slice in
            // bounds, and the owning `&mut [P]` is held (not used) by the
            // caller until `pool.run` returns.
            let slice = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
            let mut partial = KernelCounters::default();
            let mut local_hazards = Vec::new();
            let mut local_panics = Vec::new();
            run_chunk(
                &mut ctx,
                slice,
                lo,
                &mut partial,
                &mut local_hazards,
                &mut local_panics,
                body,
            );
            results.lock().push((c, partial, local_hazards));
            if !local_panics.is_empty() {
                panics.lock().append(&mut local_panics);
            }
        }
        pool.store_arena(idx, ctx.into_arena());
    });

    // Stable reduction, identical to the per-launch path.
    let mut partials = results.into_inner();
    partials.sort_by_key(|(c, _, _)| *c);
    let mut agg = KernelCounters::default();
    let mut hazards = Vec::new();
    for (_, partial, mut chunk_hazards) in partials {
        agg.merge_wave(&partial);
        hazards.append(&mut chunk_hazards);
    }
    // Host provenance: the pool size if this launch is the one that spun
    // the pool up, zero for every warm launch after it.
    agg.threads_spawned = pool.take_fresh();
    resume_first(panics.into_inner());
    (agg, hazards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{launch, LaunchConfig};

    fn dev() -> DeviceSpec {
        DeviceSpec::test_device()
    }

    fn body(p: &mut f64, ctx: &mut BlockContext) {
        ctx.gld(8);
        *p = (*p + 1.0) * 1.5;
        ctx.par_work(3, 2);
        ctx.smem_work(5, 1);
        ctx.smem_trip();
        ctx.sync();
        ctx.gst(8);
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ParallelPolicy::Serial.workers(), 1);
        assert_eq!(ParallelPolicy::threads(0).workers(), 1);
        assert_eq!(ParallelPolicy::threads(6).workers(), 6);
        assert!(ParallelPolicy::Auto.workers() >= 1);
        assert!(!ParallelPolicy::Serial.is_parallel());
        assert!(ParallelPolicy::threads(2).is_parallel());
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Serial);
    }

    #[test]
    fn chunking_covers_grid() {
        for grid in [1usize, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8] {
                let chunk = chunk_len(grid, workers);
                let n_chunks = grid.div_ceil(chunk);
                assert!((n_chunks - 1) * chunk < grid);
                assert!(n_chunks * chunk >= grid);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        for &grid in &[1usize, 5, 37, 256] {
            let init: Vec<f64> = (0..grid).map(|k| k as f64 * 0.25).collect();
            let serial_cfg = LaunchConfig::new(8, 1024);
            let mut serial_data = init.clone();
            let serial = launch(&dev(), &serial_cfg, &mut serial_data, body).unwrap();
            for workers in [2usize, 3, 8] {
                let cfg = serial_cfg.with_parallel(ParallelPolicy::threads(workers));
                let mut data = init.clone();
                let rep = launch(&dev(), &cfg, &mut data, body).unwrap();
                assert_eq!(data, serial_data, "grid={grid} workers={workers}");
                // `threads_spawned` is the one deliberately policy-variant
                // provenance field: scoped threads re-spawn per launch.
                let effective = workers.min(grid);
                let expected_spawned = if effective > 1 { effective as u64 } else { 0 };
                assert_eq!(rep.counters.threads_spawned, expected_spawned);
                let mut norm = rep.counters;
                norm.threads_spawned = serial.counters.threads_spawned;
                assert_eq!(norm, serial.counters);
                assert_eq!(rep.time.secs().to_bits(), serial.time.secs().to_bits());
            }
        }
    }

    #[test]
    fn resident_matches_per_launch_bitwise() {
        for &grid in &[1usize, 5, 37, 256] {
            let init: Vec<f64> = (0..grid).map(|k| k as f64 * 0.25).collect();
            for workers in [2usize, 3, 8] {
                let per_launch_cfg =
                    LaunchConfig::new(8, 1024).with_parallel(ParallelPolicy::threads(workers));
                let resident_cfg = per_launch_cfg.with_engine(EngineMode::Resident);
                let mut cold_data = init.clone();
                let mut warm_data = init.clone();
                let cold = launch(&dev(), &per_launch_cfg, &mut cold_data, body).unwrap();
                let warm = launch(&dev(), &resident_cfg, &mut warm_data, body).unwrap();
                assert_eq!(cold_data, warm_data, "grid={grid} workers={workers}");
                let mut norm_cold = cold.counters;
                let mut norm_warm = warm.counters;
                norm_cold.threads_spawned = 0;
                norm_warm.threads_spawned = 0;
                assert_eq!(norm_cold, norm_warm, "grid={grid} workers={workers}");
                assert_eq!(cold.hazards.len(), warm.hazards.len());
                // The two modes differ by exactly the overhead constant.
                let d = dev();
                let delta = d.launch_overhead_s - d.warm_launch_overhead_s;
                assert!(
                    (cold.time.secs() - warm.time.secs() - delta).abs() < 1e-18,
                    "grid={grid} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn resident_spawns_threads_exactly_once_per_pool() {
        // Width 7 is reserved for this test within the unit-test binary so
        // no other launch can consume the pool's fresh-spawn tally first.
        let cfg = LaunchConfig::new(8, 256)
            .with_parallel(ParallelPolicy::threads(7))
            .with_engine(EngineMode::Resident);
        let mut data = vec![1.0f64; 64];
        let first = launch(&dev(), &cfg, &mut data, body).unwrap();
        assert_eq!(first.counters.threads_spawned, 7, "spin-up launch");
        for _ in 0..3 {
            let warm = launch(&dev(), &cfg, &mut data, body).unwrap();
            assert_eq!(
                warm.counters.threads_spawned, 0,
                "warm launches must not spawn"
            );
        }
    }

    #[test]
    fn resident_panic_isolation_matches_per_launch() {
        let cfg = LaunchConfig::new(8, 0)
            .with_parallel(ParallelPolicy::threads(4))
            .with_engine(EngineMode::Resident);
        let mut data: Vec<usize> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                if *p % 10 == 3 {
                    panic!("boom at {}", *p);
                }
                *p += 1000;
            });
        }))
        .expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
        assert_eq!(msg, "boom at 3", "earliest block id wins");
        // Siblings completed; the pool survives for the next launch.
        assert_eq!(data[4], 1004);
        let mut again = vec![2.0f64; 16];
        let rep = launch(&dev(), &cfg, &mut again, body).unwrap();
        assert_eq!(rep.grid, 16);
        assert!(again.iter().all(|&v| v == 4.5));
    }

    #[test]
    fn panicking_block_does_not_poison_siblings() {
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(4)] {
            let cfg = LaunchConfig::new(8, 0).with_parallel(policy);
            let mut data: Vec<usize> = (0..64).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                    if *p == 17 {
                        panic!("injected failure in block 17");
                    }
                    *p += 1000;
                });
            }));
            let err = caught.expect_err("panic must propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(msg.contains("block 17"), "policy {policy:?}: got {msg:?}");
            // Every sibling completed despite the failure.
            for (i, v) in data.iter().enumerate() {
                if i == 17 {
                    assert_eq!(*v, 17);
                } else {
                    assert_eq!(*v, i + 1000, "sibling {i} corrupted under {policy:?}");
                }
            }
        }
    }

    #[test]
    fn earliest_panic_wins_deterministically() {
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(8)] {
            let cfg = LaunchConfig::new(8, 0).with_parallel(policy);
            let mut data: Vec<usize> = (0..128).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                    if *p % 10 == 3 {
                        panic!("boom at {}", *p);
                    }
                });
            }))
            .expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
            assert_eq!(msg, "boom at 3", "policy {policy:?}");
        }
    }

    #[test]
    fn auto_policy_runs() {
        let cfg = LaunchConfig::new(8, 256).with_parallel(ParallelPolicy::Auto);
        let mut data = vec![1.0f64; 100];
        let rep = launch(&dev(), &cfg, &mut data, body).unwrap();
        assert_eq!(rep.grid, 100);
        assert!(data.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn record_mode_reports_identically_across_policies() {
        use crate::hazard::{HazardKind, HazardMode};
        // Blocks 10 and 40 race (two lanes touch offset 0 in epoch 0);
        // every other block syncs between the accesses.
        let racy = |p: &mut usize, ctx: &mut BlockContext| {
            let racing = *p == 10 || *p == 40;
            if let Some(t) = ctx.smem.tracker() {
                t.write(0, 0);
            }
            if !racing {
                ctx.sync();
            }
            if let Some(t) = ctx.smem.tracker() {
                t.read(1, 0);
            }
        };
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(4)] {
            let cfg = LaunchConfig::new(8, 256)
                .with_parallel(policy)
                .with_hazard(HazardMode::Record)
                .with_label("racy_fixture");
            let mut data: Vec<usize> = (0..64).collect();
            let rep = launch(&dev(), &cfg, &mut data, racy).unwrap();
            assert_eq!(rep.counters.hazards, 2, "policy {policy:?}");
            let blocks: Vec<usize> = rep.hazards.iter().map(|h| h.block_id).collect();
            assert_eq!(blocks, vec![10, 40], "policy {policy:?}");
            for h in &rep.hazards {
                assert_eq!(h.label, "racy_fixture");
                assert_eq!(h.total_hazards, 1);
                assert_eq!(h.hazards[0].kind, HazardKind::Raw);
                assert_eq!(h.hazards[0].offset, 0);
                assert_eq!(h.hazards[0].epoch, 0);
            }
        }
    }

    #[test]
    fn off_mode_collects_nothing() {
        let cfg = LaunchConfig::new(8, 256);
        let mut data = vec![1.0f64; 16];
        let rep = launch(&dev(), &cfg, &mut data, body).unwrap();
        assert_eq!(rep.counters.hazards, 0);
        assert!(rep.hazards.is_empty());
    }

    #[test]
    fn enforce_mode_aborts_lowest_racing_block() {
        use crate::hazard::HazardMode;
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(4)] {
            let cfg = LaunchConfig::new(8, 256)
                .with_parallel(policy)
                .with_hazard(HazardMode::Enforce)
                .with_label("enforced_fixture");
            let mut data: Vec<usize> = (0..64).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, ctx| {
                    if *p == 23 || *p == 50 {
                        let t = ctx.smem.tracker().unwrap();
                        t.write(0, 7);
                        t.read(1, 7);
                    }
                });
            }))
            .expect_err("enforce must abort the racing block");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
            assert!(
                msg.contains("`enforced_fixture` block 23"),
                "policy {policy:?}: {msg}"
            );
            assert!(msg.contains("offset 7"), "policy {policy:?}: {msg}");
        }
    }

    // Pointer-aliasing tests sized for Miri (`cargo miri test -p
    // gbatch-gpu-sim executor`): tiny grids, every policy branch, all
    // chunk/steal machinery exercised. The interesting property is that
    // the `ProblemsPtr` chunk derivation never creates overlapping `&mut`
    // slices — Miri's borrow tracking verifies exactly that.
    mod miri_sized {
        use super::*;

        #[test]
        fn parallel_chunks_never_alias() {
            for &grid in &[1usize, 3, 7] {
                let cfg = LaunchConfig::new(4, 128).with_parallel(ParallelPolicy::threads(3));
                let mut data: Vec<u64> = (0..grid as u64).collect();
                let rep = launch(&dev(), &cfg, &mut data, |p, ctx| {
                    *p = p.wrapping_mul(3) + 1;
                    ctx.gld(8);
                })
                .unwrap();
                assert_eq!(rep.grid, grid);
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, (i as u64) * 3 + 1);
                }
            }
        }

        #[test]
        fn panic_capture_is_miri_clean() {
            let cfg = LaunchConfig::new(4, 0).with_parallel(ParallelPolicy::threads(2));
            let mut data: Vec<usize> = (0..4).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                    if *p == 2 {
                        panic!("miri fixture panic");
                    }
                });
            }))
            .expect_err("panic must propagate");
            drop(err);
        }
    }
}
