//! Deterministic work-stealing parallel block executor.
//!
//! The engine's block programs are independent by construction (one grid
//! block per batch problem, disjoint `&mut` problem access), and
//! [`KernelCounters`] merge associatively and commutatively (sums and
//! maxes). Those two facts let this module fan blocks out across OS
//! threads while guaranteeing results that are **bitwise-identical** to
//! the serial path:
//!
//! - each block's numerics touch only its own problem and a private
//!   shared-memory arena, so per-block outputs (factors, pivots, `info`)
//!   cannot depend on scheduling;
//! - per-block counters are merged into per-chunk partials in ascending
//!   block order, and chunk partials are merged in ascending chunk order
//!   after the join — a stable reduction tree whose every operation
//!   (u64 `+`, u64/f64 `max`) is order-insensitive anyway.
//!
//! Work distribution is deque-based stealing: contiguous block chunks are
//! seeded round-robin onto per-worker LIFO deques; an idle worker first
//! drains its own deque, then steals (FIFO) from siblings, so load
//! imbalance from variable per-matrix cost self-corrects.
//!
//! Failure isolation: a panicking block program (numerical `assert!`,
//! index bug) is caught per block. Sibling blocks still run to
//! completion — their problem entries keep their results — and the
//! lowest-block-id panic is re-raised after the join, in both the serial
//! and the parallel paths, so the two are observationally equivalent.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;

use crate::block::BlockContext;
use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::engine::LaunchConfig;

/// How the engine schedules a launch's blocks onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelPolicy {
    /// Run every block on the calling thread, in block-id order.
    #[default]
    Serial,
    /// Work-stealing pool of exactly `n` workers (`n = 0` and `n = 1`
    /// both mean serial).
    Threads(usize),
    /// Work-stealing pool sized to the host's available parallelism.
    Auto,
}

impl ParallelPolicy {
    /// Pool of `n` worker threads.
    pub fn threads(n: usize) -> Self {
        ParallelPolicy::Threads(n)
    }

    /// Number of workers this policy resolves to on this host.
    pub fn workers(self) -> usize {
        match self {
            ParallelPolicy::Serial => 1,
            ParallelPolicy::Threads(n) => n.max(1),
            ParallelPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Whether this policy executes blocks on more than one thread.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

/// Chunk length giving each worker several steals' worth of slack.
fn chunk_len(grid: usize, workers: usize) -> usize {
    grid.div_ceil(workers.saturating_mul(4).max(1)).max(1)
}

/// Shareable base pointer for handing disjoint chunks of the problem
/// slice to workers. Safety argument lives at the use sites: every chunk
/// `[lo, hi)` is delivered to exactly one worker (deque exactly-once
/// semantics), and chunks never overlap.
struct ProblemsPtr<P>(*mut P);

unsafe impl<P: Send> Send for ProblemsPtr<P> {}
unsafe impl<P: Send> Sync for ProblemsPtr<P> {}

/// A caught block panic, keyed by block id for deterministic re-raise.
type BlockPanic = (usize, Box<dyn Any + Send>);

/// Run `body` for blocks `[lo, hi)` over `slice`, merging counters into
/// `partial` in ascending block order and capturing panics. The single
/// code path both executors share — serial vs. parallel differ only in
/// who calls it with which chunks.
fn run_chunk<P, F>(
    ctx: &mut BlockContext,
    slice: &mut [P],
    lo: usize,
    partial: &mut KernelCounters,
    panics: &mut Vec<BlockPanic>,
    body: &F,
) where
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    for (off, p) in slice.iter_mut().enumerate() {
        let block_id = lo + off;
        ctx.reset_for(block_id);
        match catch_unwind(AssertUnwindSafe(|| body(p, ctx))) {
            Ok(()) => partial.merge_wave(&ctx.counters()),
            Err(payload) => panics.push((block_id, payload)),
        }
    }
}

/// Re-raise the earliest (lowest block id) captured panic, if any.
fn resume_first(mut panics: Vec<BlockPanic>) {
    if !panics.is_empty() {
        panics.sort_by_key(|(id, _)| *id);
        resume_unwind(panics.swap_remove(0).1);
    }
}

/// Execute every block once under `cfg.parallel` and return the
/// aggregate counters. Panics from block programs are re-raised (lowest
/// block id first) only after every block has run.
pub(crate) fn execute_blocks<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: &F,
) -> KernelCounters
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let grid = problems.len();
    if grid == 0 {
        return KernelCounters::default();
    }
    let workers = cfg.parallel.workers().min(grid);
    if workers <= 1 {
        let mut ctx =
            BlockContext::with_lds_lanes(0, cfg.threads, cfg.smem_bytes as usize, dev.lds_lanes);
        let mut agg = KernelCounters::default();
        let mut panics = Vec::new();
        run_chunk(&mut ctx, problems, 0, &mut agg, &mut panics, body);
        resume_first(panics);
        return agg;
    }
    execute_parallel(dev, cfg, problems, body, workers)
}

fn execute_parallel<P, F>(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    problems: &mut [P],
    body: &F,
    workers: usize,
) -> KernelCounters
where
    P: Send,
    F: Fn(&mut P, &mut BlockContext) + Sync,
{
    let grid = problems.len();
    let chunk = chunk_len(grid, workers);
    let n_chunks = grid.div_ceil(chunk);

    // Seed chunk ids round-robin across per-worker LIFO deques.
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(Worker::stealer).collect();
    for c in 0..n_chunks {
        deques[c % workers].push(c);
    }

    let base = ProblemsPtr(problems.as_mut_ptr());
    let results: Mutex<Vec<(usize, KernelCounters)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let panics: Mutex<Vec<BlockPanic>> = Mutex::new(Vec::new());
    let proto =
        BlockContext::with_lds_lanes(0, cfg.threads, cfg.smem_bytes as usize, dev.lds_lanes);

    let scope_result = crossbeam::thread::scope(|s| {
        for own in deques {
            let stealers = &stealers;
            let base = &base;
            let results = &results;
            let panics = &panics;
            let proto = &proto;
            s.spawn(move |_| {
                let mut ctx = proto.fork_worker();
                'work: loop {
                    // Own deque first (LIFO), then steal FIFO from
                    // siblings; exactly-once delivery is the deque's
                    // contract, so each chunk runs on one worker.
                    let next = own.pop().or_else(|| loop {
                        let mut retry = false;
                        for st in stealers.iter() {
                            match st.steal() {
                                Steal::Success(c) => return Some(c),
                                Steal::Retry => retry = true,
                                Steal::Empty => {}
                            }
                        }
                        if !retry {
                            return None;
                        }
                    });
                    let Some(c) = next else { break 'work };
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(grid);
                    // SAFETY: chunk `c` is held by exactly this worker;
                    // chunk ranges `[lo, hi)` partition `[0, grid)`.
                    let slice = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                    let mut partial = KernelCounters::default();
                    let mut local_panics = Vec::new();
                    run_chunk(&mut ctx, slice, lo, &mut partial, &mut local_panics, body);
                    results.lock().push((c, partial));
                    if !local_panics.is_empty() {
                        panics.lock().append(&mut local_panics);
                    }
                }
            });
        }
    });
    // Workers catch block panics themselves; a scope error would mean an
    // executor bug, not a kernel failure.
    scope_result.expect("executor worker crashed outside a block program");

    // Stable reduction: chunk partials merged in ascending chunk order.
    let mut partials = results.into_inner();
    partials.sort_by_key(|(c, _)| *c);
    let mut agg = KernelCounters::default();
    for (_, partial) in &partials {
        agg.merge_wave(partial);
    }
    resume_first(panics.into_inner());
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{launch, LaunchConfig};

    fn dev() -> DeviceSpec {
        DeviceSpec::test_device()
    }

    fn body(p: &mut f64, ctx: &mut BlockContext) {
        ctx.gld(8);
        *p = (*p + 1.0) * 1.5;
        ctx.par_work(3, 2);
        ctx.smem_work(5, 1);
        ctx.smem_trip();
        ctx.sync();
        ctx.gst(8);
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ParallelPolicy::Serial.workers(), 1);
        assert_eq!(ParallelPolicy::threads(0).workers(), 1);
        assert_eq!(ParallelPolicy::threads(6).workers(), 6);
        assert!(ParallelPolicy::Auto.workers() >= 1);
        assert!(!ParallelPolicy::Serial.is_parallel());
        assert!(ParallelPolicy::threads(2).is_parallel());
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Serial);
    }

    #[test]
    fn chunking_covers_grid() {
        for grid in [1usize, 2, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 8] {
                let chunk = chunk_len(grid, workers);
                let n_chunks = grid.div_ceil(chunk);
                assert!((n_chunks - 1) * chunk < grid);
                assert!(n_chunks * chunk >= grid);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        for &grid in &[1usize, 5, 37, 256] {
            let init: Vec<f64> = (0..grid).map(|k| k as f64 * 0.25).collect();
            let serial_cfg = LaunchConfig::new(8, 1024);
            let mut serial_data = init.clone();
            let serial = launch(&dev(), &serial_cfg, &mut serial_data, body).unwrap();
            for workers in [2usize, 3, 8] {
                let cfg = serial_cfg.with_parallel(ParallelPolicy::threads(workers));
                let mut data = init.clone();
                let rep = launch(&dev(), &cfg, &mut data, body).unwrap();
                assert_eq!(data, serial_data, "grid={grid} workers={workers}");
                assert_eq!(rep.counters, serial.counters);
                assert_eq!(rep.time.secs().to_bits(), serial.time.secs().to_bits());
            }
        }
    }

    #[test]
    fn panicking_block_does_not_poison_siblings() {
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(4)] {
            let cfg = LaunchConfig::new(8, 0).with_parallel(policy);
            let mut data: Vec<usize> = (0..64).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                    if *p == 17 {
                        panic!("injected failure in block 17");
                    }
                    *p += 1000;
                });
            }));
            let err = caught.expect_err("panic must propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(msg.contains("block 17"), "policy {policy:?}: got {msg:?}");
            // Every sibling completed despite the failure.
            for (i, v) in data.iter().enumerate() {
                if i == 17 {
                    assert_eq!(*v, 17);
                } else {
                    assert_eq!(*v, i + 1000, "sibling {i} corrupted under {policy:?}");
                }
            }
        }
    }

    #[test]
    fn earliest_panic_wins_deterministically() {
        for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(8)] {
            let cfg = LaunchConfig::new(8, 0).with_parallel(policy);
            let mut data: Vec<usize> = (0..128).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = launch(&dev(), &cfg, &mut data, |p, _| {
                    if *p % 10 == 3 {
                        panic!("boom at {}", *p);
                    }
                });
            }))
            .expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
            assert_eq!(msg, "boom at 3", "policy {policy:?}");
        }
    }

    #[test]
    fn auto_policy_runs() {
        let cfg = LaunchConfig::new(8, 256).with_parallel(ParallelPolicy::Auto);
        let mut data = vec![1.0f64; 100];
        let rep = launch(&dev(), &cfg, &mut data, body).unwrap();
        assert_eq!(rep.grid, 100);
        assert!(data.iter().all(|&v| v == 3.0));
    }
}
