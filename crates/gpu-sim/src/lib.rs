//! # gbatch-gpu-sim
//!
//! A software-simulated GPU substrate.
//!
//! The paper evaluates on an NVIDIA H100-PCIe and an AMD MI250x; neither is
//! available here, so this crate provides the closest synthetic equivalent
//! that exercises the same code paths (see DESIGN.md, "Substitutions"):
//!
//! - [`device::DeviceSpec`] — hardware descriptors with the parameters the
//!   paper's analysis hinges on: SM/CU count, **shared-memory capacity**
//!   (the H100's ≈224 KB vs. the MI250x's 64 KB drives every performance
//!   gap in the paper), warp width, sustained memory bandwidth (1.92 TB/s
//!   vs. 1.31 TB/s, paper §8), clock and launch overhead.
//! - [`engine::launch`] — executes a *block program* for every block of a
//!   grid, with a real [`shared::SharedMem`] arena enforcing hardware
//!   limits; kernels really compute on the batch data, so numerics are
//!   bit-real.
//! - [`executor::ParallelPolicy`] — host-side scheduling of block
//!   programs: serial, a fixed work-stealing thread pool, or auto-sized.
//!   Aggregates and modeled time are bitwise-identical across policies
//!   (counters merge associatively; the reduction order is stable).
//! - [`counters::KernelCounters`] — per-block counts of global traffic,
//!   flops, shared-memory round trips, syncs and dependent cycles,
//!   accumulated by the block program through [`block::BlockContext`].
//! - [`occupancy::occupancy`] — CUDA-style residency calculation
//!   (blocks/SM limited by shared memory, threads, and a hard cap).
//! - [`timing::estimate`] — an analytic wave-based timing model: a launch
//!   runs `ceil(grid / (blocks_per_sm * sms))` waves; each wave costs the
//!   max of its memory time (occupancy-scaled effective bandwidth) and its
//!   compute/latency time (dependent cycles at the device clock).
//! - [`stream::simulate_streams`] — the concurrent-stream execution model
//!   used by the Figure 1 motivation experiment (per-launch dispatch
//!   overhead plus low single-kernel occupancy is what makes streamed
//!   execution lose).
//!
//! What is *not* simulated: warp divergence, bank conflicts, register
//! allocation, caches. The paper's observed effects (occupancy staircases,
//! shared-memory capacity walls, launch-overhead domination) do not depend
//! on them.
//!
//! ```
//! use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig};
//!
//! // Square 1000 numbers on a simulated H100, one block per number.
//! let dev = DeviceSpec::h100_pcie();
//! let cfg = LaunchConfig::new(32, 1024);
//! let mut data: Vec<f64> = (0..1000).map(|k| k as f64).collect();
//! let report = launch(&dev, &cfg, &mut data, |x, ctx| {
//!     ctx.gld(8);
//!     *x *= *x;
//!     ctx.par_work(1, 1);
//!     ctx.gst(8);
//! })
//! .unwrap();
//! assert_eq!(data[7], 49.0);
//! assert!(report.time.secs() > 0.0);
//! assert!(report.occupancy.blocks_per_sm >= 1);
//! ```

// LAPACK-style numerical kernels are clearest with explicit indexed
// loops over band rows/columns; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod block;
pub mod counters;
pub mod device;
pub mod engine;
pub mod executor;
pub mod hazard;
pub mod multi;
pub mod occupancy;
pub mod registry;
pub mod resident;
pub mod shared;
pub mod stream;
pub mod timing;

pub use block::BlockContext;
pub use counters::KernelCounters;
pub use device::{DeviceSpec, Vendor};
pub use engine::{launch, LaunchConfig, LaunchError, LaunchReport};
pub use executor::ParallelPolicy;
pub use hazard::{AccessRecord, Hazard, HazardKind, HazardMode, HazardReport};
pub use occupancy::Occupancy;
pub use registry::FleetSpec;
pub use resident::{
    ambient_engine, global_pool, with_engine_mode, EngineMode, EngineScope, MegabatchQueue,
    ResidentPool,
};
pub use timing::{FlopPrecision, SimTime};
