//! Execution counters recorded by block programs.
//!
//! The timing model consumes these instead of instrumenting every slice
//! access: a block program explicitly records the traffic and dependent
//! work it performs. Counters are plain data and merge associatively, so
//! blocks can execute in any order (or in parallel) and produce identical
//! aggregates.

use serde::{Deserialize, Serialize};

/// Counts for one block, or the aggregate of a whole launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Bytes read from global memory.
    pub global_read: u64,
    /// Bytes written to global memory.
    pub global_write: u64,
    /// Floating-point operations (adds + muls; an FMA counts as 2).
    pub flops: u64,
    /// Shared-memory round trips on the *critical path* (dependent
    /// accesses, e.g. one per column step of a factorization).
    pub smem_trips: u64,
    /// Block-wide barriers executed.
    pub syncs: u64,
    /// Dependent-work cycles accumulated on the block's critical path
    /// (pure-ALU parallel work of `w` items across `t` threads adds
    /// `w / t` cycles).
    pub cycles: f64,
    /// Shared-memory element groups touched on the critical path:
    /// `items / threads` per recorded operation. Priced by the device's
    /// `work_scale` (LDS/shared throughput) in the timing model.
    pub smem_elems: f64,
    /// Vectorized batch-lane sweeps issued (the chunked batch-innermost
    /// loops of the interleaved kernels): each recorded sweep contributes
    /// `ceil(lanes / vector width)` hardware vectors. Sums across blocks.
    pub lane_sweeps: u64,
    /// Total lane elements processed by those sweeps. Sums across blocks;
    /// [`KernelCounters::lane_utilization`] derives the vector utilization.
    pub lane_elems: u64,
    /// Shared-memory hazards detected by the sync-epoch tracker (zero
    /// unless the launch ran with [`crate::hazard::HazardMode::Record`];
    /// `Enforce` aborts the offending block instead). Sums across blocks.
    pub hazards: u64,
    /// OS threads the host spawned to service this launch — a host
    /// *provenance* tally, not a device quantity. Set on the aggregate by
    /// the executor (never recorded by block programs, never touched by
    /// [`KernelCounters::merge_wave`]): `workers` under a parallel
    /// [`crate::executor::ParallelPolicy`] in
    /// [`crate::resident::EngineMode::PerLaunch`] mode (scoped threads are
    /// re-spawned every launch), the pool size on the launch that first
    /// spins up a [`crate::resident::ResidentPool`], and `0` for serial
    /// launches and warm Resident launches. This is deliberately the one
    /// field *excluded* from the cross-policy bitwise-equality invariant —
    /// it exists to prove Resident mode spawns exactly once per pool
    /// lifetime.
    #[serde(default)]
    pub threads_spawned: u64,
}

impl KernelCounters {
    /// Total global traffic in bytes.
    #[inline]
    pub fn global_bytes(&self) -> u64 {
        self.global_read + self.global_write
    }

    /// Merge another block's counters into an aggregate: traffic and flops
    /// add; `cycles`/`smem_trips`/`syncs` take the max because co-resident
    /// blocks overlap (the wave's critical path is its slowest block).
    pub fn merge_wave(&mut self, other: &KernelCounters) {
        self.global_read += other.global_read;
        self.global_write += other.global_write;
        self.flops += other.flops;
        self.smem_trips = self.smem_trips.max(other.smem_trips);
        self.syncs = self.syncs.max(other.syncs);
        self.cycles = self.cycles.max(other.cycles);
        self.smem_elems = self.smem_elems.max(other.smem_elems);
        self.lane_sweeps += other.lane_sweeps;
        self.lane_elems += other.lane_elems;
        self.hazards += other.hazards;
        // `threads_spawned` is host provenance set once on the aggregate by
        // the executor; merging per-block counters must not disturb it.
    }

    /// Fraction of vector slots filled by the recorded lane sweeps, given
    /// the vector width the sweeps were recorded with
    /// ([`crate::block::BlockContext::SIMD_WIDTH`] for the block API):
    /// `1.0` means every sweep filled whole vectors, lower values mean
    /// remainder (masked) slots. Returns `None` when no sweeps were
    /// recorded.
    pub fn lane_utilization(&self, width: u32) -> Option<f64> {
        if self.lane_sweeps == 0 {
            return None;
        }
        Some(self.lane_elems as f64 / (self.lane_sweeps as f64 * width.max(1) as f64))
    }

    /// Latency cycles contributed by syncs and shared-memory trips on the
    /// critical path of one block, given device latencies.
    pub fn latency_cycles(&self, smem_latency: f64, sync_cycles: f64) -> f64 {
        self.cycles + self.smem_trips as f64 * smem_latency + self.syncs as f64 * sync_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let c = KernelCounters::default();
        assert_eq!(c.global_bytes(), 0);
        assert_eq!(c.latency_cycles(20.0, 30.0), 0.0);
    }

    #[test]
    fn merge_adds_traffic_and_maxes_latency() {
        let mut a = KernelCounters {
            global_read: 100,
            global_write: 50,
            flops: 10,
            smem_trips: 5,
            syncs: 2,
            cycles: 1000.0,
            smem_elems: 4.0,
            ..Default::default()
        };
        let b = KernelCounters {
            global_read: 10,
            global_write: 5,
            flops: 1,
            smem_trips: 9,
            syncs: 1,
            cycles: 500.0,
            smem_elems: 9.0,
            ..Default::default()
        };
        a.merge_wave(&b);
        assert_eq!(a.global_read, 110);
        assert_eq!(a.global_write, 55);
        assert_eq!(a.flops, 11);
        assert_eq!(a.smem_trips, 9);
        assert_eq!(a.syncs, 2);
        assert_eq!(a.cycles, 1000.0);
        assert_eq!(a.smem_elems, 9.0);
    }

    #[test]
    fn merge_sums_lane_sweeps() {
        let mut a = KernelCounters {
            lane_sweeps: 4,
            lane_elems: 30,
            hazards: 1,
            ..Default::default()
        };
        let b = KernelCounters {
            lane_sweeps: 2,
            lane_elems: 16,
            hazards: 3,
            ..Default::default()
        };
        a.merge_wave(&b);
        assert_eq!(a.lane_sweeps, 6);
        assert_eq!(a.lane_elems, 46);
        // Hazards are a correctness tally, not a timing quantity: they sum
        // so a grid-wide count of zero proves every block was clean.
        assert_eq!(a.hazards, 4);
    }

    #[test]
    fn lane_utilization_ratio() {
        let c = KernelCounters {
            lane_sweeps: 4,
            lane_elems: 30,
            ..Default::default()
        };
        // 4 sweeps of width 8 offer 32 slots; 30 filled.
        assert_eq!(c.lane_utilization(8), Some(30.0 / 32.0));
        assert_eq!(KernelCounters::default().lane_utilization(8), None);
    }

    #[test]
    fn merge_never_touches_threads_spawned() {
        let mut a = KernelCounters {
            threads_spawned: 8,
            ..Default::default()
        };
        let b = KernelCounters {
            threads_spawned: 4,
            flops: 7,
            ..Default::default()
        };
        a.merge_wave(&b);
        assert_eq!(a.threads_spawned, 8, "provenance field must not merge");
        assert_eq!(a.flops, 7);
    }

    #[test]
    fn threads_spawned_defaults_on_old_serialized_counters() {
        // Counters serialized before the field existed must still load.
        let legacy = r#"{"global_read":1,"global_write":2,"flops":3,
            "smem_trips":4,"syncs":5,"cycles":6.0,"smem_elems":7.0,
            "lane_sweeps":8,"lane_elems":9,"hazards":0}"#;
        let c: KernelCounters = serde_json::from_str(legacy).unwrap();
        assert_eq!(c.threads_spawned, 0);
        assert_eq!(c.flops, 3);
    }

    #[test]
    fn latency_cycles_formula() {
        let c = KernelCounters {
            smem_trips: 3,
            syncs: 2,
            cycles: 100.0,
            ..Default::default()
        };
        assert_eq!(c.latency_cycles(10.0, 5.0), 100.0 + 30.0 + 10.0);
    }
}
