//! Device descriptors for the simulated GPUs.
//!
//! The numbers below are the public hardware parameters of the two GPUs the
//! paper evaluates (H100-PCIe, MI250x single GCD), with the *sustained*
//! memory bandwidths the paper itself measured with large `dgemv` runs
//! (Section 8: 1.92 TB/s vs. 1.31 TB/s, a 1.47x ratio).

use serde::{Deserialize, Serialize};

/// GPU vendor, for reporting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (CUDA terminology: SM, warp = 32).
    Nvidia,
    /// AMD (ROCm terminology: CU, wavefront = 64).
    Amd,
    /// A fictional device used by unit tests.
    Test,
}

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"H100-PCIe (simulated)"`.
    pub name: String,
    /// Vendor, for reporting.
    pub vendor: Vendor,
    /// Streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub sms: u32,
    /// Shared memory / LDS capacity per SM in bytes. This is the paper's
    /// critical resource: ≈228 KB on H100 vs 64 KB per CU on MI250x
    /// ("3.5x smaller", §8).
    pub smem_per_sm: u32,
    /// Maximum dynamic shared memory a single block may request.
    pub max_smem_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Hardware cap on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Warp (NVIDIA) / wavefront (AMD) width.
    pub warp_size: u32,
    /// Sustained global-memory bandwidth in bytes/second (paper §8 values).
    pub mem_bw: f64,
    /// Number of resident warps per SM needed to saturate `mem_bw`;
    /// below this, effective bandwidth degrades linearly (latency-bound).
    pub saturation_warps: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Fixed cost of one kernel launch, in seconds (driver + hardware).
    pub launch_overhead_s: f64,
    /// Fixed cost of one *warm* launch, in seconds: submission through an
    /// already-resident worker pool / persistent-kernel queue
    /// ([`crate::resident::EngineMode::Resident`]). Covers only the
    /// hardware doorbell and queue pop — the driver/runtime share of
    /// `launch_overhead_s` is paid once at spin-up. Defaults to `0.0` when
    /// deserializing specs recorded before the resident engine existed.
    #[serde(default)]
    pub warm_launch_overhead_s: f64,
    /// One-time cost of spinning up the resident engine (allocating the
    /// persistent pool, priming queues and arenas), in seconds. Charged
    /// once per pool lifetime by the layers that own a pool (serve, bench)
    /// — never folded into per-launch times, so launch reports stay
    /// policy-invariant. Defaults to `0.0` for legacy serialized specs.
    #[serde(default)]
    pub engine_spinup_s: f64,
    /// Latency of one dependent shared-memory round trip, in cycles.
    pub smem_latency_cycles: f64,
    /// Cost of a block-wide barrier (`__syncthreads`), in cycles.
    pub sync_cycles: f64,
    /// fp64 FMA lanes per SM (throughput cap for co-resident blocks).
    pub fp64_lanes_per_sm: u32,
    /// Multiplier on recorded data-parallel work cycles (shared-memory /
    /// LDS throughput factor — calibrated so the model's GPU-vs-CPU
    /// speedups land on the paper's Tables 1-3).
    pub work_scale: f64,
    /// Shared-memory lanes serviced per cycle per block: LDS bandwidth is a
    /// per-SM/CU resource, so adding threads beyond this does not speed up
    /// shared-memory-bound work (the effective divisor of `smem_work` is
    /// `min(threads, lds_lanes)`).
    pub lds_lanes: u32,
    /// 32-bit registers per SM (occupancy limiter for register-blocked
    /// kernels such as the §8.1-style specialized factorizations).
    pub registers_per_sm: u32,
}

impl DeviceSpec {
    /// NVIDIA H100-PCIe (CUDA 12.1 era), as used in the paper.
    ///
    /// 114 SMs, 228 KB shared/SM (227 KB max per block), 2048 threads/SM,
    /// sustained 1.92 TB/s (paper-measured), ~1.6 GHz boost. The latency
    /// knobs (`smem_latency_cycles`, `sync_cycles`, `work_scale`) are fitted
    /// by `gbatch-bench`'s `calibrate` binary against the paper's Table 1
    /// speedups (see EXPERIMENTS.md).
    pub fn h100_pcie() -> Self {
        DeviceSpec {
            name: "H100-PCIe (simulated)".to_string(),
            vendor: Vendor::Nvidia,
            sms: 114,
            smem_per_sm: 228 * 1024,
            max_smem_per_block: 227 * 1024,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            mem_bw: 1.92e12,
            saturation_warps: 12,
            clock_hz: 1.62e9,
            launch_overhead_s: 4.0e-6,
            // Warm submissions skip the driver stack (CUDA graph / persistent
            // kernel regime: ~0.5 us doorbell vs ~4 us cudaLaunchKernel).
            warm_launch_overhead_s: 0.5e-6,
            engine_spinup_s: 20.0e-6,
            smem_latency_cycles: 63.25,
            sync_cycles: 82.5,
            fp64_lanes_per_sm: 64,
            work_scale: 175.0,
            lds_lanes: 32,
            registers_per_sm: 65536,
        }
    }

    /// One GCD of an AMD MI250x (ROCm 5.5.1 era), as used in the paper.
    ///
    /// 110 CUs, 64 KB LDS per CU, wavefront 64, sustained 1.31 TB/s
    /// (paper-measured), ~1.7 GHz. Latency knobs calibrated like
    /// [`DeviceSpec::h100_pcie`]; the narrower `lds_lanes` reflects the
    /// LDS-throughput wall the paper attributes to the MI250x on wide
    /// bands.
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            name: "MI250x-GCD (simulated)".to_string(),
            vendor: Vendor::Amd,
            sms: 110,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 64,
            mem_bw: 1.31e12,
            saturation_warps: 10,
            clock_hz: 1.7e9,
            // ROCm launch overhead is noticeably higher than CUDA's.
            launch_overhead_s: 6.0e-6,
            warm_launch_overhead_s: 0.75e-6,
            engine_spinup_s: 30.0e-6,
            smem_latency_cycles: 84.0,
            sync_cycles: 120.0,
            fp64_lanes_per_sm: 64,
            work_scale: 120.0,
            lds_lanes: 8,
            registers_per_sm: 65536,
        }
    }

    /// A tiny fictional device for deterministic unit tests:
    /// 4 SMs, 16 KB shared, warp 8.
    pub fn test_device() -> Self {
        DeviceSpec {
            name: "TestGPU".to_string(),
            vendor: Vendor::Test,
            sms: 4,
            smem_per_sm: 16 * 1024,
            max_smem_per_block: 16 * 1024,
            max_threads_per_sm: 256,
            max_threads_per_block: 128,
            max_blocks_per_sm: 8,
            warp_size: 8,
            mem_bw: 1.0e11,
            saturation_warps: 4,
            clock_hz: 1.0e9,
            launch_overhead_s: 1.0e-6,
            warm_launch_overhead_s: 0.125e-6,
            engine_spinup_s: 5.0e-6,
            smem_latency_cycles: 20.0,
            sync_cycles: 25.0,
            fp64_lanes_per_sm: 8,
            work_scale: 1.0,
            lds_lanes: 8,
            registers_per_sm: 4096,
        }
    }

    /// Shared-memory capacity ratio against another device (the paper
    /// quotes H100/MI250x = 3.5x).
    pub fn smem_ratio(&self, other: &DeviceSpec) -> f64 {
        self.smem_per_sm as f64 / other.smem_per_sm as f64
    }

    /// Warps (rounded up) needed by a block of `threads` threads.
    pub fn warps_per_block(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_ratios_hold() {
        let h = DeviceSpec::h100_pcie();
        let m = DeviceSpec::mi250x_gcd();
        // "its shared memory is 3.5x smaller than the H100 GPU" (§8).
        let r = h.smem_ratio(&m);
        assert!((r - 3.5625).abs() < 0.1, "smem ratio {r}");
        // "The H100-PCIe GPU achieves 47% higher bandwidth" (§8).
        let bw = h.mem_bw / m.mem_bw;
        assert!((bw - 1.47).abs() < 0.02, "bandwidth ratio {bw}");
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let h = DeviceSpec::h100_pcie();
        assert_eq!(h.warps_per_block(1), 1);
        assert_eq!(h.warps_per_block(32), 1);
        assert_eq!(h.warps_per_block(33), 2);
        let m = DeviceSpec::mi250x_gcd();
        assert_eq!(m.warps_per_block(64), 1);
        assert_eq!(m.warps_per_block(65), 2);
    }

    #[test]
    fn warm_launch_is_cheaper_than_cold_on_every_device() {
        for dev in [
            DeviceSpec::h100_pcie(),
            DeviceSpec::mi250x_gcd(),
            DeviceSpec::test_device(),
        ] {
            assert!(
                dev.warm_launch_overhead_s > 0.0
                    && dev.warm_launch_overhead_s < dev.launch_overhead_s,
                "{}: warm {} vs cold {}",
                dev.name,
                dev.warm_launch_overhead_s,
                dev.launch_overhead_s
            );
            // Spin-up amortizes: a handful of warm launches must repay it
            // against the per-launch savings, or Resident mode could never
            // win a serve flush.
            let saving = dev.launch_overhead_s - dev.warm_launch_overhead_s;
            assert!(
                dev.engine_spinup_s < 16.0 * saving,
                "{}: spin-up {} never amortized by saving {}",
                dev.name,
                dev.engine_spinup_s,
                saving
            );
        }
    }

    #[test]
    fn legacy_spec_json_deserializes_with_cold_defaults() {
        // Drop the resident-engine fields from a serialized spec, as specs
        // recorded before this model revision would lack them. Scalar
        // values end at the next comma or closing brace, so textual
        // removal is exact.
        fn strip_key(json: &str, key: &str) -> String {
            let pat = format!("\"{key}\":");
            let start = json.find(&pat).expect("key present");
            let val_end = start
                + pat.len()
                + json[start + pat.len()..]
                    .find([',', '}'])
                    .expect("value terminator");
            if json.as_bytes()[val_end] == b',' {
                format!("{}{}", &json[..start], &json[val_end + 1..])
            } else {
                format!("{}{}", &json[..start - 1], &json[val_end..])
            }
        }
        let full = serde_json::to_string(&DeviceSpec::test_device()).unwrap();
        let legacy = strip_key(
            &strip_key(&full, "warm_launch_overhead_s"),
            "engine_spinup_s",
        );
        let back: DeviceSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.warm_launch_overhead_s, 0.0);
        assert_eq!(back.engine_spinup_s, 0.0);
        assert_eq!(back.launch_overhead_s, 1.0e-6);
    }

    #[test]
    fn specs_serialize_roundtrip() {
        let h = DeviceSpec::h100_pcie();
        let s = serde_json::to_string(&h).unwrap();
        let back: DeviceSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(h, back);
    }
}
