//! Analytic wave-based timing model.
//!
//! A launch of `grid` blocks at residency `occ` executes in
//! `waves = ceil(grid / occ.concurrent_blocks)` rounds. Each wave costs the
//! maximum of:
//!
//! - **memory time** — the wave's global traffic divided by the *effective*
//!   bandwidth. Below `saturation_warps` resident warps per SM the device is
//!   latency-bound and bandwidth scales linearly with occupancy; this is the
//!   mechanism behind the paper's staircase (Fig. 3) and the stream-vs-batch
//!   gap (Fig. 1);
//! - **compute/latency time** — the slowest block's critical path: recorded
//!   cycles plus shared-memory trips and barrier costs, at the device clock,
//!   with a throughput correction when co-resident blocks oversubscribe the
//!   SM's fp64 lanes.
//!
//! The model's absolute scale is synthetic (documented in EXPERIMENTS.md);
//! its *structure* — what depends on occupancy, traffic and critical path —
//! mirrors the paper's analysis, which is what the reproduction relies on.

use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::occupancy::{waves, Occupancy};
use serde::{Deserialize, Serialize};

/// Floating-point throughput class of a launch.
///
/// The device spec records fp64 lanes per SM; fp32 issues on a wider lane
/// group (H100: 128 fp32 vs 64 fp64 cores per SM), which the timing model
/// expresses as an integer lane multiplier. `Fp64` has multiplier 1, so the
/// fp64 cost is bit-for-bit what the pre-precision model produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FlopPrecision {
    /// 32-bit lanes: twice the fp64 lane count.
    Fp32,
    /// 64-bit lanes (the default; matches the paper's evaluation).
    #[default]
    Fp64,
}

impl FlopPrecision {
    /// Lane-count multiplier relative to the device's fp64 lanes.
    #[inline]
    #[must_use]
    pub fn lane_multiplier(self) -> u32 {
        match self {
            FlopPrecision::Fp32 => 2,
            FlopPrecision::Fp64 => 1,
        }
    }
}

/// A simulated duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Milliseconds (the unit of every figure in the paper).
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Microseconds.
    #[inline]
    pub fn us(self) -> f64 {
        self.0 * 1e6
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

/// Effective global bandwidth at a given residency: full bandwidth once
/// `saturation_warps` warps are resident per SM, linear below that
/// (latency-bound regime).
pub fn effective_bandwidth(dev: &DeviceSpec, occ: &Occupancy) -> f64 {
    let frac = (occ.warps_per_sm as f64 / dev.saturation_warps as f64).min(1.0);
    dev.mem_bw * frac
}

/// Per-wave aggregate: total traffic of the wave's blocks plus the critical
/// path of its slowest block (for uniform batches every block is the same,
/// so the launch aggregate divided into waves is exact).
pub fn estimate(
    dev: &DeviceSpec,
    occ: &Occupancy,
    grid: usize,
    per_block: &KernelCounters,
) -> SimTime {
    estimate_with_precision(dev, occ, grid, per_block, FlopPrecision::Fp64)
}

/// [`estimate`] with an explicit throughput class. fp32 launches divide the
/// flop cost over `lane_multiplier()` times the fp64 lanes; the `Fp64` path
/// is bitwise-identical to [`estimate`] (multiplier 1 is an exact integer
/// no-op on the divisor).
pub fn estimate_with_precision(
    dev: &DeviceSpec,
    occ: &Occupancy,
    grid: usize,
    per_block: &KernelCounters,
    precision: FlopPrecision,
) -> SimTime {
    if grid == 0 {
        return SimTime(dev.launch_overhead_s);
    }
    let n_waves = waves(grid, occ);
    // Memory: traffic of a full wave at effective bandwidth. The last
    // (possibly partial) wave is costed like a full one only for the blocks
    // it actually has.
    let eff_bw = effective_bandwidth(dev, occ);
    let total_bytes = per_block.global_bytes() as f64 * grid as f64;
    let mem_time = total_bytes / eff_bw;

    // Compute/latency: each wave pays the slowest block's critical path.
    let latency_cycles = per_block.cycles
        + per_block.smem_elems * dev.work_scale
        + per_block.smem_trips as f64 * dev.smem_latency_cycles
        + per_block.syncs as f64 * dev.sync_cycles;
    // Throughput correction: co-resident blocks share the SM's lanes.
    // A grid smaller than one full wave leaves SMs partially filled, so the
    // sharing factor is capped by the blocks actually resident on an SM.
    let resident = (occ.blocks_per_sm as usize).min(grid.div_ceil(dev.sms as usize));
    let lanes = dev.fp64_lanes_per_sm * precision.lane_multiplier();
    let lane_cycles_per_sm = per_block.flops as f64 * resident as f64 / lanes as f64;
    let wave_cycles = latency_cycles.max(lane_cycles_per_sm / 2.0);
    let compute_time = n_waves as f64 * wave_cycles / dev.clock_hz;

    SimTime(dev.launch_overhead_s + mem_time.max(compute_time))
}

/// Convenience: estimate from an aggregate where the caller already summed
/// per-block traffic over the whole grid and kept per-block critical path
/// (what [`crate::engine::launch`] produces).
pub fn estimate_aggregate(
    dev: &DeviceSpec,
    occ: &Occupancy,
    grid: usize,
    total: &KernelCounters,
) -> SimTime {
    estimate_aggregate_with_precision(dev, occ, grid, total, FlopPrecision::Fp64)
}

/// [`estimate_aggregate`] with an explicit throughput class (see
/// [`estimate_with_precision`] for the lane-multiplier semantics).
pub fn estimate_aggregate_with_precision(
    dev: &DeviceSpec,
    occ: &Occupancy,
    grid: usize,
    total: &KernelCounters,
    precision: FlopPrecision,
) -> SimTime {
    estimate_aggregate_with_overhead(dev, occ, grid, total, precision, dev.launch_overhead_s)
}

/// [`estimate_aggregate_with_precision`] with an explicit fixed launch
/// overhead. The engine passes the cold `launch_overhead_s` for
/// [`crate::resident::EngineMode::PerLaunch`] (making that path
/// bitwise-identical to the legacy model) and the warm
/// `warm_launch_overhead_s` for [`crate::resident::EngineMode::Resident`]
/// submissions through a persistent pool; the device-time body is shared,
/// so the two modes differ by exactly the overhead constant.
pub fn estimate_aggregate_with_overhead(
    dev: &DeviceSpec,
    occ: &Occupancy,
    grid: usize,
    total: &KernelCounters,
    precision: FlopPrecision,
    overhead_s: f64,
) -> SimTime {
    if grid == 0 {
        return SimTime(overhead_s);
    }
    let n_waves = waves(grid, occ);
    let eff_bw = effective_bandwidth(dev, occ);
    let mem_time = total.global_bytes() as f64 / eff_bw;
    let latency_cycles = total.cycles
        + total.smem_elems * dev.work_scale
        + total.smem_trips as f64 * dev.smem_latency_cycles
        + total.syncs as f64 * dev.sync_cycles;
    let flops_per_block = total.flops as f64 / grid as f64;
    let resident = (occ.blocks_per_sm as usize).min(grid.div_ceil(dev.sms as usize));
    let lanes = dev.fp64_lanes_per_sm * precision.lane_multiplier();
    let lane_cycles_per_sm = flops_per_block * resident as f64 / lanes as f64;
    let wave_cycles = latency_cycles.max(lane_cycles_per_sm / 2.0);
    let compute_time = n_waves as f64 * wave_cycles / dev.clock_hz;
    SimTime(overhead_s + mem_time.max(compute_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn block_counters() -> KernelCounters {
        KernelCounters {
            global_read: 4096,
            global_write: 4096,
            flops: 10_000,
            smem_trips: 50,
            syncs: 10,
            cycles: 2_000.0,
            ..Default::default()
        }
    }

    #[test]
    fn doubling_waves_roughly_doubles_time() {
        let dev = DeviceSpec::test_device();
        let occ = occupancy(&dev, 8, 8192).unwrap(); // 8 concurrent blocks
        let c = block_counters();
        let t1 = estimate(&dev, &occ, 8, &c);
        let t2 = estimate(&dev, &occ, 16, &c);
        let ratio = (t2.secs() - dev.launch_overhead_s) / (t1.secs() - dev.launch_overhead_s);
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn occupancy_drop_creates_staircase() {
        // Same work per block, but shared memory crossing the half-capacity
        // boundary halves residency -> latency-dominated time doubles.
        let dev = DeviceSpec::test_device();
        let grid = 64;
        let c = block_counters();
        let occ2 = occupancy(&dev, 8, dev.smem_per_sm / 2).unwrap();
        let occ1 = occupancy(&dev, 8, dev.smem_per_sm / 2 + 64).unwrap();
        assert_eq!(occ2.blocks_per_sm, 2);
        assert_eq!(occ1.blocks_per_sm, 1);
        let t2 = estimate(&dev, &occ2, grid, &c);
        let t1 = estimate(&dev, &occ1, grid, &c);
        assert!(
            t1.secs() > 1.7 * t2.secs() - dev.launch_overhead_s,
            "staircase missing: {} vs {}",
            t1.secs(),
            t2.secs()
        );
    }

    #[test]
    fn low_occupancy_degrades_bandwidth() {
        let dev = DeviceSpec::test_device(); // saturation_warps = 4, warp 8
        let occ_low = occupancy(&dev, 8, dev.smem_per_sm).unwrap(); // 1 block/SM, 1 warp
        let occ_high = occupancy(&dev, 32, dev.smem_per_sm / 8).unwrap(); // 4 warps/SM
        assert!(effective_bandwidth(&dev, &occ_low) < effective_bandwidth(&dev, &occ_high));
        assert_eq!(effective_bandwidth(&dev, &occ_high), dev.mem_bw);
        assert!((effective_bandwidth(&dev, &occ_low) - dev.mem_bw * 0.25).abs() < 1.0);
    }

    #[test]
    fn empty_grid_costs_launch_overhead() {
        let dev = DeviceSpec::test_device();
        let occ = occupancy(&dev, 8, 0).unwrap();
        let t = estimate(&dev, &occ, 0, &KernelCounters::default());
        assert_eq!(t.secs(), dev.launch_overhead_s);
    }

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime(1e-3) + SimTime(2e-3);
        assert!((a.ms() - 3.0).abs() < 1e-12);
        assert!((a.us() - 3000.0).abs() < 1e-9);
        let s: SimTime = [SimTime(1.0), SimTime(2.0)].into_iter().sum();
        assert_eq!(s.secs(), 3.0);
        let mut m = SimTime::ZERO;
        m += SimTime(0.5);
        assert_eq!(m.secs(), 0.5);
    }

    #[test]
    fn fp32_lane_class_never_slower_and_fp64_is_identity() {
        let dev = DeviceSpec::test_device();
        let occ = occupancy(&dev, 8, 4096).unwrap();
        let mut c = block_counters();
        c.flops = 10_000_000; // force the flop-throughput term to dominate
        let t64 = estimate_with_precision(&dev, &occ, 64, &c, FlopPrecision::Fp64);
        let t32 = estimate_with_precision(&dev, &occ, 64, &c, FlopPrecision::Fp32);
        assert!(t32.secs() <= t64.secs());
        assert!(t32.secs() < t64.secs(), "flop-bound launch must speed up");
        // Fp64 wrapper is the exact legacy model.
        let legacy = estimate(&dev, &occ, 64, &c);
        assert_eq!(t64.secs().to_bits(), legacy.secs().to_bits());
    }

    #[test]
    fn warm_overhead_shifts_time_by_exactly_the_overhead_delta() {
        let dev = DeviceSpec::test_device();
        let occ = occupancy(&dev, 8, 4096).unwrap();
        let c = block_counters();
        let cold = estimate_aggregate_with_precision(&dev, &occ, 12, &c, FlopPrecision::Fp64);
        let warm = estimate_aggregate_with_overhead(
            &dev,
            &occ,
            12,
            &c,
            FlopPrecision::Fp64,
            dev.warm_launch_overhead_s,
        );
        let delta = dev.launch_overhead_s - dev.warm_launch_overhead_s;
        assert!((cold.secs() - warm.secs() - delta).abs() < 1e-18);
        // Passing the cold overhead explicitly is the exact legacy model.
        let explicit = estimate_aggregate_with_overhead(
            &dev,
            &occ,
            12,
            &c,
            FlopPrecision::Fp64,
            dev.launch_overhead_s,
        );
        assert_eq!(explicit.secs().to_bits(), cold.secs().to_bits());
        // Empty grids cost exactly the requested overhead.
        let empty = estimate_aggregate_with_overhead(
            &dev,
            &occ,
            0,
            &KernelCounters::default(),
            FlopPrecision::Fp64,
            dev.warm_launch_overhead_s,
        );
        assert_eq!(empty.secs(), dev.warm_launch_overhead_s);
    }

    #[test]
    fn aggregate_matches_per_block_for_uniform_grid() {
        let dev = DeviceSpec::test_device();
        let occ = occupancy(&dev, 8, 4096).unwrap();
        let c = block_counters();
        let grid = 40;
        let mut agg = KernelCounters::default();
        for _ in 0..grid {
            let mut b = c;
            b.global_read *= 1; // per-block
            agg.global_read += b.global_read;
            agg.global_write += b.global_write;
            agg.flops += b.flops;
            agg.smem_trips = agg.smem_trips.max(b.smem_trips);
            agg.syncs = agg.syncs.max(b.syncs);
            agg.cycles = agg.cycles.max(b.cycles);
        }
        let t1 = estimate(&dev, &occ, grid, &c);
        let t2 = estimate_aggregate(&dev, &occ, grid, &agg);
        assert!((t1.secs() - t2.secs()).abs() < 1e-12);
    }
}
