//! CUDA-style occupancy calculation.
//!
//! The number of blocks co-resident on one SM is the minimum over each
//! limiting resource. For the kernels in this workspace the binding
//! resource is **shared memory** — exactly the effect the paper analyzes:
//! the fused factorization's footprint grows with the matrix size, so
//! residency drops in discrete steps ("staircase", Fig. 3), halving
//! throughput whenever `floor(smem_per_sm / smem_per_block)` halves.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Residency of a kernel launch on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Co-resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Co-resident blocks on the whole device.
    pub concurrent_blocks: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Which resource bound the residency.
    pub limiter: Limiter,
}

/// The resource that capped `blocks_per_sm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Shared memory capacity (the common case in this workspace).
    SharedMemory,
    /// Resident-thread limit.
    Threads,
    /// Hardware block cap.
    BlockCap,
    /// Register-file capacity (register-blocked kernels, §8.1 style).
    Registers,
}

/// Compute residency for a block of `threads` threads using `smem_bytes`
/// of shared memory. Returns `None` when a single block cannot launch at
/// all (exceeds per-block limits) — the simulated equivalent of CUDA's
/// launch failure, which the paper hits when the fused kernel's matrix no
/// longer fits in shared memory ("even failing to run", §5.2).
pub fn occupancy(dev: &DeviceSpec, threads: u32, smem_bytes: u32) -> Option<Occupancy> {
    occupancy_with_regs(dev, threads, smem_bytes, 0)
}

/// Residency including register pressure: a block of `threads` threads at
/// `regs_per_thread` registers each occupies `threads * regs` of the SM's
/// register file (0 = ignore the register file, like [`occupancy`]).
pub fn occupancy_with_regs(
    dev: &DeviceSpec,
    threads: u32,
    smem_bytes: u32,
    regs_per_thread: u32,
) -> Option<Occupancy> {
    if threads == 0 || threads > dev.max_threads_per_block {
        return None;
    }
    if smem_bytes > dev.max_smem_per_block {
        return None;
    }
    let by_smem = dev
        .smem_per_sm
        .checked_div(smem_bytes)
        .unwrap_or(dev.max_blocks_per_sm)
        .min(dev.max_blocks_per_sm);
    let by_threads = dev.max_threads_per_sm / threads;
    let regs_per_block = regs_per_thread.saturating_mul(threads);
    if regs_per_block > dev.registers_per_sm {
        return None; // cannot launch even one block: would spill
    }
    let by_regs = dev
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(dev.max_blocks_per_sm)
        .min(dev.max_blocks_per_sm);
    let cap = dev.max_blocks_per_sm;
    let blocks_per_sm = by_smem.min(by_threads).min(by_regs).min(cap);
    if blocks_per_sm == 0 {
        // smem fits in a block but per-SM capacity is smaller than
        // per-block allowance cannot happen with these descriptors
        // (smem_per_sm >= max_smem_per_block), but threads can still be
        // the binding zero if max_threads_per_sm < threads.
        return None;
    }
    let limiter = if blocks_per_sm == by_smem && smem_bytes > 0 {
        Limiter::SharedMemory
    } else if blocks_per_sm == by_regs && regs_per_block > 0 {
        Limiter::Registers
    } else if blocks_per_sm == by_threads {
        Limiter::Threads
    } else {
        Limiter::BlockCap
    };
    Some(Occupancy {
        blocks_per_sm,
        concurrent_blocks: blocks_per_sm * dev.sms,
        warps_per_sm: blocks_per_sm * dev.warps_per_block(threads),
        limiter,
    })
}

/// Number of full waves a grid of `grid` blocks needs at this residency.
pub fn waves(grid: usize, occ: &Occupancy) -> usize {
    grid.div_ceil(occ.concurrent_blocks as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smem_staircase() {
        // The paper's inflection: crossing half the LDS capacity drops
        // residency from 2 to 1 and roughly halves throughput (§5.2).
        let dev = DeviceSpec::mi250x_gcd();
        let half = dev.smem_per_sm / 2;
        let occ2 = occupancy(&dev, 64, half).unwrap();
        assert_eq!(occ2.blocks_per_sm, 2);
        assert_eq!(occ2.limiter, Limiter::SharedMemory);
        let occ1 = occupancy(&dev, 64, half + 8).unwrap();
        assert_eq!(occ1.blocks_per_sm, 1);
    }

    #[test]
    fn exceeding_block_smem_fails_launch() {
        let dev = DeviceSpec::mi250x_gcd();
        assert!(occupancy(&dev, 64, dev.max_smem_per_block + 1).is_none());
        // H100 still fits the same request: its shared memory is 3.5x larger.
        let h = DeviceSpec::h100_pcie();
        assert!(occupancy(&h, 64, dev.max_smem_per_block + 1).is_some());
    }

    #[test]
    fn thread_limited_kernels() {
        let dev = DeviceSpec::h100_pcie();
        let occ = occupancy(&dev, 1024, 0).unwrap();
        assert_eq!(occ.blocks_per_sm, 2); // 2048 / 1024
        assert_eq!(occ.limiter, Limiter::Threads);
    }

    #[test]
    fn block_cap_limited() {
        let dev = DeviceSpec::h100_pcie();
        let occ = occupancy(&dev, 32, 0).unwrap();
        assert_eq!(occ.blocks_per_sm, dev.max_blocks_per_sm);
        assert_eq!(occ.limiter, Limiter::BlockCap);
    }

    #[test]
    fn invalid_thread_counts() {
        let dev = DeviceSpec::test_device();
        assert!(occupancy(&dev, 0, 0).is_none());
        assert!(occupancy(&dev, dev.max_threads_per_block + 1, 0).is_none());
    }

    #[test]
    fn wave_count() {
        let dev = DeviceSpec::test_device(); // 4 SMs
        let occ = occupancy(&dev, 8, 8192).unwrap(); // 2 blocks/SM -> 8 concurrent
        assert_eq!(occ.concurrent_blocks, 8);
        assert_eq!(waves(1, &occ), 1);
        assert_eq!(waves(8, &occ), 1);
        assert_eq!(waves(9, &occ), 2);
        assert_eq!(waves(1000, &occ), 125);
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let dev = DeviceSpec::h100_pcie(); // 65536 regs/SM
                                           // 64 threads x 256 regs = 16384 regs/block -> 4 blocks/SM.
        let occ = occupancy_with_regs(&dev, 64, 0, 256).unwrap();
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.limiter, Limiter::Registers);
        // A block that alone overflows the register file cannot launch.
        assert!(occupancy_with_regs(&dev, 1024, 0, 128).is_none());
        // Zero register pressure behaves like the plain calculation.
        let a = occupancy(&dev, 64, 1024).unwrap();
        let b = occupancy_with_regs(&dev, 64, 1024, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn warps_per_sm_counts_block_warps() {
        let dev = DeviceSpec::test_device(); // warp 8
        let occ = occupancy(&dev, 20, 8192).unwrap(); // 3 warps per block, 2 blocks
        assert_eq!(occ.warps_per_sm, 6);
    }
}
