//! Sync-epoch shared-memory hazard detection.
//!
//! The simulated engine executes each block program on one host thread, so
//! a kernel that would race on real hardware still produces right answers
//! here — the deterministic executor serializes what a SIMT machine runs
//! concurrently. This module closes that gap: every shared-memory access a
//! kernel records is tagged with the *simulated lane* that would perform it
//! and the current *barrier epoch* (advanced by
//! [`crate::block::BlockContext::sync`]). Two accesses to the same shared
//! offset by **distinct lanes within one epoch**, at least one of them a
//! write, have no ordering on real hardware — a RAW, WAR or WAW hazard.
//!
//! Modes ([`HazardMode`], selectable per launch through
//! [`crate::engine::LaunchConfig::with_hazard`] or process-wide through
//! [`set_global_mode`] / the `GBATCH_HAZARD` environment variable):
//!
//! - `Off` — no tracking, no overhead beyond one branch per phase.
//! - `Record` — conflicts are collected into per-block [`HazardReport`]s
//!   surfaced on the launch report; the aggregate count rides on
//!   [`crate::counters::KernelCounters::hazards`].
//! - `Enforce` — the first conflict aborts the block with a located
//!   `(epoch, lane, offset)` diagnostic. Sibling blocks still complete
//!   (the executor's panic isolation), and the lowest-block-id failure is
//!   re-raised deterministically.
//!
//! Lane attribution follows the kernels' thread mapping: data-parallel
//! sweeps stripe elements over the block's threads (element `base + k` is
//! touched by lane `k % threads`), values every thread needs are broadcast
//! reads ([`HazardTracker::broadcast_read`], marked as touched by *all*
//! lanes), and per-owner phases (e.g. one RHS column per thread) use
//! [`HazardTracker::range_read`] / [`HazardTracker::range_write`] with a
//! single owning lane.

use std::sync::atomic::{AtomicU8, Ordering};

/// Sentinel lane meaning "every lane of the block" (broadcast accesses).
pub const ALL_LANES: u32 = u32::MAX;

/// How a launch treats shared-memory hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HazardMode {
    /// No tracking (production default; no measurable overhead).
    #[default]
    Off,
    /// Track accesses and collect conflicts into [`HazardReport`]s.
    Record,
    /// Track accesses and abort the block on the first conflict.
    Enforce,
    /// Record, plus export the full tagged access footprint (every
    /// `(epoch, lane, offset, kind)` tuple) on the report. Used by the
    /// static kernel-schedule verifier's conformance pass; far too
    /// memory-hungry for production shapes.
    Trace,
}

impl HazardMode {
    /// Whether this mode needs an access tracker at all.
    #[inline]
    pub fn is_on(self) -> bool {
        self != HazardMode::Off
    }

    /// Parse a mode name (`off` / `record` / `enforce` / `trace`),
    /// case-insensitive.
    pub fn parse(s: &str) -> Option<HazardMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(HazardMode::Off),
            "record" => Some(HazardMode::Record),
            "enforce" | "1" => Some(HazardMode::Enforce),
            "trace" => Some(HazardMode::Trace),
            _ => None,
        }
    }

    /// Canonical mode name; `HazardMode::parse(m.name()) == Some(m)`.
    pub fn name(self) -> &'static str {
        match self {
            HazardMode::Off => "off",
            HazardMode::Record => "record",
            HazardMode::Enforce => "enforce",
            HazardMode::Trace => "trace",
        }
    }
}

/// Process-wide default mode: 0 = Off, 1 = Record, 2 = Enforce, 3 = Trace,
/// 255 = unset (initialize from `GBATCH_HAZARD` on first use).
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(255);

fn encode(mode: HazardMode) -> u8 {
    match mode {
        HazardMode::Off => 0,
        HazardMode::Record => 1,
        HazardMode::Enforce => 2,
        HazardMode::Trace => 3,
    }
}

/// Forget any cached process-wide mode so the next [`global_mode`] call
/// re-reads `GBATCH_HAZARD`. Exists for the env-handling tests, which need
/// to observe several environment values in one process.
#[doc(hidden)]
pub fn reset_global_mode_for_tests() {
    GLOBAL_MODE.store(255, Ordering::Relaxed);
}

/// Set the process-wide default hazard mode picked up by
/// [`crate::engine::LaunchConfig::new`] (individual launches can still
/// override it with `with_hazard`). Test profiles use this to run entire
/// kernel grids in `Enforce` mode without threading a flag through every
/// entry point.
pub fn set_global_mode(mode: HazardMode) {
    GLOBAL_MODE.store(encode(mode), Ordering::Relaxed);
}

/// The process-wide default hazard mode: the last [`set_global_mode`]
/// value, else `GBATCH_HAZARD` (`off`/`record`/`enforce`), else `Off`.
pub fn global_mode() -> HazardMode {
    match GLOBAL_MODE.load(Ordering::Relaxed) {
        0 => HazardMode::Off,
        1 => HazardMode::Record,
        2 => HazardMode::Enforce,
        3 => HazardMode::Trace,
        _ => {
            let mode = std::env::var("GBATCH_HAZARD")
                .ok()
                .and_then(|v| HazardMode::parse(&v))
                .unwrap_or(HazardMode::Off);
            GLOBAL_MODE.store(encode(mode), Ordering::Relaxed);
            mode
        }
    }
}

/// Conflict class of a detected hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Read-after-write: a lane read a value another lane wrote in the
    /// same epoch.
    Raw,
    /// Write-after-read: a lane overwrote a value another lane read in the
    /// same epoch.
    War,
    /// Write-after-write: two lanes wrote the same offset in one epoch.
    Waw,
}

impl std::fmt::Display for HazardKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        })
    }
}

fn lane_str(lane: u32) -> String {
    if lane == ALL_LANES {
        "*".to_string()
    } else {
        lane.to_string()
    }
}

/// One detected conflict, located by shared offset, barrier epoch and the
/// two lanes involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// Conflict class.
    pub kind: HazardKind,
    /// Shared-memory offset (in `f64` elements) of the conflicting cell.
    pub offset: usize,
    /// Barrier epoch both accesses fell into.
    pub epoch: u64,
    /// Lane of the earlier access ([`ALL_LANES`] = broadcast).
    pub first_lane: u32,
    /// Lane of the later, conflicting access ([`ALL_LANES`] = broadcast).
    pub second_lane: u32,
}

impl std::fmt::Display for Hazard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hazard at shared offset {} in epoch {}: lane {} then lane {} \
             with no barrier between them",
            self.kind,
            self.offset,
            self.epoch,
            lane_str(self.first_lane),
            lane_str(self.second_lane),
        )
    }
}

/// One tagged shared-memory access, exported under [`HazardMode::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessRecord {
    /// Barrier epoch the access fell into.
    pub epoch: u64,
    /// Simulated lane ([`ALL_LANES`] = broadcast).
    pub lane: u32,
    /// Shared-memory offset (in `f64` elements for f64 launches, in
    /// scalar elements for narrower precisions — the unit the kernel's
    /// tracker calls use).
    pub offset: usize,
    /// `true` for writes, `false` for reads.
    pub write: bool,
}

/// Per-block summary of a tracked launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HazardReport {
    /// Block (grid) id the report belongs to.
    pub block_id: usize,
    /// Kernel label of the launch.
    pub label: &'static str,
    /// Barrier epochs the block ran through (`syncs + 1` once any access
    /// was tracked).
    pub epochs: u64,
    /// Tagged shared reads.
    pub reads: u64,
    /// Tagged shared writes.
    pub writes: u64,
    /// Detected conflicts, in detection order (capped at
    /// [`HazardTracker::MAX_RECORDED`]; `total_hazards` keeps counting).
    pub hazards: Vec<Hazard>,
    /// Total conflicts detected, including any beyond the recording cap.
    pub total_hazards: u64,
    /// Full access footprint (only populated under [`HazardMode::Trace`];
    /// empty in every other mode).
    pub accesses: Vec<AccessRecord>,
}

/// Last tagged accesses of one shared cell.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    /// Lane and epoch of the last write.
    write: Option<(u32, u64)>,
    /// Lane, epoch and "several distinct lanes" flag of the last read(s).
    read: Option<(u32, u64, bool)>,
}

/// Whether accesses by `a` and `b` can come from different physical lanes.
#[inline]
fn lanes_differ(a: u32, b: u32) -> bool {
    a != b || a == ALL_LANES
}

/// The per-block access tracker (owned by [`crate::shared::SharedMem`]).
#[derive(Debug)]
pub struct HazardTracker {
    mode: HazardMode,
    block_id: usize,
    label: &'static str,
    epoch: u64,
    touched: bool,
    cells: Vec<Cell>,
    hazards: Vec<Hazard>,
    total_hazards: u64,
    reads: u64,
    writes: u64,
    accesses: Vec<AccessRecord>,
}

impl HazardTracker {
    /// Recorded-conflict cap per block; the total count keeps running.
    pub const MAX_RECORDED: usize = 64;

    /// Tracker for `mode` (`mode.is_on()` must hold).
    pub fn new(mode: HazardMode) -> Self {
        debug_assert!(mode.is_on());
        HazardTracker {
            mode,
            block_id: 0,
            label: "kernel",
            epoch: 0,
            touched: false,
            cells: Vec::new(),
            hazards: Vec::new(),
            total_hazards: 0,
            reads: 0,
            writes: 0,
            accesses: Vec::new(),
        }
    }

    /// Reset for a new block (workers recycle trackers with arenas).
    pub fn reset_for(&mut self, block_id: usize, label: &'static str) {
        self.block_id = block_id;
        self.label = label;
        self.epoch = 0;
        self.touched = false;
        self.cells.clear();
        self.hazards.clear();
        self.total_hazards = 0;
        self.reads = 0;
        self.writes = 0;
        self.accesses.clear();
    }

    /// The tracking mode.
    #[inline]
    pub fn mode(&self) -> HazardMode {
        self.mode
    }

    /// Current barrier epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Conflicts detected so far.
    #[inline]
    pub fn total_hazards(&self) -> u64 {
        self.total_hazards
    }

    /// Advance the barrier epoch (called by `BlockContext::sync`).
    #[inline]
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn cell(&mut self, off: usize) -> &mut Cell {
        if off >= self.cells.len() {
            self.cells.resize(off + 1, Cell::default());
        }
        &mut self.cells[off]
    }

    fn conflict(&mut self, kind: HazardKind, offset: usize, first: u32, second: u32) {
        self.total_hazards += 1;
        let hazard = Hazard {
            kind,
            offset,
            epoch: self.epoch,
            first_lane: first,
            second_lane: second,
        };
        if self.mode == HazardMode::Enforce {
            panic!(
                "shared-memory hazard in `{}` block {}: {hazard}",
                self.label, self.block_id
            );
        }
        if self.hazards.len() < Self::MAX_RECORDED {
            self.hazards.push(hazard);
        }
    }

    /// Tag a read of shared offset `off` by `lane`.
    pub fn read(&mut self, lane: u32, off: usize) {
        self.touched = true;
        self.reads += 1;
        let epoch = self.epoch;
        if self.mode == HazardMode::Trace {
            self.accesses.push(AccessRecord {
                epoch,
                lane,
                offset: off,
                write: false,
            });
        }
        let cell = self.cell(off);
        if let Some((wl, we)) = cell.write {
            if we == epoch && lanes_differ(wl, lane) {
                self.conflict(HazardKind::Raw, off, wl, lane);
            }
        }
        let cell = self.cell(off);
        cell.read = match cell.read {
            Some((rl, re, multi)) if re == epoch => Some((rl, re, multi || lanes_differ(rl, lane))),
            _ => Some((lane, epoch, lane == ALL_LANES)),
        };
    }

    /// Tag a write of shared offset `off` by `lane`.
    pub fn write(&mut self, lane: u32, off: usize) {
        self.touched = true;
        self.writes += 1;
        let epoch = self.epoch;
        if self.mode == HazardMode::Trace {
            self.accesses.push(AccessRecord {
                epoch,
                lane,
                offset: off,
                write: true,
            });
        }
        let cell = *self.cell(off);
        if let Some((wl, we)) = cell.write {
            if we == epoch && lanes_differ(wl, lane) {
                self.conflict(HazardKind::Waw, off, wl, lane);
            }
        }
        if let Some((rl, re, multi)) = cell.read {
            if re == epoch && (multi || lanes_differ(rl, lane)) {
                self.conflict(HazardKind::War, off, rl, lane);
            }
        }
        self.cell(off).write = Some((lane, epoch));
    }

    /// Tag a read every lane performs (e.g. the pivot value).
    #[inline]
    pub fn broadcast_read(&mut self, off: usize) {
        self.read(ALL_LANES, off);
    }

    /// Tag a striped sweep read: element `base + k` by lane `k % threads`.
    pub fn striped_read(&mut self, base: usize, len: usize, threads: u32) {
        let t = threads.max(1);
        for k in 0..len {
            self.read(k as u32 % t, base + k);
        }
    }

    /// Tag a striped sweep write: element `base + k` by lane `k % threads`.
    pub fn striped_write(&mut self, base: usize, len: usize, threads: u32) {
        let t = threads.max(1);
        for k in 0..len {
            self.write(k as u32 % t, base + k);
        }
    }

    /// Tag a contiguous read of `len` elements, all by one owning lane.
    pub fn range_read(&mut self, lane: u32, base: usize, len: usize) {
        for k in 0..len {
            self.read(lane, base + k);
        }
    }

    /// Tag a contiguous write of `len` elements, all by one owning lane.
    pub fn range_write(&mut self, lane: u32, base: usize, len: usize) {
        for k in 0..len {
            self.write(lane, base + k);
        }
    }

    /// Detach the block's report (Record mode; `None` when nothing was
    /// tracked). The tracker stays usable for the next block after
    /// [`HazardTracker::reset_for`].
    pub fn take_report(&mut self) -> Option<HazardReport> {
        if !self.touched {
            return None;
        }
        Some(HazardReport {
            block_id: self.block_id,
            label: self.label,
            epochs: self.epoch + 1,
            reads: self.reads,
            writes: self.writes,
            hazards: std::mem::take(&mut self.hazards),
            total_hazards: self.total_hazards,
            accesses: std::mem::take(&mut self.accesses),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HazardTracker {
        HazardTracker::new(HazardMode::Record)
    }

    #[test]
    fn mode_parsing_and_global_default() {
        assert_eq!(HazardMode::parse("record"), Some(HazardMode::Record));
        assert_eq!(HazardMode::parse("ENFORCE"), Some(HazardMode::Enforce));
        assert_eq!(HazardMode::parse("off"), Some(HazardMode::Off));
        assert_eq!(HazardMode::parse("bogus"), None);
        assert!(!HazardMode::Off.is_on());
        assert!(HazardMode::Record.is_on());
    }

    #[test]
    fn parse_round_trips_every_mode() {
        for mode in [
            HazardMode::Off,
            HazardMode::Record,
            HazardMode::Enforce,
            HazardMode::Trace,
        ] {
            assert_eq!(HazardMode::parse(mode.name()), Some(mode));
            // Case-insensitive on the canonical spelling too.
            assert_eq!(
                HazardMode::parse(&mode.name().to_ascii_uppercase()),
                Some(mode)
            );
        }
        // Numeric and empty aliases.
        assert_eq!(HazardMode::parse("0"), Some(HazardMode::Off));
        assert_eq!(HazardMode::parse("1"), Some(HazardMode::Enforce));
        assert_eq!(HazardMode::parse(""), Some(HazardMode::Off));
        // No trimming, no prefixes: junk is rejected, not defaulted.
        assert_eq!(HazardMode::parse(" record"), None);
        assert_eq!(HazardMode::parse("enforced"), None);
        assert_eq!(HazardMode::parse("2"), None);
    }

    #[test]
    fn trace_mode_exports_footprint() {
        let mut t = HazardTracker::new(HazardMode::Trace);
        t.write(0, 5);
        t.advance_epoch();
        t.broadcast_read(5);
        let rep = t.take_report().unwrap();
        assert_eq!(rep.total_hazards, 0);
        assert_eq!(
            rep.accesses,
            vec![
                AccessRecord {
                    epoch: 0,
                    lane: 0,
                    offset: 5,
                    write: true
                },
                AccessRecord {
                    epoch: 1,
                    lane: ALL_LANES,
                    offset: 5,
                    write: false
                },
            ]
        );
        // Record mode keeps the footprint empty.
        let mut t = tracker();
        t.write(0, 5);
        assert!(t.take_report().unwrap().accesses.is_empty());
    }

    #[test]
    fn trace_mode_still_detects_conflicts() {
        let mut t = HazardTracker::new(HazardMode::Trace);
        t.write(0, 5);
        t.read(1, 5);
        let rep = t.take_report().unwrap();
        assert_eq!(rep.total_hazards, 1);
        assert_eq!(rep.accesses.len(), 2);
    }

    #[test]
    fn same_lane_never_conflicts() {
        let mut t = tracker();
        t.write(3, 10);
        t.read(3, 10);
        t.write(3, 10);
        assert_eq!(t.total_hazards(), 0);
    }

    #[test]
    fn raw_between_lanes_in_one_epoch() {
        let mut t = tracker();
        t.write(0, 5);
        t.read(1, 5);
        assert_eq!(t.total_hazards(), 1);
        let rep = t.take_report().unwrap();
        assert_eq!(rep.hazards[0].kind, HazardKind::Raw);
        assert_eq!(rep.hazards[0].offset, 5);
        assert_eq!(rep.hazards[0].epoch, 0);
        assert_eq!(
            (rep.hazards[0].first_lane, rep.hazards[0].second_lane),
            (0, 1)
        );
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut t = tracker();
        t.write(0, 5);
        t.advance_epoch();
        t.read(1, 5); // RAW candidate, but the write is one epoch older: ordered.
        t.write(2, 5); // WAR against the read above — same epoch, distinct lanes.
        t.advance_epoch();
        t.write(1, 5); // WAW candidate, but the write is one epoch older: ordered.
        assert_eq!(t.total_hazards(), 1, "only the same-epoch read/write pair");
        let rep = t.take_report().unwrap();
        assert_eq!(rep.hazards[0].kind, HazardKind::War);
        assert_eq!(rep.hazards[0].epoch, 1);
        assert_eq!(rep.epochs, 3);
    }

    #[test]
    fn war_and_waw_detection() {
        let mut t = tracker();
        t.read(0, 7);
        t.write(1, 7); // WAR
        t.write(2, 7); // WAW (and WAR against the stale read state)
        let rep = t.take_report().unwrap();
        assert!(rep.hazards.iter().any(|h| h.kind == HazardKind::War));
        assert!(rep.hazards.iter().any(|h| h.kind == HazardKind::Waw));
    }

    #[test]
    fn broadcast_read_conflicts_with_any_writer() {
        let mut t = tracker();
        t.broadcast_read(3);
        t.write(0, 3);
        assert_eq!(t.take_report().unwrap().hazards[0].kind, HazardKind::War);
        // And the other direction: write, then everyone reads.
        let mut t = tracker();
        t.write(0, 3);
        t.broadcast_read(3);
        assert_eq!(t.take_report().unwrap().hazards[0].kind, HazardKind::Raw);
    }

    #[test]
    fn striped_sweeps_are_self_consistent() {
        let mut t = tracker();
        // A write sweep then a read sweep with the same striping touches
        // every element with the same lane: race-free without a barrier.
        t.striped_write(0, 20, 8);
        t.striped_read(0, 20, 8);
        assert_eq!(t.total_hazards(), 0);
        // A shifted read sweep breaks the lane alignment.
        t.striped_read(1, 20, 8);
        assert!(t.total_hazards() > 0);
    }

    #[test]
    fn owner_ranges_do_not_conflict() {
        let mut t = tracker();
        t.range_write(0, 0, 8);
        t.range_read(0, 0, 8);
        t.range_write(1, 8, 8);
        assert_eq!(t.total_hazards(), 0);
        t.range_read(1, 0, 4); // lane 1 reads lane 0's cells
        assert_eq!(t.total_hazards(), 4);
    }

    #[test]
    #[should_panic(expected = "RAW hazard at shared offset 5 in epoch 2")]
    fn enforce_panics_with_location() {
        let mut t = HazardTracker::new(HazardMode::Enforce);
        t.reset_for(9, "fixture");
        t.advance_epoch();
        t.advance_epoch();
        t.write(0, 5);
        t.read(1, 5);
    }

    #[test]
    fn report_counts_and_cap() {
        let mut t = tracker();
        for off in 0..(HazardTracker::MAX_RECORDED + 10) {
            t.write(0, off);
            t.read(1, off);
        }
        let rep = t.take_report().unwrap();
        assert_eq!(rep.hazards.len(), HazardTracker::MAX_RECORDED);
        assert_eq!(rep.total_hazards, (HazardTracker::MAX_RECORDED + 10) as u64);
        assert_eq!(rep.writes, (HazardTracker::MAX_RECORDED + 10) as u64);
    }

    #[test]
    fn untouched_tracker_yields_no_report() {
        let mut t = tracker();
        assert!(t.take_report().is_none());
        t.advance_epoch();
        assert!(t.take_report().is_none());
    }

    #[test]
    fn display_formats() {
        let h = Hazard {
            kind: HazardKind::War,
            offset: 12,
            epoch: 4,
            first_lane: ALL_LANES,
            second_lane: 2,
        };
        let s = h.to_string();
        assert!(s.contains("WAR hazard at shared offset 12 in epoch 4"));
        assert!(s.contains("lane *"));
        assert!(s.contains("lane 2"));
    }
}
