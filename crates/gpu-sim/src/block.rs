//! Block execution context handed to kernel programs.
//!
//! A block program is ordinary Rust operating on its problem data plus a
//! [`BlockContext`]; the context supplies simulated shared memory and the
//! counter-recording API. Thread-level parallelism inside the block is
//! *modeled*, not executed: `par_work(items, cost)` accounts
//! `ceil(items / threads) * cost` cycles on the block's critical path, the
//! same arithmetic a SIMT machine performs when `threads` lanes stripe over
//! `items` elements.

use crate::counters::KernelCounters;
use crate::shared::SharedMem;

/// Per-block execution state.
#[derive(Debug)]
pub struct BlockContext {
    /// Grid-wide block id (one block per batch problem in this workspace).
    pub block_id: usize,
    /// Threads in the block (from the launch configuration).
    pub threads: u32,
    /// Shared-memory lanes serviced per cycle (device LDS width); the
    /// effective parallelism of `smem_work` is `min(threads, lds_lanes)`.
    pub lds_lanes: u32,
    /// Simulated shared memory, sized by the launch configuration.
    pub smem: SharedMem,
    counters: KernelCounters,
}

impl BlockContext {
    /// `f64` lanes per hardware vector assumed by [`BlockContext::vec_work`]
    /// when counting lane sweeps (8 = a 512-bit vector of doubles; the GPU
    /// analogue is a quarter-warp memory transaction). Purely a reporting
    /// granularity — timing uses the striped cycle count, not the width.
    pub const SIMD_WIDTH: u32 = 8;

    /// New context for block `block_id` (LDS width defaults to the thread
    /// count; the engine sets the device value).
    pub fn new(block_id: usize, threads: u32, smem_bytes: usize) -> Self {
        Self::with_lds_lanes(block_id, threads, smem_bytes, threads)
    }

    /// New context with an explicit LDS lane width.
    pub fn with_lds_lanes(
        block_id: usize,
        threads: u32,
        smem_bytes: usize,
        lds_lanes: u32,
    ) -> Self {
        BlockContext {
            block_id,
            threads,
            lds_lanes: lds_lanes.max(1),
            smem: SharedMem::with_bytes(smem_bytes),
            counters: KernelCounters::default(),
        }
    }

    /// Fresh context with this context's geometry (thread count, arena
    /// size, LDS width) but pristine state. Executor workers fork one
    /// prototype each so every thread owns a private arena; a forked
    /// context is indistinguishable from a `reset_for` one, which is
    /// what keeps parallel block results identical to serial.
    pub fn fork_worker(&self) -> BlockContext {
        let smem_bytes = self.smem.capacity() * std::mem::size_of::<f64>();
        let mut ctx = BlockContext::with_lds_lanes(0, self.threads, smem_bytes, self.lds_lanes);
        ctx.smem.set_label(self.smem.label());
        ctx.smem.set_hazard_mode(self.smem.hazard_mode());
        ctx
    }

    /// [`BlockContext::fork_worker`] recycling a previously released arena
    /// buffer (see [`BlockContext::into_arena`]): resident-pool workers
    /// hand their buffer back to the pool between launches, so warm
    /// launches of the same footprint allocate nothing. State is identical
    /// to a plain fork — the buffer is cleared, resized, and zeroed.
    pub fn fork_worker_with_arena(&self, arena: Vec<f64>) -> BlockContext {
        let smem_bytes = self.smem.capacity() * std::mem::size_of::<f64>();
        let mut ctx = BlockContext {
            block_id: 0,
            threads: self.threads,
            lds_lanes: self.lds_lanes,
            smem: SharedMem::with_bytes_reusing(smem_bytes, arena),
            counters: KernelCounters::default(),
        };
        ctx.smem.set_label(self.smem.label());
        ctx.smem.set_hazard_mode(self.smem.hazard_mode());
        ctx
    }

    /// Release this context's arena buffer for later reuse through
    /// [`BlockContext::fork_worker_with_arena`].
    pub fn into_arena(self) -> Vec<f64> {
        self.smem.into_buffer()
    }

    /// Reuse this context for another block (workers recycle arenas).
    pub fn reset_for(&mut self, block_id: usize) {
        self.block_id = block_id;
        self.smem.reset();
        self.smem.assign_block(block_id);
        self.counters = KernelCounters::default();
    }

    /// Record a coalesced global-memory read of `bytes` bytes.
    #[inline]
    pub fn gld(&mut self, bytes: usize) {
        self.counters.global_read += bytes as u64;
    }

    /// Record a coalesced global-memory write of `bytes` bytes.
    #[inline]
    pub fn gst(&mut self, bytes: usize) {
        self.counters.global_write += bytes as u64;
    }

    /// Record data-parallel ALU work: `items` independent operations
    /// striped over the block's threads, each costing `flops_per_item`
    /// flops. Adds `items / threads` dependent cycles (fractional — the
    /// issue-latency floor is carried by the sync/trip counters).
    #[inline]
    pub fn par_work(&mut self, items: usize, flops_per_item: usize) {
        if items == 0 {
            return;
        }
        self.counters.flops += (items * flops_per_item) as u64;
        self.counters.cycles += items as f64 / self.threads as f64;
    }

    /// Record data-parallel work whose operands live in shared memory (the
    /// factorization's column operations, window shifts, RHS caches).
    /// Accumulates `items / threads` shared-element groups, priced by the
    /// device's `work_scale` at timing time.
    #[inline]
    pub fn smem_work(&mut self, items: usize, flops_per_item: usize) {
        if items == 0 {
            return;
        }
        self.counters.flops += (items * flops_per_item) as u64;
        let lanes = self.threads.min(self.lds_lanes) as f64;
        self.counters.smem_elems += items as f64 / lanes;
    }

    /// Record a vectorized sweep over a contiguous batch lane of `lanes`
    /// elements (the batch-innermost loops of the interleaved kernels),
    /// each element costing `flops_per_item` flops.
    ///
    /// Accounts the same `items / threads` critical-path cycles as
    /// [`BlockContext::par_work`] (the lanes stripe over the block's
    /// threads), plus the lane-width bookkeeping: the sweep issues
    /// `ceil(lanes / SIMD_WIDTH)` vectors of [`BlockContext::SIMD_WIDTH`]
    /// slots, so [`KernelCounters::lane_utilization`] exposes how full
    /// those vectors were.
    #[inline]
    pub fn vec_work(&mut self, lanes: usize, flops_per_item: usize) {
        if lanes == 0 {
            return;
        }
        self.counters.flops += (lanes * flops_per_item) as u64;
        self.counters.cycles += lanes as f64 / self.threads as f64;
        self.counters.lane_sweeps += lanes.div_ceil(Self::SIMD_WIDTH as usize) as u64;
        self.counters.lane_elems += lanes as u64;
    }

    /// Record one dependent shared-memory round trip on the critical path
    /// (e.g. reading the pivot value every other thread must wait for).
    #[inline]
    pub fn smem_trip(&mut self) {
        self.counters.smem_trips += 1;
    }

    /// Record a block-wide barrier. Also advances the hazard tracker's
    /// access epoch: tagged shared accesses on opposite sides of a `sync`
    /// are ordered and can never conflict.
    #[inline]
    pub fn sync(&mut self) {
        self.counters.syncs += 1;
        if let Some(t) = self.smem.tracker() {
            t.advance_epoch();
        }
    }

    /// Record raw critical-path cycles (sequential scalar work).
    #[inline]
    pub fn seq_cycles(&mut self, cycles: f64) {
        self.counters.cycles += cycles;
    }

    /// Counters recorded so far (including any hazards the shared-memory
    /// tracker detected for this block).
    #[inline]
    pub fn counters(&self) -> KernelCounters {
        let mut c = self.counters;
        c.hazards = self.smem.hazard_count();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_traffic() {
        let mut ctx = BlockContext::new(3, 32, 1024);
        ctx.gld(256);
        ctx.gst(128);
        let c = ctx.counters();
        assert_eq!(c.global_read, 256);
        assert_eq!(c.global_write, 128);
        assert_eq!(ctx.block_id, 3);
    }

    #[test]
    fn par_work_stripes_over_threads() {
        let mut ctx = BlockContext::new(0, 8, 0);
        ctx.par_work(20, 2); // 20/8 = 2.5 cycles, 40 flops
        let c = ctx.counters();
        assert_eq!(c.flops, 40);
        assert_eq!(c.cycles, 2.5);
        ctx.par_work(0, 100); // no-op
        assert_eq!(ctx.counters().cycles, 2.5);
    }

    #[test]
    fn smem_work_capped_by_lds_lanes() {
        let mut ctx = BlockContext::with_lds_lanes(0, 64, 0, 8);
        ctx.smem_work(32, 1);
        let c = ctx.counters();
        // 64 threads but only 8 LDS lanes: 32 / 8 = 4 element groups.
        assert_eq!(c.smem_elems, 4.0);
        assert_eq!(c.flops, 32);
        // Fewer threads than lanes: divisor is the thread count.
        let mut ctx = BlockContext::with_lds_lanes(0, 4, 0, 8);
        ctx.smem_work(32, 0);
        assert_eq!(ctx.counters().smem_elems, 8.0);
    }

    #[test]
    fn vec_work_counts_lane_sweeps() {
        let mut ctx = BlockContext::new(0, 16, 0);
        // 20 lanes, width 8: 3 vectors (8 + 8 + 4), 20/16 = 1.25 cycles.
        ctx.vec_work(20, 2);
        let c = ctx.counters();
        assert_eq!(c.lane_sweeps, 3);
        assert_eq!(c.lane_elems, 20);
        assert_eq!(c.flops, 40);
        assert_eq!(c.cycles, 1.25);
        assert_eq!(
            c.lane_utilization(BlockContext::SIMD_WIDTH),
            Some(20.0 / 24.0)
        );
        ctx.vec_work(0, 5); // no-op
        assert_eq!(ctx.counters().lane_sweeps, 3);
    }

    #[test]
    fn sync_and_trips() {
        let mut ctx = BlockContext::new(0, 8, 0);
        ctx.sync();
        ctx.sync();
        ctx.smem_trip();
        ctx.seq_cycles(12.5);
        let c = ctx.counters();
        assert_eq!(c.syncs, 2);
        assert_eq!(c.smem_trips, 1);
        assert_eq!(c.cycles, 12.5);
    }

    #[test]
    fn fork_worker_copies_geometry_not_state() {
        let mut ctx = BlockContext::with_lds_lanes(5, 16, 256, 8);
        ctx.gld(64);
        ctx.smem.alloc(4);
        let fresh = ctx.fork_worker();
        assert_eq!(fresh.threads, 16);
        assert_eq!(fresh.lds_lanes, 8);
        assert_eq!(fresh.smem.capacity(), ctx.smem.capacity());
        assert_eq!(fresh.smem.used(), 0);
        assert_eq!(fresh.counters(), KernelCounters::default());
    }

    #[test]
    fn fork_with_arena_matches_plain_fork() {
        let mut proto = BlockContext::with_lds_lanes(5, 16, 256, 8);
        proto.smem.set_label("arena_probe");
        // A dirty recycled buffer must come back zeroed and right-sized.
        let dirty = vec![3.5; 7];
        let forked = proto.fork_worker_with_arena(dirty);
        let plain = proto.fork_worker();
        assert_eq!(forked.smem.capacity(), plain.smem.capacity());
        assert_eq!(forked.smem.used(), 0);
        assert_eq!(forked.smem.label(), "arena_probe");
        assert_eq!(forked.counters(), KernelCounters::default());
        // Round trip: a big-enough recycled buffer keeps its allocation.
        let buf = forked.into_arena();
        assert_eq!(buf.len(), 256 / 8);
        assert!(buf.iter().all(|&v| v == 0.0));
        let again = proto.fork_worker_with_arena(buf);
        assert_eq!(again.smem.capacity(), 256 / 8);
    }

    #[test]
    fn sync_advances_hazard_epoch_and_fork_inherits_mode() {
        use crate::hazard::HazardMode;
        let mut ctx = BlockContext::new(0, 8, 64);
        ctx.smem.set_label("probe");
        ctx.smem.set_hazard_mode(HazardMode::Record);
        assert_eq!(ctx.smem.tracker().unwrap().epoch(), 0);
        ctx.sync();
        ctx.sync();
        assert_eq!(ctx.smem.tracker().unwrap().epoch(), 2);
        // Cross-epoch accesses by different lanes: ordered, no hazard.
        ctx.smem.tracker().unwrap().write(0, 1);
        ctx.sync();
        ctx.smem.tracker().unwrap().read(1, 1);
        assert_eq!(ctx.counters().hazards, 0);
        // Same-epoch accesses conflict and surface through counters().
        ctx.smem.tracker().unwrap().write(2, 1);
        assert_eq!(ctx.counters().hazards, 1);
        let fresh = ctx.fork_worker();
        assert_eq!(fresh.smem.hazard_mode(), HazardMode::Record);
        assert_eq!(fresh.smem.label(), "probe");
        assert_eq!(fresh.smem.hazard_count(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ctx = BlockContext::new(0, 8, 64);
        ctx.gld(100);
        let off = ctx.smem.alloc(4);
        ctx.smem.slice_mut(off, 4)[0] = 9.0;
        ctx.reset_for(7);
        assert_eq!(ctx.block_id, 7);
        assert_eq!(ctx.counters(), KernelCounters::default());
        assert_eq!(ctx.smem.used(), 0);
    }
}
