//! Persistent resident engine: a long-lived worker pool, arena reuse, and
//! megabatch pricing.
//!
//! The per-launch executor ([`crate::executor`]) re-spawns scoped OS
//! threads for every parallel launch — the host-side analogue of paying
//! `cudaLaunchKernel` plus driver setup on every kernel. The resident
//! engine is the persistent-kernel counterpart:
//!
//! - a [`ResidentPool`] spawns its workers **once** and parks them on
//!   channels between launches; a launch broadcasts one lifetime-erased
//!   job closure and blocks on a completion latch, so the per-launch host
//!   cost is a channel send/recv, not a `thread::spawn`;
//! - workers reuse their shared-memory arena buffers across launches
//!   (handed back through the pool), so warm launches allocate nothing;
//! - the timing model prices warm submissions with the device's
//!   `warm_launch_overhead_s` instead of the cold `launch_overhead_s`,
//!   and the one-time pool cost is the device's `engine_spinup_s`,
//!   charged once per pool lifetime by the layer that owns the pool
//!   (serve backend, bench) — never folded into per-launch reports, so
//!   launch times stay invariant across [`crate::executor::ParallelPolicy`];
//! - a [`MegabatchQueue`] coalesces the launches of consecutive flushes:
//!   a group submitted back-to-back through the persistent queue pays the
//!   warm overhead once instead of once per launch.
//!
//! Determinism: the resident executor path claims chunks through an atomic
//! counter instead of work-stealing deques, but chunk geometry, per-chunk
//! merge order, and the final ascending-chunk reduction are identical to
//! the per-launch path, so results, counters (except the provenance field
//! [`crate::counters::KernelCounters::threads_spawned`]) and hazard
//! reports are bitwise-identical across engine modes and policies.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::timing::SimTime;

/// How the engine sources host threads and prices launch overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// Spawn scoped worker threads for each launch and pay the cold
    /// `launch_overhead_s` (the legacy behavior, and the default).
    #[default]
    PerLaunch,
    /// Submit through a persistent [`ResidentPool`] and pay the warm
    /// `warm_launch_overhead_s`; the pool's threads are spawned once per
    /// pool lifetime at an `engine_spinup_s` one-time cost.
    Resident,
}

impl EngineMode {
    /// Fixed overhead one launch pays on `dev` under this mode.
    #[inline]
    #[must_use]
    pub fn launch_overhead_s(self, dev: &DeviceSpec) -> f64 {
        match self {
            EngineMode::PerLaunch => dev.launch_overhead_s,
            EngineMode::Resident => dev.warm_launch_overhead_s,
        }
    }

    /// One-time engine cost on `dev`: zero for [`EngineMode::PerLaunch`]
    /// (there is nothing persistent to build), the pool spin-up for
    /// [`EngineMode::Resident`].
    #[inline]
    #[must_use]
    pub fn spinup(self, dev: &DeviceSpec) -> SimTime {
        match self {
            EngineMode::PerLaunch => SimTime::ZERO,
            EngineMode::Resident => SimTime(dev.engine_spinup_s),
        }
    }
}

thread_local! {
    static AMBIENT: std::cell::Cell<EngineMode> =
        const { std::cell::Cell::new(EngineMode::PerLaunch) };
}

/// The calling thread's ambient engine mode: the default a fresh
/// [`crate::engine::LaunchConfig`] picks up. [`EngineMode::PerLaunch`]
/// unless an [`EngineScope`] is open.
#[inline]
pub fn ambient_engine() -> EngineMode {
    AMBIENT.with(std::cell::Cell::get)
}

/// RAII scope setting the calling thread's ambient engine mode; the
/// previous mode is restored on drop (also during unwinding).
///
/// This is how an owner of a resident engine (the serve backend, a bench
/// harness) threads [`EngineMode::Resident`] through deep call stacks —
/// every `LaunchConfig::new` below the scope defaults to the scoped mode,
/// while explicit [`crate::engine::LaunchConfig::with_engine`] overrides
/// still win. Results are bitwise-identical across modes; only pricing
/// and thread provenance change.
#[must_use = "the scope ends when this guard drops"]
#[derive(Debug)]
pub struct EngineScope {
    prev: EngineMode,
}

impl EngineScope {
    /// Open a scope with the given mode.
    pub fn enter(mode: EngineMode) -> Self {
        let prev = AMBIENT.with(|c| {
            let prev = c.get();
            c.set(mode);
            prev
        });
        EngineScope { prev }
    }
}

impl Drop for EngineScope {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

/// Run `f` with the ambient engine mode set to `mode` (see
/// [`EngineScope`]).
pub fn with_engine_mode<R>(mode: EngineMode, f: impl FnOnce() -> R) -> R {
    let _scope = EngineScope::enter(mode);
    f()
}

/// Lifetime-erased pointer to a launch's job closure.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is dereferenced only between the broadcast in
// [`ResidentPool::run`] and that call's completion latch; `run` borrows
// the closure for its whole duration, so the pointee is live for every
// dereference, and `Sync` on the closure makes the shared concurrent
// calls sound.
unsafe impl Send for JobPtr {}

struct PoolInner {
    job_txs: Vec<Sender<JobPtr>>,
    done_rx: Receiver<bool>,
    /// Kept so the worker threads are owned, not leaked handles; dropping
    /// the senders above is what actually terminates the loops.
    _handles: Vec<JoinHandle<()>>,
}

/// A persistent pool of parked worker threads.
///
/// Workers are spawned once in [`ResidentPool::new`] and live until the
/// pool is dropped; [`ResidentPool::run`] broadcasts one job closure to
/// every worker and returns when all of them finish. The executor drives
/// this from [`crate::engine::launch`] when the launch configuration
/// selects [`EngineMode::Resident`].
pub struct ResidentPool {
    inner: Mutex<PoolInner>,
    workers: usize,
    /// Threads spawned and not yet harvested into a launch report: the
    /// pool size right after construction, zero after the first
    /// [`ResidentPool::take_fresh`].
    fresh: AtomicU64,
    /// Per-worker cached shared-memory arena buffers, reused across
    /// launches so warm launches allocate nothing.
    arenas: Vec<Mutex<Vec<f64>>>,
}

impl std::fmt::Debug for ResidentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ResidentPool {
    /// Spawn `workers` (at least 1) parked worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (done_tx, done_rx) = channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let (tx, rx) = channel::<JobPtr>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gbatch-resident-{idx}"))
                .spawn(move || worker_loop(idx, rx, done))
                .expect("spawn resident worker");
            job_txs.push(tx);
            handles.push(handle);
        }
        ResidentPool {
            inner: Mutex::new(PoolInner {
                job_txs,
                done_rx,
                _handles: handles,
            }),
            workers,
            fresh: AtomicU64::new(workers as u64),
            arenas: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of persistent worker threads.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Harvest the threads spawned since the last harvest: the pool size
    /// on the first call after construction, `0` afterwards. The executor
    /// folds this into the launch aggregate's `threads_spawned`, which is
    /// how tests prove Resident mode spawns exactly once per pool
    /// lifetime.
    pub fn take_fresh(&self) -> u64 {
        self.fresh.swap(0, Ordering::Relaxed)
    }

    /// Run `job(worker_index)` on every worker concurrently; returns when
    /// all workers finished. Launches through one pool are serialized (the
    /// broadcast holds the pool lock), matching a single hardware queue.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let inner = self.inner.lock();
        // SAFETY: pure lifetime erasure (the pointee type is unchanged);
        // the `JobPtr` invariant — dereferences happen only while this
        // call's completion latch below holds the borrow live — is what
        // makes the erased lifetime sound.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job)
        });
        for tx in &inner.job_txs {
            tx.send(ptr).expect("resident worker hung up");
        }
        let mut crashed = false;
        for _ in 0..self.workers {
            crashed |= inner.done_rx.recv().expect("resident worker hung up");
        }
        // Block-program panics are caught per block inside the job (see
        // `executor::run_chunk`); a worker-level panic is an executor bug,
        // mirroring the per-launch scope's expectation.
        assert!(
            !crashed,
            "resident executor worker crashed outside a block program"
        );
    }

    /// Take worker `idx`'s cached arena buffer (empty on first use).
    pub(crate) fn take_arena(&self, idx: usize) -> Vec<f64> {
        std::mem::take(&mut *self.arenas[idx].lock())
    }

    /// Return worker `idx`'s arena buffer for reuse by the next launch.
    pub(crate) fn store_arena(&self, idx: usize, buf: Vec<f64>) {
        *self.arenas[idx].lock() = buf;
    }
}

fn worker_loop(idx: usize, rx: Receiver<JobPtr>, done: Sender<bool>) {
    while let Ok(JobPtr(ptr)) = rx.recv() {
        // SAFETY: see `JobPtr` — the broadcaster blocks on the completion
        // latch below, keeping the closure borrow live across this call.
        let job = unsafe { &*ptr };
        let crashed = catch_unwind(AssertUnwindSafe(|| job(idx))).is_err();
        if done.send(crashed).is_err() {
            break;
        }
    }
}

static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ResidentPool>>>> = OnceLock::new();

/// Process-wide pool registry, keyed by worker count. Launch paths that
/// only carry a [`crate::engine::LaunchConfig`] (no pool handle) resolve
/// their pool here, so every Resident launch at a given width shares one
/// pool for the process lifetime — "threads spawned once per device
/// group".
pub fn global_pool(workers: usize) -> Arc<ResidentPool> {
    let map = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut m = map.lock();
    m.entry(workers.max(1))
        .or_insert_with(|| Arc::new(ResidentPool::new(workers)))
        .clone()
}

/// Megabatch launch queue: prices groups of consecutive launches submitted
/// back-to-back through a resident engine.
///
/// Each individual [`crate::engine::LaunchReport`] under
/// [`EngineMode::Resident`] already pays the warm overhead; when a flush
/// issues several launches consecutively (pack / factor / solve / unpack,
/// or several shape buckets), the persistent queue overlaps the doorbell
/// of launch `k+1` with the tail of launch `k`, so the *group* pays the
/// warm overhead once. The queue tracks how much overhead coalescing
/// recovered, for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct MegabatchQueue {
    groups: u64,
    launches: u64,
    saved_s: f64,
}

impl MegabatchQueue {
    /// Fresh queue with zeroed statistics.
    pub fn new() -> Self {
        MegabatchQueue::default()
    }

    /// Price a group of `launches` consecutive warm launches on `dev`
    /// whose summed individual times are `total` (each summand including
    /// one warm overhead): the coalesced group keeps one warm overhead and
    /// recovers the other `launches - 1`.
    pub fn coalesce(&mut self, total: SimTime, launches: u64, dev: &DeviceSpec) -> SimTime {
        if launches == 0 {
            return SimTime::ZERO;
        }
        let saved = (launches - 1) as f64 * dev.warm_launch_overhead_s;
        self.groups += 1;
        self.launches += launches;
        self.saved_s += saved;
        SimTime((total.secs() - saved).max(dev.warm_launch_overhead_s))
    }

    /// Groups coalesced so far.
    #[inline]
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Total launches across all groups.
    #[inline]
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Launch overhead recovered by coalescing.
    #[inline]
    pub fn saved(&self) -> SimTime {
        SimTime(self.saved_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_jobs_on_every_worker() {
        let pool = ResidentPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(&|idx| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << idx, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
        // A second launch reuses the same threads.
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn fresh_threads_reported_once() {
        let pool = ResidentPool::new(3);
        assert_eq!(pool.take_fresh(), 3);
        assert_eq!(pool.take_fresh(), 0);
        pool.run(&|_| {});
        assert_eq!(pool.take_fresh(), 0, "warm launches spawn nothing");
    }

    #[test]
    fn arena_cache_round_trips() {
        let pool = ResidentPool::new(2);
        assert!(pool.take_arena(0).is_empty());
        pool.store_arena(0, vec![1.0; 128]);
        let buf = pool.take_arena(0);
        assert_eq!(buf.len(), 128);
        assert!(pool.take_arena(0).is_empty(), "taken, not cloned");
        assert!(pool.take_arena(1).is_empty(), "slots are per-worker");
    }

    #[test]
    fn global_registry_shares_pools_by_width() {
        let a = global_pool(3);
        let b = global_pool(3);
        assert!(Arc::ptr_eq(&a, &b), "same width => same pool");
        assert_eq!(a.workers(), 3);
        let c = global_pool(0);
        assert_eq!(c.workers(), 1, "zero clamps to one worker");
    }

    #[test]
    fn engine_mode_overheads() {
        let dev = DeviceSpec::test_device();
        assert_eq!(
            EngineMode::PerLaunch.launch_overhead_s(&dev),
            dev.launch_overhead_s
        );
        assert_eq!(
            EngineMode::Resident.launch_overhead_s(&dev),
            dev.warm_launch_overhead_s
        );
        assert_eq!(EngineMode::PerLaunch.spinup(&dev), SimTime::ZERO);
        assert_eq!(
            EngineMode::Resident.spinup(&dev).secs(),
            dev.engine_spinup_s
        );
        assert_eq!(EngineMode::default(), EngineMode::PerLaunch);
    }

    #[test]
    fn megabatch_coalesces_all_but_one_overhead() {
        let dev = DeviceSpec::test_device();
        let warm = dev.warm_launch_overhead_s;
        let mut q = MegabatchQueue::new();
        // Four launches of 2 us body each: 4 * (warm + 2e-6) summed.
        let total = SimTime(4.0 * (warm + 2.0e-6));
        let t = q.coalesce(total, 4, &dev);
        assert!((t.secs() - (warm + 8.0e-6)).abs() < 1e-18);
        assert_eq!(q.groups(), 1);
        assert_eq!(q.launches(), 4);
        assert!((q.saved().secs() - 3.0 * warm).abs() < 1e-18);
        // Degenerate groups.
        assert_eq!(q.coalesce(SimTime::ZERO, 0, &dev), SimTime::ZERO);
        let one = q.coalesce(SimTime(warm + 1.0e-6), 1, &dev);
        assert!((one.secs() - (warm + 1.0e-6)).abs() < 1e-18);
        // Never prices below one warm overhead.
        let floor = q.coalesce(SimTime(2.0 * warm), 8, &dev);
        assert_eq!(floor.secs(), warm);
    }

    #[test]
    fn engine_scope_sets_and_restores_ambient_mode() {
        assert_eq!(ambient_engine(), EngineMode::PerLaunch);
        let inner = with_engine_mode(EngineMode::Resident, || {
            assert_eq!(ambient_engine(), EngineMode::Resident);
            // Nesting restores the *enclosing* mode.
            with_engine_mode(EngineMode::PerLaunch, ambient_engine)
        });
        assert_eq!(inner, EngineMode::PerLaunch);
        assert_eq!(ambient_engine(), EngineMode::PerLaunch);
        let caught = catch_unwind(|| {
            with_engine_mode(EngineMode::Resident, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(ambient_engine(), EngineMode::PerLaunch, "restored on panic");
    }

    #[test]
    fn pool_survives_job_panics() {
        let pool = ResidentPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|idx| {
                if idx == 0 {
                    panic!("injected worker failure");
                }
            });
        }));
        assert!(caught.is_err(), "worker crash must surface");
        // The pool still works afterwards: workers stay parked, not dead.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
