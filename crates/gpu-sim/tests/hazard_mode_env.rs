//! `GBATCH_HAZARD` environment handling for the process-wide default
//! hazard mode. The cached global is process-wide state, so every scenario
//! runs inside one test function (integration tests get their own process,
//! but sibling `#[test]`s would still share the cache and the environment).

use gbatch_gpu_sim::hazard::{global_mode, reset_global_mode_for_tests, set_global_mode};
use gbatch_gpu_sim::HazardMode;

fn with_env(value: Option<&str>, f: impl FnOnce()) {
    reset_global_mode_for_tests();
    match value {
        Some(v) => std::env::set_var("GBATCH_HAZARD", v),
        None => std::env::remove_var("GBATCH_HAZARD"),
    }
    f();
    std::env::remove_var("GBATCH_HAZARD");
    reset_global_mode_for_tests();
}

#[test]
fn env_variable_selects_global_mode() {
    // Unset: Off.
    with_env(None, || assert_eq!(global_mode(), HazardMode::Off));

    // Every canonical name, lowercase and shouty.
    for (value, want) in [
        ("off", HazardMode::Off),
        ("record", HazardMode::Record),
        ("enforce", HazardMode::Enforce),
        ("trace", HazardMode::Trace),
        ("RECORD", HazardMode::Record),
        ("Enforce", HazardMode::Enforce),
        ("TRACE", HazardMode::Trace),
        // Numeric and empty aliases.
        ("0", HazardMode::Off),
        ("1", HazardMode::Enforce),
        ("", HazardMode::Off),
    ] {
        with_env(Some(value), || {
            assert_eq!(global_mode(), want, "GBATCH_HAZARD={value:?}");
        });
    }

    // Invalid values fall back to Off instead of panicking or sticking.
    for junk in ["bogus", "2", " record", "enforced", "on"] {
        with_env(Some(junk), || {
            assert_eq!(global_mode(), HazardMode::Off, "GBATCH_HAZARD={junk:?}");
        });
    }

    // The first read caches: a later env change is not picked up...
    with_env(Some("record"), || {
        assert_eq!(global_mode(), HazardMode::Record);
        std::env::set_var("GBATCH_HAZARD", "enforce");
        assert_eq!(global_mode(), HazardMode::Record);
        // ...but an explicit set_global_mode always wins over the env.
        set_global_mode(HazardMode::Enforce);
        assert_eq!(global_mode(), HazardMode::Enforce);
        set_global_mode(HazardMode::Off);
        assert_eq!(global_mode(), HazardMode::Off);
    });
}
