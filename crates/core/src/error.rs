//! Error types for band routines.
//!
//! Argument errors map to LAPACK's `info < 0` convention; numerical
//! singularity during factorization is *not* an error in LAPACK (the
//! factorization completes with a zero pivot recorded), so it is reported
//! through the `info`/[`crate::batch::InfoArray`] channel instead.

use std::fmt;

/// Errors raised by the safe, high-level band API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BandError {
    /// A dimension argument is invalid (negative sizes cannot be expressed
    /// in Rust, but inconsistent `m`/`n`/`kl`/`ku` combinations can).
    BadDimension {
        /// Name of the offending argument.
        arg: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The leading dimension of the band array is too small for the
    /// requested operation (`ldab >= 2*kl + ku + 1` for factorization,
    /// `ldab >= kl + ku + 1` for matrix-only storage).
    LdabTooSmall {
        /// Provided leading dimension.
        ldab: usize,
        /// Minimum required leading dimension.
        required: usize,
    },
    /// A buffer passed to a routine is shorter than the layout requires.
    BufferTooSmall {
        /// Name of the buffer.
        arg: &'static str,
        /// Provided length.
        len: usize,
        /// Required length.
        required: usize,
    },
    /// Batch-uniformity violation: two batch containers disagree on the
    /// number of problems.
    BatchMismatch {
        /// Expected batch count.
        expected: usize,
        /// Found batch count.
        found: usize,
    },
    /// An index (matrix id, column, right-hand side) is out of range.
    IndexOutOfRange {
        /// Name of the index.
        arg: &'static str,
        /// Provided value.
        index: usize,
        /// Exclusive upper bound.
        bound: usize,
    },
}

impl fmt::Display for BandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandError::BadDimension { arg, constraint } => {
                write!(f, "invalid dimension `{arg}`: requires {constraint}")
            }
            BandError::LdabTooSmall { ldab, required } => {
                write!(f, "ldab = {ldab} too small, need at least {required}")
            }
            BandError::BufferTooSmall { arg, len, required } => {
                write!(f, "buffer `{arg}` has length {len}, need {required}")
            }
            BandError::BatchMismatch { expected, found } => {
                write!(f, "batch size mismatch: expected {expected}, found {found}")
            }
            BandError::IndexOutOfRange { arg, index, bound } => {
                write!(f, "index `{arg}` = {index} out of range (< {bound})")
            }
        }
    }
}

impl std::error::Error for BandError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, BandError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BandError::LdabTooSmall {
            ldab: 3,
            required: 8,
        };
        assert_eq!(e.to_string(), "ldab = 3 too small, need at least 8");
        let e = BandError::BadDimension {
            arg: "kl",
            constraint: "kl < m",
        };
        assert!(e.to_string().contains("kl"));
        let e = BandError::BatchMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = BandError::IndexOutOfRange {
            arg: "j",
            index: 9,
            bound: 9,
        };
        assert!(e.to_string().contains("out of range"));
        let e = BandError::BufferTooSmall {
            arg: "ab",
            len: 1,
            required: 2,
        };
        assert!(e.to_string().contains("`ab`"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = BandError::BatchMismatch {
            expected: 1,
            found: 2,
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
