//! Non-uniform (variable) batches: per-matrix sizes **and** bandwidths.
//!
//! The paper lists this as future work ("adding support for non-uniform
//! batches of different sizes and/or different bandwidths", Section 9);
//! these containers provide the storage side: each matrix carries its own
//! [`BandLayout`], packed back to back in one contiguous buffer, with
//! per-matrix pivot vectors and RHS blocks laid out the same way.

use crate::band::{BandMatrixMut, BandMatrixRef};
use crate::error::{BandError, Result};
use crate::layout::BandLayout;

/// A batch of band matrices with heterogeneous layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct VarBandBatch {
    layouts: Vec<BandLayout>,
    offsets: Vec<usize>, // per-matrix start in `data`; last entry = total
    data: Vec<f64>,
}

impl VarBandBatch {
    /// Zero-initialized batch from per-matrix layouts.
    pub fn zeros(layouts: Vec<BandLayout>) -> Result<Self> {
        if layouts.is_empty() {
            return Err(BandError::BadDimension {
                arg: "layouts",
                constraint: "at least one",
            });
        }
        let mut offsets = Vec::with_capacity(layouts.len() + 1);
        let mut total = 0usize;
        for l in &layouts {
            offsets.push(total);
            total += l.len();
        }
        offsets.push(total);
        Ok(VarBandBatch {
            layouts,
            offsets,
            data: vec![0.0; total],
        })
    }

    /// Build from layouts plus a fill closure per matrix.
    pub fn from_fn(
        layouts: Vec<BandLayout>,
        mut fill: impl FnMut(usize, &mut BandMatrixMut<'_>),
    ) -> Result<Self> {
        let mut b = Self::zeros(layouts)?;
        for id in 0..b.batch() {
            let mut m = b.matrix_mut(id);
            fill(id, &mut m);
        }
        Ok(b)
    }

    /// Number of matrices.
    #[inline]
    pub fn batch(&self) -> usize {
        self.layouts.len()
    }

    /// Layout of matrix `id`.
    #[inline]
    pub fn layout(&self, id: usize) -> BandLayout {
        self.layouts[id]
    }

    /// All layouts.
    #[inline]
    pub fn layouts(&self) -> &[BandLayout] {
        &self.layouts
    }

    /// Read-only view of matrix `id`.
    pub fn matrix(&self, id: usize) -> BandMatrixRef<'_> {
        let (s, e) = (self.offsets[id], self.offsets[id + 1]);
        BandMatrixRef {
            layout: self.layouts[id],
            data: &self.data[s..e],
        }
    }

    /// Mutable view of matrix `id`.
    pub fn matrix_mut(&mut self, id: usize) -> BandMatrixMut<'_> {
        let (s, e) = (self.offsets[id], self.offsets[id + 1]);
        BandMatrixMut {
            layout: self.layouts[id],
            data: &mut self.data[s..e],
        }
    }

    /// Iterate over `(layout, band array)` pairs mutably — the non-uniform
    /// analogue of the `double**` batch view.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BandLayout, &mut [f64])> {
        // Split the buffer along the offsets.
        let mut rest: &mut [f64] = &mut self.data;
        let mut out = Vec::with_capacity(self.layouts.len());
        let mut consumed = 0usize;
        for (id, l) in self.layouts.iter().enumerate() {
            let start = self.offsets[id] - consumed;
            debug_assert_eq!(start, 0);
            let (chunk, tail) = rest.split_at_mut(l.len());
            consumed += l.len();
            out.push((*l, chunk));
            rest = tail;
        }
        out.into_iter()
    }

    /// Largest matrix order in the batch.
    pub fn max_n(&self) -> usize {
        self.layouts.iter().map(|l| l.n).max().unwrap_or(0)
    }

    /// Largest `kl` in the batch.
    pub fn max_kl(&self) -> usize {
        self.layouts.iter().map(|l| l.kl).max().unwrap_or(0)
    }
}

/// Per-matrix pivot vectors for a non-uniform batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarPivots {
    offsets: Vec<usize>,
    data: Vec<i32>,
}

impl VarPivots {
    /// Pivot storage matching a [`VarBandBatch`].
    pub fn for_batch(b: &VarBandBatch) -> Self {
        let mut offsets = Vec::with_capacity(b.batch() + 1);
        let mut total = 0usize;
        for l in b.layouts() {
            offsets.push(total);
            total += l.m.min(l.n);
        }
        offsets.push(total);
        VarPivots {
            offsets,
            data: vec![0; total],
        }
    }

    /// Pivot vector of matrix `id`.
    pub fn pivots(&self, id: usize) -> &[i32] {
        &self.data[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Mutable pivot vector of matrix `id`.
    pub fn pivots_mut(&mut self, id: usize) -> &mut [i32] {
        let (s, e) = (self.offsets[id], self.offsets[id + 1]);
        &mut self.data[s..e]
    }

    /// Mutable iterator over per-matrix pivot vectors.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut [i32]> {
        let offsets = self.offsets.clone();
        let mut rest: &mut [i32] = &mut self.data;
        let mut out = Vec::with_capacity(offsets.len() - 1);
        for w in offsets.windows(2) {
            let (chunk, tail) = rest.split_at_mut(w[1] - w[0]);
            out.push(chunk);
            rest = tail;
        }
        out.into_iter()
    }
}

/// Per-matrix RHS blocks (`n_i x nrhs`, column-major, `ldb = n_i`) for a
/// non-uniform batch; `nrhs` is shared across the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRhs {
    ns: Vec<usize>,
    offsets: Vec<usize>,
    nrhs: usize,
    data: Vec<f64>,
}

impl VarRhs {
    /// Zero RHS blocks matching a batch.
    pub fn zeros(b: &VarBandBatch, nrhs: usize) -> Result<Self> {
        if nrhs == 0 {
            return Err(BandError::BadDimension {
                arg: "nrhs",
                constraint: "nrhs > 0",
            });
        }
        let ns: Vec<usize> = b.layouts().iter().map(|l| l.n).collect();
        let mut offsets = Vec::with_capacity(ns.len() + 1);
        let mut total = 0usize;
        for &n in &ns {
            offsets.push(total);
            total += n * nrhs;
        }
        offsets.push(total);
        Ok(VarRhs {
            ns,
            offsets,
            nrhs,
            data: vec![0.0; total],
        })
    }

    /// Fill from a closure `value(id, row, col)`.
    pub fn from_fn(
        b: &VarBandBatch,
        nrhs: usize,
        mut value: impl FnMut(usize, usize, usize) -> f64,
    ) -> Result<Self> {
        let mut r = Self::zeros(b, nrhs)?;
        for id in 0..r.ns.len() {
            let n = r.ns[id];
            for c in 0..nrhs {
                for i in 0..n {
                    let v = value(id, i, c);
                    r.block_mut(id)[c * n + i] = v;
                }
            }
        }
        Ok(r)
    }

    /// Number of right-hand sides (shared).
    #[inline]
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Order of system `id`.
    #[inline]
    pub fn n(&self, id: usize) -> usize {
        self.ns[id]
    }

    /// RHS block of matrix `id` (`n_i x nrhs`).
    pub fn block(&self, id: usize) -> &[f64] {
        &self.data[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Mutable RHS block of matrix `id`.
    pub fn block_mut(&mut self, id: usize) -> &mut [f64] {
        let (s, e) = (self.offsets[id], self.offsets[id + 1]);
        &mut self.data[s..e]
    }

    /// Mutable iterator over `(n_i, block)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut [f64])> {
        let ns = self.ns.clone();
        let offsets = self.offsets.clone();
        let mut rest: &mut [f64] = &mut self.data;
        let mut out = Vec::with_capacity(ns.len());
        for (id, &n) in ns.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(offsets[id + 1] - offsets[id]);
            out.push((n, chunk));
            rest = tail;
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_layouts() -> Vec<BandLayout> {
        vec![
            BandLayout::factor(8, 8, 1, 1).unwrap(),
            BandLayout::factor(20, 20, 2, 3).unwrap(),
            BandLayout::factor(5, 5, 0, 2).unwrap(),
        ]
    }

    #[test]
    fn per_matrix_layouts_and_isolation() {
        let mut b = VarBandBatch::zeros(mixed_layouts()).unwrap();
        assert_eq!(b.batch(), 3);
        assert_eq!(b.layout(1).kl, 2);
        b.matrix_mut(1).set(3, 2, 7.0);
        assert_eq!(b.matrix(1).get(3, 2), 7.0);
        assert_eq!(b.matrix(0).get(3, 2), 0.0);
        assert_eq!(b.max_n(), 20);
        assert_eq!(b.max_kl(), 2);
    }

    #[test]
    fn from_fn_sees_correct_layout() {
        let b = VarBandBatch::from_fn(mixed_layouts(), |id, m| {
            let n = m.layout.n;
            for j in 0..n {
                m.set(j, j, (id + 1) as f64);
            }
        })
        .unwrap();
        assert_eq!(b.matrix(0).get(7, 7), 1.0);
        assert_eq!(b.matrix(1).get(19, 19), 2.0);
        assert_eq!(b.matrix(2).get(4, 4), 3.0);
    }

    #[test]
    fn iter_mut_yields_disjoint_chunks() {
        let mut b = VarBandBatch::zeros(mixed_layouts()).unwrap();
        for (l, chunk) in b.iter_mut() {
            assert_eq!(chunk.len(), l.len());
            chunk[0] = l.n as f64;
        }
        assert_eq!(b.matrix(0).data[0], 8.0);
        assert_eq!(b.matrix(1).data[0], 20.0);
    }

    #[test]
    fn pivots_follow_matrix_sizes() {
        let b = VarBandBatch::zeros(mixed_layouts()).unwrap();
        let mut p = VarPivots::for_batch(&b);
        assert_eq!(p.pivots(0).len(), 8);
        assert_eq!(p.pivots(1).len(), 20);
        assert_eq!(p.pivots(2).len(), 5);
        p.pivots_mut(2)[4] = 9;
        assert_eq!(p.pivots(2)[4], 9);
        assert_eq!(p.iter_mut().count(), 3);
    }

    #[test]
    fn rhs_blocks_follow_matrix_sizes() {
        let b = VarBandBatch::zeros(mixed_layouts()).unwrap();
        let r = VarRhs::from_fn(&b, 2, |id, i, c| (id * 100 + c * 10 + i) as f64).unwrap();
        assert_eq!(r.block(0).len(), 16);
        assert_eq!(r.block(1).len(), 40);
        assert_eq!(r.n(1), 20);
        assert_eq!(r.block(1)[20 + 5], 115.0); // rhs col 1, row 5
        assert_eq!(r.nrhs(), 2);
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(VarBandBatch::zeros(vec![]).is_err());
    }
}
