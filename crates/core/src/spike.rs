//! SPIKE-style partitioning of one large band system (Li/Serban/Negrut,
//! arXiv:1509.07919): the host-side math of the workspace's third dispatch
//! regime.
//!
//! A single `n x n` band system is split into `P` diagonal blocks
//! `A_0 .. A_{P-1}` plus the off-diagonal *coupling corners* the split cuts
//! through: a `ku x ku` lower-triangular corner `B_p` coupling block `p` to
//! the top of block `p+1`, and a `kl x kl` upper-triangular corner `C_p`
//! coupling block `p+1` back to the bottom of block `p`. Each block is
//! factored independently (that is the intra-matrix parallelism the device
//! kernels exploit — all `P` blocks ride one batched launch), the coupling
//! is condensed into a tiny dense **reduced system** over the interface
//! unknowns, and the block solutions are recovered by back-substituting the
//! interface values ("combining" the spikes).
//!
//! Notation, with `s_p`/`e_p` the start/end row of block `p` and
//! `g_p = A_p^{-1} f_p`, `V_p = A_p^{-1} [0; B_p]`, `W_p = A_p^{-1} [C_{p-1}; 0]`:
//!
//! ```text
//!   x_p + V_p t_{p+1} + W_p b_{p-1} = g_p
//! ```
//!
//! where `t_p` is the top `ku` and `b_p` the bottom `kl` entries of `x_p`.
//! Collecting the top-`ku` rows (blocks `1..P`) and bottom-`kl` rows
//! (blocks `0..P-1`) of these equations yields a block-tridiagonal dense
//! system of order `(P-1)(kl + ku)` over the interface unknowns
//! `[b_0, t_1, b_1, t_2, ...]` — tiny next to `n`, solved on the host by
//! the self-contained dense LU below. The module is generic over
//! [`Scalar`] and deliberately free of any device dependency: the
//! `gbatch-kernels` spike driver reuses exactly these builders around its
//! batched launches, and the serving layer's factor cache retains a
//! [`SpikeFactor`] built from the same pieces.

use crate::band::BandMatrixRef;
use crate::batch::{BandBatch, PivotBatch, RhsBatch};
use crate::gbtrf::gbtrf;
use crate::gbtrs::{gbtrs, Transpose};
use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// How one band system is split into diagonal blocks.
///
/// All blocks share one uniform length ([`SpikePartition::block`]) so they
/// can ride a uniform [`BandBatch`]; only the last block may cover fewer
/// true rows and is padded with identity rows/columns (unit diagonal, zero
/// right-hand side), which factor trivially and never pivot into the true
/// rows. The constructor clamps the requested part count so every block is
/// wide enough to hold its coupling corners (`block > kl`, `block > ku`,
/// and the top-`ku` / bottom-`kl` interface rows of a block never overlap:
/// `block >= kl + ku`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpikePartition {
    /// Order of the full system.
    pub n: usize,
    /// Sub-diagonal count.
    pub kl: usize,
    /// Super-diagonal count.
    pub ku: usize,
    /// Effective number of diagonal blocks (`<=` the requested count).
    pub parts: usize,
    /// Uniform block length; the last block covers `n - (parts-1)*block`
    /// true rows and is identity-padded up to `block`.
    pub block: usize,
}

impl SpikePartition {
    /// Partition an `n`-order system with bandwidths `(kl, ku)` into (at
    /// most) `parts` blocks. The effective count is clamped so every block
    /// holds at least `kl + ku + 1` rows; `parts <= 1` or a system too
    /// small to split yields the trivial one-block partition.
    #[must_use]
    pub fn new(n: usize, kl: usize, ku: usize, parts: usize) -> Self {
        assert!(n > 0, "empty system");
        let min_block = kl + ku + 1;
        let mut p = parts.clamp(1, (n / min_block).max(1));
        loop {
            let block = n.div_ceil(p);
            let p_eff = n.div_ceil(block);
            let last = n - (p_eff - 1) * block;
            if p_eff == 1 || last >= min_block {
                return SpikePartition {
                    n,
                    kl,
                    ku,
                    parts: p_eff,
                    block,
                };
            }
            p -= 1;
        }
    }

    /// First global row/column of block `p`.
    #[inline]
    #[must_use]
    pub fn start(&self, p: usize) -> usize {
        p * self.block
    }

    /// Number of *true* (unpadded) rows of block `p`.
    #[inline]
    #[must_use]
    pub fn len(&self, p: usize) -> usize {
        (self.n - p * self.block).min(self.block)
    }

    /// Number of cut interfaces (`parts - 1`).
    #[inline]
    #[must_use]
    pub fn interfaces(&self) -> usize {
        self.parts - 1
    }

    /// Order of the dense reduced system: `(kl + ku)` interface unknowns
    /// per cut.
    #[inline]
    #[must_use]
    pub fn reduced_order(&self) -> usize {
        self.interfaces() * (self.kl + self.ku)
    }

    /// Layout of one diagonal block in factor storage (minimal `ldab` —
    /// identical to the full system's minimal factor `ldab`, which is what
    /// lets block factors be written back into the full band array
    /// column-for-column).
    pub fn block_layout(&self) -> crate::error::Result<BandLayout> {
        BandLayout::factor(self.block, self.block, self.kl, self.ku)
    }
}

/// The off-diagonal coupling corners a partition cuts through, stored
/// densely (column-major per corner; entries outside the triangular
/// structure are zero).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeCoupling<S: Scalar = f64> {
    /// Sub-diagonal count (side of every `C` corner).
    pub kl: usize,
    /// Super-diagonal count (side of every `B` corner).
    pub ku: usize,
    /// Number of interfaces covered.
    pub interfaces: usize,
    /// `B` corners, one `ku x ku` column-major block per interface:
    /// `b[i][r, c] = A[e_i - ku + r, e_i + c]` with `e_i` the end of block
    /// `i` (lower-triangular: zero for `c > r`).
    pub b: Vec<S>,
    /// `C` corners, one `kl x kl` column-major block per interface:
    /// `c[i][r, c] = A[e_i + r, e_i - kl + c]` (upper-triangular: zero for
    /// `r > c`).
    pub c: Vec<S>,
}

impl<S: Scalar> SpikeCoupling<S> {
    /// `B` corner of interface `i`.
    #[must_use]
    pub fn b_corner(&self, i: usize) -> &[S] {
        &self.b[i * self.ku * self.ku..(i + 1) * self.ku * self.ku]
    }

    /// `C` corner of interface `i`.
    #[must_use]
    pub fn c_corner(&self, i: usize) -> &[S] {
        &self.c[i * self.kl * self.kl..(i + 1) * self.kl * self.kl]
    }
}

/// Gather the diagonal blocks of `a` into a `parts`-lane factor-storage
/// [`BandBatch`] (the intra-matrix "batch" every block kernel runs over).
/// Pad rows/columns of a short last block get a unit diagonal.
pub fn extract_blocks<S: Scalar>(
    a: &BandMatrixRef<'_, S>,
    part: &SpikePartition,
) -> crate::error::Result<BandBatch<S>> {
    debug_assert_eq!(a.layout.n, part.n);
    BandBatch::from_fn(
        part.parts,
        part.block,
        part.block,
        part.kl,
        part.ku,
        |p, m| {
            let s = part.start(p);
            let len = part.len(p);
            for jj in 0..part.block {
                if jj < len {
                    let (rs, re) = m.layout.col_rows(jj);
                    for ii in rs..re.min(len) {
                        m.set(ii, jj, a.get(s + ii, s + jj));
                    }
                } else {
                    m.set(jj, jj, S::ONE);
                }
            }
        },
    )
}

/// Read the coupling corners of `a` under `part` (host-side reference
/// extraction; the device path stages the same entries through the
/// `spike_extract` kernel).
#[must_use]
pub fn extract_coupling<S: Scalar>(
    a: &BandMatrixRef<'_, S>,
    part: &SpikePartition,
) -> SpikeCoupling<S> {
    let (kl, ku) = (part.kl, part.ku);
    let ifaces = part.interfaces();
    let mut b = vec![S::ZERO; ifaces * ku * ku];
    let mut c = vec![S::ZERO; ifaces * kl * kl];
    for i in 0..ifaces {
        let e = part.start(i + 1);
        for cc in 0..ku {
            for r in 0..ku {
                b[i * ku * ku + cc * ku + r] = a.get(e - ku + r, e + cc);
            }
        }
        for cc in 0..kl {
            for r in 0..kl {
                c[i * kl * kl + cc * kl + r] = a.get(e + r, e - kl + cc);
            }
        }
    }
    SpikeCoupling {
        kl,
        ku,
        interfaces: ifaces,
        b,
        c,
    }
}

/// Build the per-block **augmented** right-hand side `[f_p | B_p | C_p]`:
/// `nrhs` true RHS columns, then `ku` columns carrying the `B` corner in
/// the block's bottom-`ku` true rows (so the solve yields the right spike
/// `V_p`), then `kl` columns carrying the `C` corner in the top-`kl` rows
/// (the left spike `W_p`). One batched GBTRS over this produces `g`, `V`
/// and `W` for every block at once.
pub fn augmented_rhs<S: Scalar>(
    part: &SpikePartition,
    coupling: &SpikeCoupling<S>,
    rhs: &[S],
    nrhs: usize,
) -> crate::error::Result<RhsBatch<S>> {
    let (kl, ku, n, blk) = (part.kl, part.ku, part.n, part.block);
    let naug = nrhs + ku + kl;
    let mut out = RhsBatch::zeros(part.parts, blk, naug)?;
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        let dst = out.block_mut(p);
        for c in 0..nrhs {
            dst[c * blk..c * blk + len].copy_from_slice(&rhs[c * n + s..c * n + s + len]);
        }
        if p + 1 < part.parts {
            let corner = coupling.b_corner(p);
            for c in 0..ku {
                for r in 0..ku {
                    dst[(nrhs + c) * blk + (len - ku + r)] = corner[c * ku + r];
                }
            }
        }
        if p > 0 {
            let corner = coupling.c_corner(p - 1);
            for c in 0..kl {
                for r in 0..kl {
                    dst[(nrhs + ku + c) * blk + r] = corner[c * kl + r];
                }
            }
        }
    }
    Ok(out)
}

/// Assemble the dense reduced-system matrix (column-major, order
/// [`SpikePartition::reduced_order`]) from the spike tips. `v(p, row, c)`
/// and `w(p, row, c)` read row `row` of block `p`'s right/left spike.
///
/// Unknown ordering per interface `i`: the bottom-`kl` values `b_i` of
/// block `i`, then the top-`ku` values `t_{i+1}` of block `i+1`. Equation
/// ordering matches (bottom-`kl` rows of block `i`'s equation, then
/// top-`ku` rows of block `i+1`'s).
pub fn assemble_reduced_matrix<S: Scalar>(
    part: &SpikePartition,
    v: impl Fn(usize, usize, usize) -> S,
    w: impl Fn(usize, usize, usize) -> S,
) -> Vec<S> {
    let (kl, ku) = (part.kl, part.ku);
    let kb = kl + ku;
    let r = part.reduced_order();
    let mut m = vec![S::ZERO; r * r];
    let mut set = |row: usize, col: usize, val: S| m[col * r + row] = val;
    for i in 0..part.interfaces() {
        let row0 = i * kb;
        // Bottom-kl rows of block i's equation:
        //   b_i + V_i^bot t_{i+1} + W_i^bot b_{i-1} = g_i^bot
        for rr in 0..kl {
            let req = row0 + rr;
            let brow = part.len(i) - kl + rr;
            set(req, i * kb + rr, S::ONE);
            for c in 0..ku {
                set(req, i * kb + kl + c, v(i, brow, c));
            }
            if i > 0 {
                for c in 0..kl {
                    set(req, (i - 1) * kb + c, w(i, brow, c));
                }
            }
        }
        // Top-ku rows of block i+1's equation:
        //   t_{i+1} + V_{i+1}^top t_{i+2} + W_{i+1}^top b_i = g_{i+1}^top
        for rr in 0..ku {
            let req = row0 + kl + rr;
            set(req, i * kb + kl + rr, S::ONE);
            for c in 0..kl {
                set(req, i * kb + c, w(i + 1, rr, c));
            }
            if i + 1 < part.interfaces() {
                for c in 0..ku {
                    set(req, (i + 1) * kb + kl + c, v(i + 1, rr, c));
                }
            }
        }
    }
    m
}

/// Assemble the reduced right-hand side (column-major
/// `reduced_order x nrhs`) from the block solutions' interface rows:
/// `g(p, row, c)` reads row `row`, RHS column `c` of `g_p = A_p^{-1} f_p`.
pub fn assemble_reduced_rhs<S: Scalar>(
    part: &SpikePartition,
    g: impl Fn(usize, usize, usize) -> S,
    nrhs: usize,
) -> Vec<S> {
    let (kl, ku) = (part.kl, part.ku);
    let kb = kl + ku;
    let r = part.reduced_order();
    let mut out = vec![S::ZERO; r * nrhs];
    for c in 0..nrhs {
        for i in 0..part.interfaces() {
            let row0 = i * kb;
            for rr in 0..kl {
                out[c * r + row0 + rr] = g(i, part.len(i) - kl + rr, c);
            }
            for rr in 0..ku {
                out[c * r + row0 + kl + rr] = g(i + 1, rr, c);
            }
        }
    }
    out
}

/// Recover the full solution from the block solutions and the solved
/// interface vector `y` (column-major `reduced_order x nrhs`):
/// `x_p = g_p - V_p t_{p+1} - W_p b_{p-1}`, written into `x`
/// (column-major `n x nrhs`). The device path runs the same recurrence in
/// the `spike_combine` kernel.
pub fn combine<S: Scalar>(
    part: &SpikePartition,
    g: impl Fn(usize, usize, usize) -> S,
    v: impl Fn(usize, usize, usize) -> S,
    w: impl Fn(usize, usize, usize) -> S,
    y: &[S],
    nrhs: usize,
    x: &mut [S],
) {
    let (kl, ku, n) = (part.kl, part.ku, part.n);
    let kb = kl + ku;
    let r = part.reduced_order();
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        for c in 0..nrhs {
            for row in 0..len {
                let mut val = g(p, row, c);
                if p + 1 < part.parts {
                    for cc in 0..ku {
                        val -= v(p, row, cc) * y[c * r + p * kb + kl + cc];
                    }
                }
                if p > 0 {
                    for cc in 0..kl {
                        val -= w(p, row, cc) * y[c * r + (p - 1) * kb + cc];
                    }
                }
                x[c * n + s + row] = val;
            }
        }
    }
}

/// Dense LU with partial pivoting, column-major `n x n`, `lda = n` —
/// the [`Scalar`]-generic reduced-system factorization (same pivot rule as
/// [`crate::dense::getrf`]: first maximal magnitude wins, so the result is
/// deterministic). Returns the LAPACK info code.
pub fn dense_getrf<S: Scalar>(n: usize, a: &mut [S], ipiv: &mut [i32]) -> i32 {
    debug_assert!(a.len() >= n * n && ipiv.len() >= n);
    let mut info = 0i32;
    for j in 0..n {
        let mut jp = j;
        let mut amax = a[j * n + j].abs();
        for i in j + 1..n {
            let v = a[j * n + i].abs();
            if v > amax {
                amax = v;
                jp = i;
            }
        }
        ipiv[j] = jp as i32;
        if a[j * n + jp] == S::ZERO {
            if info == 0 {
                info = j as i32 + 1;
            }
            continue;
        }
        if jp != j {
            for c in 0..n {
                a.swap(c * n + j, c * n + jp);
            }
        }
        let inv = S::ONE / a[j * n + j];
        for i in j + 1..n {
            a[j * n + i] *= inv;
        }
        for c in j + 1..n {
            let mult = a[c * n + j];
            if mult != S::ZERO {
                for i in j + 1..n {
                    let l = a[j * n + i];
                    a[c * n + i] -= l * mult;
                }
            }
        }
    }
    info
}

/// Solve with a [`dense_getrf`] factorization (`b` is column-major
/// `n x nrhs`).
pub fn dense_getrs<S: Scalar>(n: usize, nrhs: usize, lu: &[S], ipiv: &[i32], b: &mut [S]) {
    debug_assert!(lu.len() >= n * n && ipiv.len() >= n && b.len() >= n * nrhs);
    for c in 0..nrhs {
        let col = &mut b[c * n..(c + 1) * n];
        for j in 0..n {
            let jp = ipiv[j] as usize;
            if jp != j {
                col.swap(j, jp);
            }
        }
        for j in 0..n {
            let xj = col[j];
            if xj != S::ZERO {
                for i in j + 1..n {
                    col[i] -= lu[j * n + i] * xj;
                }
            }
        }
        for j in (0..n).rev() {
            let xj = col[j] / lu[j * n + j];
            col[j] = xj;
            if xj != S::ZERO {
                for i in 0..j {
                    col[i] -= lu[j * n + i] * xj;
                }
            }
        }
    }
}

/// A retained SPIKE factorization: everything a warm (factor-reusing)
/// solve needs — the `P` block LUs, the full spikes, and the factored
/// reduced system. This is what the serving layer's factor cache stores
/// for a large-`n` operator instead of one monolithic band LU.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeFactor<S: Scalar = f64> {
    /// How the operator was split.
    pub partition: SpikePartition,
    /// Factored diagonal blocks (one lane per block, factor storage).
    pub blocks: BandBatch<S>,
    /// Block-local 0-based pivots, one vector per block.
    pub pivots: PivotBatch,
    /// Full spikes, per block: `ku` right-spike (`V_p`) columns then `kl`
    /// left-spike (`W_p`) columns, column-major with leading dimension
    /// [`SpikePartition::block`]. Lane stride `block * (ku + kl)`.
    pub spikes: Vec<S>,
    /// Dense LU of the reduced system (column-major,
    /// [`SpikePartition::reduced_order`] squared).
    pub reduced_lu: Vec<S>,
    /// Pivots of the reduced LU.
    pub reduced_piv: Vec<i32>,
}

impl<S: Scalar> SpikeFactor<S> {
    /// Right-spike entry `V_p[row, c]` (`c < ku`).
    #[inline]
    #[must_use]
    pub fn v(&self, p: usize, row: usize, c: usize) -> S {
        let blk = self.partition.block;
        self.spikes[p * blk * (self.partition.ku + self.partition.kl) + c * blk + row]
    }

    /// Left-spike entry `W_p[row, c]` (`c < kl`).
    #[inline]
    #[must_use]
    pub fn w(&self, p: usize, row: usize, c: usize) -> S {
        let blk = self.partition.block;
        let ku = self.partition.ku;
        self.spikes[p * blk * (ku + self.partition.kl) + (ku + c) * blk + row]
    }

    /// Retained footprint in bytes (what a cache's byte budget accounts
    /// against).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.blocks.bytes()
            + (self.spikes.len() + self.reduced_lu.len()) * S::BYTES
            + (self.pivots.as_slice().len() + self.reduced_piv.len()) * std::mem::size_of::<i32>()
    }
}

/// Host-side SPIKE factorization of one band operator. Errors with the
/// first failing block's LAPACK info code (mapped to a global 1-based
/// column) when a block factors singular, or with `-1` when the reduced
/// system is singular — callers fall back to the sequential path on `Err`.
pub fn spike_factorize<S: Scalar>(
    a: &BandMatrixRef<'_, S>,
    parts: usize,
) -> std::result::Result<SpikeFactor<S>, i32> {
    let l = a.layout;
    assert_eq!(l.m, l.n, "spike requires a square system");
    let part = SpikePartition::new(l.n, l.kl, l.ku, parts);
    let coupling = extract_coupling(a, &part);
    let mut blocks = extract_blocks(a, &part).expect("partition produces a valid block layout");
    let bl = blocks.layout();
    let mut pivots = PivotBatch::new(part.parts, part.block, part.block);
    for p in 0..part.parts {
        let info = gbtrf(&bl, blocks.matrix_mut(p).data, pivots.pivots_mut(p));
        if info != 0 {
            return Err(info + part.start(p) as i32);
        }
    }
    // Spikes: one batched-shape solve of the corner columns per block.
    let (kl, ku, blk) = (part.kl, part.ku, part.block);
    let width = ku + kl;
    let mut spikes = vec![S::ZERO; part.parts * blk * width];
    for p in 0..part.parts {
        let lane = &mut spikes[p * blk * width..(p + 1) * blk * width];
        if p + 1 < part.parts {
            let corner = coupling.b_corner(p);
            let len = part.len(p);
            for c in 0..ku {
                for r in 0..ku {
                    lane[c * blk + (len - ku + r)] = corner[c * ku + r];
                }
            }
        }
        if p > 0 {
            let corner = coupling.c_corner(p - 1);
            for c in 0..kl {
                for r in 0..kl {
                    lane[(ku + c) * blk + r] = corner[c * kl + r];
                }
            }
        }
        gbtrs(
            Transpose::No,
            &bl,
            blocks.matrix(p).data,
            pivots.pivots(p),
            lane,
            blk,
            width,
        );
    }
    let f = SpikeFactor {
        partition: part,
        blocks,
        pivots,
        spikes,
        reduced_lu: Vec::new(),
        reduced_piv: Vec::new(),
    };
    let r = part.reduced_order();
    let mut reduced = assemble_reduced_matrix(
        &part,
        |p, row, c| f.v(p, row, c),
        |p, row, c| f.w(p, row, c),
    );
    let mut rpiv = vec![0i32; r];
    if dense_getrf(r, &mut reduced, &mut rpiv) != 0 {
        return Err(-1);
    }
    Ok(SpikeFactor {
        reduced_lu: reduced,
        reduced_piv: rpiv,
        ..f
    })
}

/// Warm (factor-reusing) solve over a retained [`SpikeFactor`]: block
/// forward/backward solves for `g`, reduced back-substitution, combine.
/// `rhs` is column-major `n x nrhs`, overwritten with the solution.
pub fn spike_solve_retained<S: Scalar>(f: &SpikeFactor<S>, rhs: &mut [S], nrhs: usize) {
    let part = f.partition;
    let (n, blk) = (part.n, part.block);
    let bl = f.blocks.layout();
    // g_p = A_p^{-1} f_p, per block.
    let mut g = vec![S::ZERO; part.parts * blk * nrhs];
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        let lane = &mut g[p * blk * nrhs..(p + 1) * blk * nrhs];
        for c in 0..nrhs {
            lane[c * blk..c * blk + len].copy_from_slice(&rhs[c * n + s..c * n + s + len]);
        }
        gbtrs(
            Transpose::No,
            &bl,
            f.blocks.matrix(p).data,
            f.pivots.pivots(p),
            lane,
            blk,
            nrhs,
        );
    }
    let g_at = |p: usize, row: usize, c: usize| g[p * blk * nrhs + c * blk + row];
    let r = part.reduced_order();
    let mut y = assemble_reduced_rhs(&part, g_at, nrhs);
    if r > 0 {
        dense_getrs(r, nrhs, &f.reduced_lu, &f.reduced_piv, &mut y);
    }
    combine(
        &part,
        g_at,
        |p, row, c| f.v(p, row, c),
        |p, row, c| f.w(p, row, c),
        &y,
        nrhs,
        rhs,
    );
}

/// Host-side exact SPIKE factorize-and-solve: the sequential oracle for the
/// device driver and the CPU-backend path for large systems. `rhs` is
/// column-major `n x nrhs`, overwritten with the solution. Falls back to
/// the sequential one-block path (bitwise [`crate::gbsv::gbsv`]) when the
/// partition degenerates to one block or any block factors singular;
/// returns the LAPACK info code of whichever path answered.
pub fn spike_gbsv<S: Scalar>(
    a: &BandMatrixRef<'_, S>,
    rhs: &mut [S],
    nrhs: usize,
    parts: usize,
) -> i32 {
    let l = a.layout;
    assert_eq!(l.m, l.n, "spike requires a square system");
    let part = SpikePartition::new(l.n, l.kl, l.ku, parts);
    if part.parts > 1 {
        if let Ok(f) = spike_factorize(a, parts) {
            spike_solve_retained(&f, rhs, nrhs);
            return 0;
        }
    }
    // One-block partition or singular block/reduced system: sequential gbsv.
    let fl = BandLayout::factor(l.n, l.n, l.kl, l.ku).expect("valid square layout");
    let mut ab = vec![S::ZERO; fl.len()];
    for j in 0..l.n {
        let (rs, re) = fl.col_rows(j);
        for i in rs..re {
            ab[fl.idx(fl.row_offset + i - j, j)] = a.get(i, j);
        }
    }
    let mut ipiv = vec![0i32; l.n];
    crate::gbsv::gbsv(&fl, &mut ab, &mut ipiv, rhs, l.n, nrhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::blas2::gbmv;
    use crate::residual::backward_error;

    fn random_band(n: usize, kl: usize, ku: usize, seed: f64, dominant: bool) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.7 + 0.137).fract();
                let boost = if i == j && dominant { 4.0 } else { 0.0 };
                a.set(i, j, v - 0.5 + boost);
            }
        }
        a
    }

    #[test]
    fn partition_clamps_and_covers() {
        let p = SpikePartition::new(100, 2, 3, 4);
        assert_eq!(p.parts, 4);
        assert_eq!(p.block, 25);
        assert_eq!((0..p.parts).map(|i| p.len(i)).sum::<usize>(), 100);
        // Too many parts for the bandwidth: clamped.
        let p = SpikePartition::new(20, 4, 4, 64);
        assert!(p.parts <= 20 / 9);
        for i in 0..p.parts {
            assert!(p.len(i) >= 9 || p.parts == 1);
        }
        // Degenerate: one part.
        let p = SpikePartition::new(10, 4, 4, 8);
        assert_eq!(p.parts, 1);
        assert_eq!(p.block, 10);
        assert_eq!(p.reduced_order(), 0);
    }

    #[test]
    fn partition_last_block_holds_its_corners() {
        // Uneven split whose naive last block would be tiny.
        for (n, kl, ku, parts) in [(101, 2, 3, 8), (67, 1, 1, 8), (129, 5, 2, 4)] {
            let p = SpikePartition::new(n, kl, ku, parts);
            let last = p.len(p.parts - 1);
            assert!(
                p.parts == 1 || last > kl + ku,
                "n={n} parts={} last={last}",
                p.parts
            );
        }
    }

    #[test]
    fn extracted_blocks_and_corners_tile_the_operator() {
        let (n, kl, ku) = (37, 2, 3);
        let a = random_band(n, kl, ku, 0.21, true);
        let part = SpikePartition::new(n, kl, ku, 3);
        assert_eq!(part.parts, 3);
        let blocks = extract_blocks(&a.as_ref(), &part).unwrap();
        let coupling = extract_coupling(&a.as_ref(), &part);
        // Every in-band entry of A appears exactly once: in its diagonal
        // block or in a coupling corner.
        for j in 0..n {
            let (rs, re) = a.layout().col_rows(j);
            for i in rs..re {
                let (pi, pj) = (i / part.block, j / part.block);
                let got = if pi == pj {
                    blocks
                        .matrix(pi)
                        .get(i - part.start(pi), j - part.start(pj))
                } else if pj == pi + 1 {
                    let e = part.start(pj);
                    coupling.b_corner(pi)[(j - e) * ku + (i - (e - ku))]
                } else {
                    assert_eq!(pi, pj + 1, "band cut wider than one interface");
                    let e = part.start(pi);
                    coupling.c_corner(pj)[(j - (e - kl)) * kl + (i - e)]
                };
                assert_eq!(got, a.get(i, j), "({i}, {j})");
            }
        }
        // Pad diagonal of the short last block is identity.
        let last = part.parts - 1;
        for jj in part.len(last)..part.block {
            assert_eq!(blocks.matrix(last).get(jj, jj), 1.0);
        }
    }

    #[test]
    fn dense_lu_matches_f64_oracle() {
        let n = 12;
        let mut a: Vec<f64> = (0..n * n)
            .map(|k| ((k * 37 % 19) as f64 - 9.0) * 0.3)
            .collect();
        for j in 0..n {
            a[j * n + j] += 7.0;
        }
        let b0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        // Reference through crate::dense (f64-only).
        let mut lu_ref = a.clone();
        let mut piv_ref = vec![0i32; n];
        assert_eq!(crate::dense::getrf(n, n, &mut lu_ref, n, &mut piv_ref), 0);
        let mut x_ref = b0.clone();
        crate::dense::getrs(n, 1, &lu_ref, n, &piv_ref, &mut x_ref, n);
        // Generic path.
        let mut lu = a.clone();
        let mut piv = vec![0i32; n];
        assert_eq!(dense_getrf(n, &mut lu, &mut piv), 0);
        assert_eq!(lu, lu_ref, "identical pivot rule gives identical factors");
        assert_eq!(piv, piv_ref);
        let mut x = b0.clone();
        dense_getrs(n, 1, &lu, &piv, &mut x);
        assert_eq!(x, x_ref);
    }

    #[test]
    fn dense_lu_flags_singular() {
        let n = 3;
        let mut a = vec![0.0f64; n * n]; // all-zero matrix
        let mut piv = vec![0i32; n];
        assert_eq!(dense_getrf(n, &mut a, &mut piv), 1);
    }

    #[test]
    fn exact_spike_matches_gbsv_residual() {
        for (n, kl, ku, parts, nrhs) in [
            (64, 1, 1, 2, 1),
            (100, 2, 3, 4, 2),
            (129, 3, 2, 8, 1),
            (200, 5, 5, 3, 3),
        ] {
            let a = random_band(n, kl, ku, 0.11 + n as f64 * 1e-3, true);
            let mut rhs = vec![0.0; n * nrhs];
            for (k, v) in rhs.iter_mut().enumerate() {
                *v = ((k * 13 % 29) as f64 - 14.0) * 0.1;
            }
            let rhs0 = rhs.clone();
            let info = spike_gbsv(&a.as_ref(), &mut rhs, nrhs, parts);
            assert_eq!(info, 0);
            for c in 0..nrhs {
                let berr = backward_error(
                    a.as_ref(),
                    &rhs[c * n..(c + 1) * n],
                    &rhs0[c * n..(c + 1) * n],
                );
                assert!(
                    berr < 1e-12,
                    "n={n} kl={kl} ku={ku} P={parts} c={c}: berr {berr:.2e}"
                );
            }
        }
    }

    #[test]
    fn one_part_is_bitwise_gbsv() {
        let (n, kl, ku) = (40, 2, 3);
        let a = random_band(n, kl, ku, 0.4, false);
        let l = a.layout();
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut b_ref = b.clone();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        let info_ref = crate::gbsv::gbsv(&l, &mut ab, &mut ipiv, &mut b_ref, n, 1);
        let info = spike_gbsv(&a.as_ref(), &mut b, 1, 1);
        assert_eq!(info, info_ref);
        assert_eq!(b, b_ref, "P=1 must be the sequential driver bit-for-bit");
    }

    #[test]
    fn singular_block_falls_back_to_sequential() {
        // Block 1's diagonal block is singular (zero column), but the full
        // operator is fine thanks to its off-diagonal coupling.
        let (n, kl, ku) = (32, 1, 1);
        let mut a = random_band(n, kl, ku, 0.77, true);
        let part = SpikePartition::new(n, kl, ku, 2);
        let s = part.start(1);
        a.set(s, s, 0.0);
        a.set(s + 1, s, 0.0);
        // a[s-1][s] stays nonzero, so the unsplit matrix is nonsingular.
        assert!(spike_factorize::<f64>(&a.as_ref(), 2).is_err());
        let mut b = vec![1.0; n];
        let b0 = b.clone();
        let info = spike_gbsv(&a.as_ref(), &mut b, 1, 2);
        assert_eq!(info, 0, "fallback path must answer");
        let berr = backward_error(a.as_ref(), &b, &b0);
        assert!(berr < 1e-12, "berr {berr:.2e}");
    }

    #[test]
    fn retained_factor_warm_solve_matches_cold() {
        let (n, kl, ku, parts, nrhs) = (96, 2, 2, 4, 2);
        let a = random_band(n, kl, ku, 0.5, true);
        let f = spike_factorize(&a.as_ref(), parts).unwrap();
        assert!(f.bytes() > 0);
        let mut rhs = vec![0.0; n * nrhs];
        for (k, v) in rhs.iter_mut().enumerate() {
            *v = ((k % 17) as f64 - 8.0) * 0.2;
        }
        let mut cold = rhs.clone();
        assert_eq!(spike_gbsv(&a.as_ref(), &mut cold, nrhs, parts), 0);
        spike_solve_retained(&f, &mut rhs, nrhs);
        assert_eq!(rhs, cold, "warm solve re-runs the identical arithmetic");
    }

    #[test]
    fn f32_instantiation_solves() {
        let (n, kl, ku) = (80, 2, 1);
        let mut a = BandMatrix::<f32>::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = 0.3f32;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.9 + 0.171).fract();
                a.set(i, j, v - 0.5 + if i == j { 3.0 } else { 0.0 });
            }
        }
        let mut b = vec![1.0f32; n];
        let b0 = b.clone();
        assert_eq!(spike_gbsv(&a.as_ref(), &mut b, 1, 4), 0);
        let mut r = vec![0.0f32; n];
        gbmv(1.0, a.as_ref(), &b, 0.0, &mut r);
        let err = r
            .iter()
            .zip(&b0)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "f32 residual {err}");
    }
}
