//! Band-matrix equilibration (`DGBEQU` semantics).
//!
//! Computes row and column scalings `R`, `C` such that the scaled matrix
//! `diag(R) * A * diag(C)` has rows and columns with infinity norms near 1.
//! The PELE workload (paper §2.1) spans "a large range of condition
//! numbers"; equilibration is the standard LAPACK remedy applied before a
//! `GBTRF`-based solve.

use crate::band::BandMatrixRef;

/// Result of an equilibration computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration {
    /// Row scale factors (`m` entries).
    pub r: Vec<f64>,
    /// Column scale factors (`n` entries).
    pub c: Vec<f64>,
    /// Ratio of smallest to largest row norm (LAPACK `ROWCND`).
    pub rowcnd: f64,
    /// Ratio of smallest to largest column norm (LAPACK `COLCND`).
    pub colcnd: f64,
    /// Largest absolute element of `A` (LAPACK `AMAX`).
    pub amax: f64,
}

impl Equilibration {
    /// LAPACK's heuristic: row scaling is worth applying when
    /// `rowcnd < 0.1` (`DGESVX` family threshold).
    pub fn should_scale_rows(&self) -> bool {
        self.rowcnd < 0.1
    }

    /// Column scaling is worth applying when `colcnd < 0.1`.
    pub fn should_scale_cols(&self) -> bool {
        self.colcnd < 0.1
    }
}

/// Compute equilibration factors for a band matrix (`DGBEQU`).
///
/// Returns LAPACK-style info through `Result`: `Err(i)` with 1-based `i`
/// when row `i` (for `i <= m`) or column `i - m` is exactly zero.
pub fn gbequ(a: BandMatrixRef<'_>) -> Result<Equilibration, usize> {
    let l = a.layout;
    let (m, n) = (l.m, l.n);
    let mut r = vec![0.0f64; m];
    let mut c = vec![0.0f64; n];
    let mut amax = 0.0f64;

    // Row norms.
    for j in 0..n {
        let (s, e) = l.col_rows(j);
        for i in s..e {
            let v = a.get(i, j).abs();
            r[i] = r[i].max(v);
            amax = amax.max(v);
        }
    }
    for (i, v) in r.iter().enumerate() {
        if *v == 0.0 {
            return Err(i + 1);
        }
    }
    let (rmin, rmax) = r
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let rowcnd = rmin / rmax;
    for v in r.iter_mut() {
        *v = 1.0 / *v;
    }

    // Column norms of the row-scaled matrix.
    for j in 0..n {
        let (s, e) = l.col_rows(j);
        for i in s..e {
            c[j] = c[j].max(a.get(i, j).abs() * r[i]);
        }
    }
    for (j, v) in c.iter().enumerate() {
        if *v == 0.0 {
            return Err(m + j + 1);
        }
    }
    let (cmin, cmax) = c
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let colcnd = cmin / cmax;
    for v in c.iter_mut() {
        *v = 1.0 / *v;
    }

    Ok(Equilibration {
        r,
        c,
        rowcnd,
        colcnd,
        amax,
    })
}

/// Apply scalings in place: `A <- diag(R) * A * diag(C)`.
pub fn apply_equilibration(a: &mut crate::band::BandMatrixMut<'_>, eq: &Equilibration) {
    let l = a.layout;
    for j in 0..l.n {
        let (s, e) = l.col_rows(j);
        for i in s..e {
            let v = a.get(i, j);
            a.set(i, j, v * eq.r[i] * eq.c[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;

    fn badly_scaled() -> BandMatrix {
        // Rows scaled by widely varying powers of ten.
        let n = 6;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            let scale = 10f64.powi(j as i32 * 2 - 5);
            a.set(j, j, 2.0 * scale);
            if j > 0 {
                a.set(j, j - 1, -scale);
                a.set(j - 1, j, -0.5 * 10f64.powi((j as i32 - 1) * 2 - 5));
            }
        }
        a
    }

    #[test]
    fn equilibrated_matrix_has_unit_norms() {
        let a = badly_scaled();
        let eq = gbequ(a.as_ref()).unwrap();
        assert!(eq.should_scale_rows(), "rowcnd {:.2e}", eq.rowcnd);
        let mut b = a.clone();
        apply_equilibration(&mut b.as_mut(), &eq);
        // Every row/column inf-norm of the scaled matrix is in (0.1, 1].
        let l = b.layout();
        let mut row = vec![0.0f64; l.m];
        let mut col = vec![0.0f64; l.n];
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                let v = b.get(i, j).abs();
                row[i] = row[i].max(v);
                col[j] = col[j].max(v);
            }
        }
        for &v in row.iter().chain(col.iter()) {
            assert!(v > 0.09 && v <= 1.0 + 1e-12, "norm {v}");
        }
    }

    #[test]
    fn well_scaled_matrix_needs_nothing() {
        let n = 5;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 1.0);
            if j > 0 {
                a.set(j, j - 1, 0.5);
            }
        }
        let eq = gbequ(a.as_ref()).unwrap();
        assert!(!eq.should_scale_rows());
        assert!(!eq.should_scale_cols());
        assert_eq!(eq.amax, 1.0);
    }

    #[test]
    fn zero_row_detected() {
        let n = 4;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            if j != 2 {
                a.set(j, j, 1.0);
            }
        }
        // Row 2 entirely zero (its in-band entries are (2,1),(2,2),(2,3)).
        let err = gbequ(a.as_ref()).unwrap_err();
        assert_eq!(err, 3, "1-based zero-row index");
    }

    #[test]
    fn equilibration_improves_conditioning_of_solve() {
        // Solve with and without equilibration; the equilibrated route must
        // not be worse in backward error.
        let a = badly_scaled();
        let n = a.layout().n;
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut b = vec![0.0; n];
        crate::blas2::gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);

        let eq = gbequ(a.as_ref()).unwrap();
        let mut a_eq = a.clone();
        apply_equilibration(&mut a_eq.as_mut(), &eq);
        // Scaled system: (R A C) y = R b, x = C y.
        let mut b_eq: Vec<f64> = b.iter().zip(&eq.r).map(|(v, r)| v * r).collect();
        let l = a.layout();
        let mut ab = a_eq.data().to_vec();
        let mut piv = vec![0i32; n];
        assert_eq!(crate::gbsv::gbsv(&l, &mut ab, &mut piv, &mut b_eq, n, 1), 0);
        let x: Vec<f64> = b_eq.iter().zip(&eq.c).map(|(y, c)| y * c).collect();
        let berr = crate::residual::backward_error(a.as_ref(), &x, &b);
        assert!(berr < 1e-12, "equilibrated backward error {berr:.2e}");
    }
}
