//! Owned band matrices and borrowed views.

use crate::error::{BandError, Result};
use crate::layout::{BandLayout, BandStorage};
use crate::scalar::Scalar;

/// An owned band matrix in LAPACK band storage (column-major `ldab x n`).
/// Generic over the element [`Scalar`]; defaults to the paper's `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct BandMatrix<S: Scalar = f64> {
    layout: BandLayout,
    data: Vec<S>,
}

impl<S: Scalar> BandMatrix<S> {
    /// Zero band matrix in factor storage (ready for `gbtrf`).
    pub fn zeros_factor(m: usize, n: usize, kl: usize, ku: usize) -> Result<Self> {
        let layout = BandLayout::factor(m, n, kl, ku)?;
        Ok(BandMatrix {
            data: vec![S::ZERO; layout.len()],
            layout,
        })
    }

    /// Zero band matrix in pure storage.
    pub fn zeros_pure(m: usize, n: usize, kl: usize, ku: usize) -> Result<Self> {
        let layout = BandLayout::pure(m, n, kl, ku)?;
        Ok(BandMatrix {
            data: vec![S::ZERO; layout.len()],
            layout,
        })
    }

    /// Wrap an existing band array. `data.len()` must equal `layout.len()`.
    pub fn from_parts(layout: BandLayout, data: Vec<S>) -> Result<Self> {
        if data.len() != layout.len() {
            return Err(BandError::BufferTooSmall {
                arg: "data",
                len: data.len(),
                required: layout.len(),
            });
        }
        Ok(BandMatrix { layout, data })
    }

    /// Build a band matrix (factor storage) from a dense column-major
    /// `m x n` matrix, keeping only the structural band.
    pub fn from_dense(m: usize, n: usize, kl: usize, ku: usize, dense: &[S]) -> Result<Self> {
        if dense.len() < m * n {
            return Err(BandError::BufferTooSmall {
                arg: "dense",
                len: dense.len(),
                required: m * n,
            });
        }
        let mut bm = Self::zeros_factor(m, n, kl, ku)?;
        for j in 0..n {
            let (s, e) = bm.layout.col_rows(j);
            for i in s..e {
                let v = dense[i + j * m];
                bm.set(i, j, v);
            }
        }
        Ok(bm)
    }

    /// Expand to a dense column-major `m x n` matrix (structural band only;
    /// fill-in rows are ignored).
    pub fn to_dense(&self) -> Vec<S> {
        let l = &self.layout;
        let mut dense = vec![S::ZERO; l.m * l.n];
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                dense[i + j * l.m] = self.get(i, j);
            }
        }
        dense
    }

    /// Expand to dense including the fill-in region (for inspecting factors).
    pub fn to_dense_filled(&self) -> Vec<S> {
        let l = &self.layout;
        let mut dense = vec![S::ZERO; l.m * l.n];
        for j in 0..l.n {
            let (s, e) = l.col_rows_filled(j);
            for i in s..e {
                dense[i + j * l.m] = self.get(i, j);
            }
        }
        dense
    }

    /// The layout descriptor.
    #[inline]
    pub fn layout(&self) -> BandLayout {
        self.layout
    }

    /// Full-matrix element `(i, j)`; zero outside the representable band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        match self.layout.idx_full(i, j) {
            Some(k) => self.data[k],
            None => S::ZERO,
        }
    }

    /// Set full-matrix element `(i, j)`. Panics (debug) / ignores (release is
    /// not allowed — it panics too) when outside the representable band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        let k = self
            .layout
            .idx_full(i, j)
            .unwrap_or_else(|| panic!("element ({i}, {j}) outside representable band"));
        self.data[k] = v;
    }

    /// Raw band array (column-major `ldab x n`).
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw band array.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume into the raw band array.
    pub fn into_data(self) -> Vec<S> {
        self.data
    }

    /// Borrowed read-only view.
    pub fn as_ref(&self) -> BandMatrixRef<'_, S> {
        BandMatrixRef {
            layout: self.layout,
            data: &self.data,
        }
    }

    /// Borrowed mutable view.
    pub fn as_mut(&mut self) -> BandMatrixMut<'_, S> {
        BandMatrixMut {
            layout: self.layout,
            data: &mut self.data,
        }
    }

    /// Infinity norm of the (structural) band matrix.
    pub fn norm_inf(&self) -> S {
        let l = &self.layout;
        let mut row_sums = vec![S::ZERO; l.m];
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                row_sums[i] += self.get(i, j).abs();
            }
        }
        row_sums.into_iter().fold(S::ZERO, S::max)
    }

    /// One norm (max column sum) of the structural band matrix.
    pub fn norm_one(&self) -> S {
        let l = &self.layout;
        let mut best = S::ZERO;
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            let mut sum = S::ZERO;
            for i in s..e {
                sum += self.get(i, j).abs();
            }
            best = best.max(sum);
        }
        best
    }

    /// Convert pure storage into factor storage (adds the `kl` fill rows).
    pub fn into_factor_storage(self) -> Result<Self> {
        match self.layout.storage() {
            BandStorage::Factor => Ok(self),
            BandStorage::Pure => {
                let l = self.layout;
                let mut out = BandMatrix::zeros_factor(l.m, l.n, l.kl, l.ku)?;
                for j in 0..l.n {
                    let (s, e) = l.col_rows(j);
                    for i in s..e {
                        out.set(i, j, self.get(i, j));
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Read-only borrowed band matrix.
#[derive(Debug, Clone, Copy)]
pub struct BandMatrixRef<'a, S: Scalar = f64> {
    /// Layout descriptor.
    pub layout: BandLayout,
    /// Band array.
    pub data: &'a [S],
}

impl<'a, S: Scalar> BandMatrixRef<'a, S> {
    /// Full-matrix element `(i, j)`; zero outside the representable band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        match self.layout.idx_full(i, j) {
            Some(k) => self.data[k],
            None => S::ZERO,
        }
    }

    /// Clone into an owned matrix.
    pub fn to_owned(&self) -> BandMatrix<S> {
        BandMatrix {
            layout: self.layout,
            data: self.data.to_vec(),
        }
    }
}

/// Mutable borrowed band matrix.
#[derive(Debug)]
pub struct BandMatrixMut<'a, S: Scalar = f64> {
    /// Layout descriptor.
    pub layout: BandLayout,
    /// Band array.
    pub data: &'a mut [S],
}

impl<'a, S: Scalar> BandMatrixMut<'a, S> {
    /// Full-matrix element `(i, j)`; zero outside the representable band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        match self.layout.idx_full(i, j) {
            Some(k) => self.data[k],
            None => S::ZERO,
        }
    }

    /// Set full-matrix element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        let k = self
            .layout
            .idx_full(i, j)
            .unwrap_or_else(|| panic!("element ({i}, {j}) outside representable band"));
        self.data[k] = v;
    }

    /// Downgrade to a read-only view.
    pub fn as_ref(&self) -> BandMatrixRef<'_, S> {
        BandMatrixRef {
            layout: self.layout,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 2.0);
            if j > 0 {
                a.set(j - 1, j, -1.0);
            }
            if j + 1 < n {
                a.set(j + 1, j, -1.0);
            }
        }
        a
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = BandMatrix::zeros_factor(5, 5, 2, 1).unwrap();
        a.set(3, 2, 7.5);
        assert_eq!(a.get(3, 2), 7.5);
        assert_eq!(a.get(0, 4), 0.0); // outside band reads as zero
    }

    #[test]
    #[should_panic(expected = "outside representable band")]
    fn set_outside_band_panics() {
        let mut a = BandMatrix::zeros_factor(5, 5, 1, 1).unwrap();
        a.set(4, 0, 1.0);
    }

    #[test]
    fn dense_roundtrip() {
        let n = 6;
        let a = tridiag(n);
        let d = a.to_dense();
        let b = BandMatrix::from_dense(n, n, 1, 1, &d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_dense_truncates_outside_band() {
        // A dense matrix with entries everywhere, banded to tridiagonal:
        let n = 4;
        let dense: Vec<f64> = (0..n * n).map(|k| k as f64 + 1.0).collect();
        let b = BandMatrix::from_dense(n, n, 1, 1, &dense).unwrap();
        assert_eq!(b.get(3, 0), 0.0);
        assert_eq!(b.get(0, 3), 0.0);
        assert_eq!(b.get(1, 0), dense[1]);
    }

    #[test]
    fn norms_match_dense_definition() {
        let a = tridiag(5);
        // Row sums: first/last 3, middle 4.
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.norm_one(), 4.0);
    }

    #[test]
    fn pure_to_factor_conversion_preserves_entries() {
        let mut p = BandMatrix::zeros_pure(4, 4, 1, 1).unwrap();
        p.set(0, 0, 1.0);
        p.set(1, 0, 2.0);
        p.set(0, 1, 3.0);
        let f = p.clone().into_factor_storage().unwrap();
        assert_eq!(f.layout().storage(), BandStorage::Factor);
        assert_eq!(f.get(0, 0), 1.0);
        assert_eq!(f.get(1, 0), 2.0);
        assert_eq!(f.get(0, 1), 3.0);
    }

    #[test]
    fn from_parts_validates_length() {
        let l = BandLayout::factor(3, 3, 1, 1).unwrap();
        assert!(BandMatrix::from_parts(l, vec![0.0; 3]).is_err());
        assert!(BandMatrix::from_parts(l, vec![0.0; l.len()]).is_ok());
    }

    #[test]
    fn views_see_same_data() {
        let mut a = tridiag(4);
        {
            let mut v = a.as_mut();
            v.set(2, 2, 9.0);
            assert_eq!(v.get(2, 2), 9.0);
        }
        assert_eq!(a.get(2, 2), 9.0);
        assert_eq!(a.as_ref().get(2, 2), 9.0);
        assert_eq!(a.as_ref().to_owned().get(2, 2), 9.0);
    }
}
