//! Expert band solve driver (`DGBSVX` semantics, simplified): optional
//! equilibration, factorization, solve, iterative refinement, and a
//! condition estimate — the full LAPACK treatment the PELE batches
//! (paper §2.1) need, where "the numerical conditioning affects the
//! behavior of numerical stability measures".

use crate::band::{BandMatrix, BandMatrixRef};
use crate::gbcon::gbcon;
use crate::gbequ::{apply_equilibration, gbequ, Equilibration};
use crate::gbrfs::gbrfs;
use crate::gbtrf::gbtrf;
use crate::gbtrs::{gbtrs, Transpose};

/// What the expert driver did and found.
#[derive(Debug, Clone)]
pub struct GbsvxResult {
    /// LAPACK info code of the factorization (0, or 1-based zero-pivot
    /// column of the *equilibrated* matrix).
    pub info: i32,
    /// Reciprocal condition estimate of the (equilibrated) matrix.
    pub rcond: f64,
    /// Componentwise backward errors per right-hand side, after refinement.
    pub berr: Vec<f64>,
    /// Whether row/column equilibration was applied.
    pub equilibrated: bool,
    /// The scalings, when applied.
    pub equilibration: Option<Equilibration>,
    /// Refinement sweeps used per right-hand side.
    pub refine_iters: Vec<usize>,
}

/// Condition threshold below which the solution is flagged unreliable
/// (LAPACK sets `info = n + 1` when `rcond < eps`).
pub fn is_reliable(r: &GbsvxResult) -> bool {
    r.info == 0 && r.rcond >= f64::EPSILON
}

/// Expert solve of `A X = B`.
///
/// * `a` — the band matrix (unchanged).
/// * `b` — `n x nrhs` column-major (`ldb = n`); overwritten with `X`.
///
/// Steps: equilibrate when LAPACK's heuristic says it pays, factor the
/// (scaled) matrix, estimate `rcond`, solve, refine each right-hand side,
/// and unscale.
pub fn gbsvx(a: &BandMatrix, b: &mut [f64], nrhs: usize) -> GbsvxResult {
    let l = a.layout();
    let n = l.n;
    assert_eq!(l.m, n, "gbsvx requires a square system");
    assert!(b.len() >= n * nrhs);

    // 1. Equilibration (row + column scalings) when worthwhile.
    let eq = gbequ(a.as_ref()).ok();
    let apply = eq
        .as_ref()
        .map(|e| e.should_scale_rows() || e.should_scale_cols())
        .unwrap_or(false);
    let mut work = a.clone();
    if apply {
        apply_equilibration(&mut work.as_mut(), eq.as_ref().unwrap());
    }

    // 2. Factor the working matrix.
    let mut ab = work.data().to_vec();
    let mut ipiv = vec![0i32; n];
    let info = gbtrf(&l, &mut ab, &mut ipiv);
    if info != 0 {
        return GbsvxResult {
            info,
            rcond: 0.0,
            berr: vec![f64::INFINITY; nrhs],
            equilibrated: apply,
            equilibration: if apply { eq } else { None },
            refine_iters: vec![0; nrhs],
        };
    }

    // 3. Condition estimate of the working matrix.
    let rcond = gbcon(work.as_ref(), &l, &ab, &ipiv);

    // 4. Solve + refine per right-hand side (on the scaled system), then
    //    unscale the solution.
    let mut berr = Vec::with_capacity(nrhs);
    let mut iters = Vec::with_capacity(nrhs);
    for c in 0..nrhs {
        let col = &mut b[c * n..(c + 1) * n];
        // Scale the RHS: (R A C) y = R b.
        if apply {
            let e = eq.as_ref().unwrap();
            for (v, r) in col.iter_mut().zip(&e.r) {
                *v *= r;
            }
        }
        let rhs_scaled = col.to_vec();
        gbtrs(Transpose::No, &l, &ab, &ipiv, col, n, 1);
        let res = gbrfs(work.as_ref(), &l, &ab, &ipiv, &rhs_scaled, col);
        berr.push(res.berr);
        iters.push(res.iterations);
        // Unscale: x = C y.
        if apply {
            let e = eq.as_ref().unwrap();
            for (v, cc) in col.iter_mut().zip(&e.c) {
                *v *= cc;
            }
        }
    }

    GbsvxResult {
        info: 0,
        rcond,
        berr,
        equilibrated: apply,
        equilibration: if apply { eq } else { None },
        refine_iters: iters,
    }
}

/// Convenience wrapper: expert-solve and report the worst normwise
/// backward error against the original (unscaled) system.
pub fn gbsvx_checked(a: &BandMatrix, b0: &[f64], nrhs: usize) -> (GbsvxResult, Vec<f64>, f64) {
    let n = a.layout().n;
    let mut x = b0.to_vec();
    let res = gbsvx(a, &mut x, nrhs);
    let mut worst = 0.0f64;
    if res.info == 0 {
        for c in 0..nrhs {
            let e = crate::residual::backward_error(
                BandMatrixRef {
                    layout: a.layout(),
                    data: a.data(),
                },
                &x[c * n..(c + 1) * n],
                &b0[c * n..(c + 1) * n],
            );
            worst = worst.max(e);
        }
    }
    (res, x, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas2::gbmv;

    fn graded(n: usize, decades: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, 2, 1).unwrap();
        let mut v = 0.43f64;
        for j in 0..n {
            let s = 10f64.powf(-decades * j as f64 / (n - 1) as f64);
            let (lo, hi) = a.layout().col_rows(j);
            for i in lo..hi {
                v = (v * 1.9 + 0.17).fract();
                a.set(i, j, (v - 0.5) * s + if i == j { 2.0 * s } else { 0.0 });
            }
        }
        a
    }

    #[test]
    fn expert_driver_on_badly_scaled_system() {
        let n = 24;
        let a = graded(n, 9.0);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
        let (res, _x, worst) = gbsvx_checked(&a, &b, 1);
        assert_eq!(res.info, 0);
        assert!(
            res.equilibrated,
            "9 decades of grading must trigger equilibration"
        );
        assert!(worst < 1e-12, "backward error {worst:.2e}");
        assert!(
            res.berr[0] <= 16.0 * f64::EPSILON,
            "componentwise berr {:.2e}",
            res.berr[0]
        );
        // The equilibrated matrix is well conditioned even though A is not.
        assert!(res.rcond > 1e-4, "rcond {:.2e}", res.rcond);
    }

    #[test]
    fn well_scaled_system_skips_equilibration() {
        let n = 16;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 4.0);
            if j > 0 {
                a.set(j, j - 1, -1.0);
                a.set(j - 1, j, -1.0);
            }
        }
        let mut b = vec![1.0; n];
        let res = gbsvx(&a, &mut b, 1);
        assert_eq!(res.info, 0);
        assert!(!res.equilibrated);
        assert!(is_reliable(&res));
        assert!(res.rcond > 0.1);
    }

    #[test]
    fn multiple_rhs_each_get_refined() {
        let n = 20;
        let a = graded(n, 5.0);
        let nrhs = 3;
        let mut b = vec![0.0; n * nrhs];
        for c in 0..nrhs {
            let x: Vec<f64> = (0..n).map(|i| (i + c) as f64 * 0.3 - 2.0).collect();
            let mut col = vec![0.0; n];
            gbmv(1.0, a.as_ref(), &x, 0.0, &mut col);
            b[c * n..(c + 1) * n].copy_from_slice(&col);
        }
        let (res, _x, worst) = gbsvx_checked(&a, &b, nrhs);
        assert_eq!(res.berr.len(), nrhs);
        assert_eq!(res.refine_iters.len(), nrhs);
        assert!(worst < 1e-12);
        for &e in &res.berr {
            assert!(e <= 16.0 * f64::EPSILON);
        }
    }

    #[test]
    fn singular_system_reported_not_solved() {
        let n = 8;
        let a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap(); // zero matrix
        let mut b = vec![1.0; n];
        let res = gbsvx(&a, &mut b, 1);
        assert!(res.info != 0);
        assert_eq!(res.rcond, 0.0);
        assert!(!is_reliable(&res));
    }
}
