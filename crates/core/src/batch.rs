//! Uniform batches of band matrices, pivots, right-hand sides and info codes.
//!
//! The paper's batch interface (Section 4) passes arrays of device pointers
//! (`double** A_array`, `int** pv_array`, `double** B_array`) plus an `info`
//! array. In safe Rust the same shape is expressed as contiguous storage with
//! per-matrix sub-slices; `BandBatch::chunks_mut` yields exactly the view a
//! `double**` entry would point at.

use crate::band::{BandMatrixMut, BandMatrixRef};
use crate::error::{BandError, Result};
use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// A uniform batch of band matrices (same `m, n, kl, ku, ldab`), stored
/// contiguously matrix-after-matrix. Generic over the element [`Scalar`];
/// defaults to the paper's `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct BandBatch<S: Scalar = f64> {
    layout: BandLayout,
    batch: usize,
    data: Vec<S>,
}

impl<S: Scalar> BandBatch<S> {
    /// Zero-initialized batch in factor storage.
    pub fn zeros(batch: usize, m: usize, n: usize, kl: usize, ku: usize) -> Result<Self> {
        let layout = BandLayout::factor(m, n, kl, ku)?;
        if batch == 0 {
            return Err(BandError::BadDimension {
                arg: "batch",
                constraint: "batch > 0",
            });
        }
        Ok(BandBatch {
            batch,
            data: vec![S::ZERO; layout.len() * batch],
            layout,
        })
    }

    /// Zero-initialized batch with an explicit layout (any storage
    /// flavour, any valid `ldab`) — the general constructor behind
    /// layout-conversion code such as
    /// [`crate::interleaved::InterleavedBandBatch::to_batch`].
    pub fn zeros_with_layout(layout: BandLayout, batch: usize) -> Result<Self> {
        if batch == 0 {
            return Err(BandError::BadDimension {
                arg: "batch",
                constraint: "batch > 0",
            });
        }
        Ok(BandBatch {
            batch,
            data: vec![S::ZERO; layout.len() * batch],
            layout,
        })
    }

    /// Build a batch from a closure producing each matrix's band data.
    pub fn from_fn(
        batch: usize,
        m: usize,
        n: usize,
        kl: usize,
        ku: usize,
        mut fill: impl FnMut(usize, &mut BandMatrixMut<'_, S>),
    ) -> Result<Self> {
        let mut b = Self::zeros(batch, m, n, kl, ku)?;
        let layout = b.layout;
        for (id, chunk) in b.data.chunks_mut(layout.len()).enumerate() {
            let mut view = BandMatrixMut {
                layout,
                data: chunk,
            };
            fill(id, &mut view);
        }
        Ok(b)
    }

    /// Layout shared by every matrix in the batch.
    #[inline]
    #[must_use]
    pub fn layout(&self) -> BandLayout {
        self.layout
    }

    /// Number of matrices.
    #[inline]
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Stride in `f64` elements between consecutive matrices.
    #[inline]
    #[must_use]
    pub fn matrix_stride(&self) -> usize {
        self.layout.len()
    }

    /// Read-only view of matrix `id`.
    #[must_use]
    pub fn matrix(&self, id: usize) -> BandMatrixRef<'_, S> {
        assert!(
            id < self.batch,
            "matrix id {id} out of range (< {})",
            self.batch
        );
        let s = self.matrix_stride();
        BandMatrixRef {
            layout: self.layout,
            data: &self.data[id * s..(id + 1) * s],
        }
    }

    /// Mutable view of matrix `id`.
    pub fn matrix_mut(&mut self, id: usize) -> BandMatrixMut<'_, S> {
        assert!(
            id < self.batch,
            "matrix id {id} out of range (< {})",
            self.batch
        );
        let s = self.matrix_stride();
        let layout = self.layout;
        BandMatrixMut {
            layout,
            data: &mut self.data[id * s..(id + 1) * s],
        }
    }

    /// Iterator over per-matrix band arrays (the `double**` view).
    pub fn chunks(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks(self.layout.len())
    }

    /// Mutable iterator over per-matrix band arrays.
    pub fn chunks_mut(&mut self) -> impl Iterator<Item = &mut [S]> {
        let s = self.layout.len();
        self.data.chunks_mut(s)
    }

    /// Whole contiguous storage.
    #[inline]
    #[must_use]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Whole contiguous storage, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Total bytes of the batch payload (used by the timing models).
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }
}

/// Batch of pivot vectors (0-based indices), `min(m, n)` entries per matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PivotBatch {
    per_matrix: usize,
    batch: usize,
    data: Vec<i32>,
}

impl PivotBatch {
    /// Pivot storage for `batch` factorizations of `m x n` matrices.
    pub fn new(batch: usize, m: usize, n: usize) -> Self {
        let per_matrix = m.min(n);
        PivotBatch {
            per_matrix,
            batch,
            data: vec![0; per_matrix * batch],
        }
    }

    /// Pivot count per matrix.
    #[inline]
    #[must_use]
    pub fn per_matrix(&self) -> usize {
        self.per_matrix
    }

    /// Number of matrices.
    #[inline]
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Pivot vector of matrix `id`.
    #[must_use]
    pub fn pivots(&self, id: usize) -> &[i32] {
        &self.data[id * self.per_matrix..(id + 1) * self.per_matrix]
    }

    /// Mutable pivot vector of matrix `id`.
    pub fn pivots_mut(&mut self, id: usize) -> &mut [i32] {
        &mut self.data[id * self.per_matrix..(id + 1) * self.per_matrix]
    }

    /// Mutable iterator over per-matrix pivot vectors.
    pub fn chunks_mut(&mut self) -> impl Iterator<Item = &mut [i32]> {
        let s = self.per_matrix;
        self.data.chunks_mut(s)
    }

    /// All pivots as one flat slice, matrix-after-matrix (`per_matrix`
    /// entries per matrix). The kernel layer splits this into contiguous
    /// per-chunk sub-slices for parallel execution.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// All pivots as one flat mutable slice, matrix-after-matrix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Convert every pivot to LAPACK's 1-based convention, flattened
    /// matrix-after-matrix like [`PivotBatch::as_slice`].
    ///
    /// This workspace stores pivots **0-based**: `pivots(id)[j] = j + jp`
    /// means rows `j` and `j + jp` of matrix `id` were swapped at column
    /// step `j`. LAPACK's `IPIV` is 1-based, so the conversion is `p + 1`
    /// entry-wise and the exact inverse is
    /// [`PivotBatch::set_from_lapack_one_based`] (`p - 1`): the two form a
    /// lossless round trip for every valid pivot value, including the
    /// identity pivot `ipiv[j] = j` (which LAPACK reports as `j + 1`).
    /// [`InfoArray`] needs no such conversion — its codes already use the
    /// LAPACK convention verbatim (`0` = success, `j > 0` = first zero
    /// pivot at 1-based column `j`) and round-trip unchanged.
    #[must_use]
    pub fn to_lapack_one_based(&self) -> Vec<i32> {
        self.data.iter().map(|&p| p + 1).collect()
    }

    /// Overwrite all pivots from a flat LAPACK 1-based vector — the inverse
    /// of [`PivotBatch::to_lapack_one_based`].
    ///
    /// # Panics
    /// Panics when `one_based` does not hold exactly
    /// `per_matrix * batch` entries.
    pub fn set_from_lapack_one_based(&mut self, one_based: &[i32]) {
        assert_eq!(
            one_based.len(),
            self.data.len(),
            "pivot vector length mismatch"
        );
        for (dst, &p) in self.data.iter_mut().zip(one_based) {
            *dst = p - 1;
        }
    }
}

/// Per-matrix return codes, LAPACK convention: `0` = success, `j > 0` = the
/// `j`-th (1-based) pivot was exactly zero — the factorization finished but
/// `U` is singular and a solve would divide by zero.
///
/// Unlike [`PivotBatch`] (0-based internally, converted through
/// [`PivotBatch::to_lapack_one_based`]), info codes are stored in the
/// LAPACK convention directly: `as_slice` *is* the `info` array a
/// `dgbtrf_batch` C interface would return, no conversion, and therefore
/// round-trips unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoArray {
    data: Vec<i32>,
}

impl InfoArray {
    /// All-success info array for `batch` problems.
    pub fn new(batch: usize) -> Self {
        InfoArray {
            data: vec![0; batch],
        }
    }

    /// Number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Info code of matrix `id`.
    #[inline]
    #[must_use]
    pub fn get(&self, id: usize) -> i32 {
        self.data[id]
    }

    /// Set info code of matrix `id`.
    #[inline]
    pub fn set(&mut self, id: usize, info: i32) {
        self.data[id] = info;
    }

    /// Raw slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable raw slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// True when every problem factored without a zero pivot.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.data.iter().all(|&i| i == 0)
    }

    /// Ids of the problems that hit a zero pivot.
    #[must_use]
    pub fn failures(&self) -> Vec<usize> {
        self.data
            .iter()
            .enumerate()
            .filter_map(|(id, &i)| (i != 0).then_some(id))
            .collect()
    }
}

/// Batch of right-hand-side / solution blocks: each matrix gets an
/// `ldb x nrhs` column-major block (`ldb >= n`).
#[derive(Debug, Clone, PartialEq)]
pub struct RhsBatch<S: Scalar = f64> {
    n: usize,
    nrhs: usize,
    ldb: usize,
    batch: usize,
    data: Vec<S>,
}

impl<S: Scalar> RhsBatch<S> {
    /// Zero RHS batch with minimal `ldb = n`.
    pub fn zeros(batch: usize, n: usize, nrhs: usize) -> Result<Self> {
        Self::zeros_with_ldb(batch, n, nrhs, n)
    }

    /// Zero RHS batch with explicit leading dimension.
    pub fn zeros_with_ldb(batch: usize, n: usize, nrhs: usize, ldb: usize) -> Result<Self> {
        if n == 0 || nrhs == 0 || batch == 0 {
            return Err(BandError::BadDimension {
                arg: "n/nrhs/batch",
                constraint: "all of n, nrhs, batch > 0",
            });
        }
        if ldb < n {
            return Err(BandError::BadDimension {
                arg: "ldb",
                constraint: "ldb >= n",
            });
        }
        Ok(RhsBatch {
            n,
            nrhs,
            ldb,
            batch,
            data: vec![S::ZERO; ldb * nrhs * batch],
        })
    }

    /// Fill from a closure `value(matrix_id, row, rhs_col)`.
    pub fn from_fn(
        batch: usize,
        n: usize,
        nrhs: usize,
        mut value: impl FnMut(usize, usize, usize) -> S,
    ) -> Result<Self> {
        let mut b = Self::zeros(batch, n, nrhs)?;
        for id in 0..batch {
            for col in 0..nrhs {
                for row in 0..n {
                    let v = value(id, row, col);
                    b.block_mut(id)[col * n + row] = v;
                }
            }
        }
        Ok(b)
    }

    /// System order.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of right-hand sides per matrix.
    #[inline]
    #[must_use]
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Leading dimension of each block.
    #[inline]
    #[must_use]
    pub fn ldb(&self) -> usize {
        self.ldb
    }

    /// Number of matrices.
    #[inline]
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Stride between matrices in `f64` elements.
    #[inline]
    #[must_use]
    pub fn block_stride(&self) -> usize {
        self.ldb * self.nrhs
    }

    /// RHS block of matrix `id` (`ldb x nrhs`, column-major).
    #[must_use]
    pub fn block(&self, id: usize) -> &[S] {
        let s = self.block_stride();
        &self.data[id * s..(id + 1) * s]
    }

    /// Mutable RHS block of matrix `id`.
    pub fn block_mut(&mut self, id: usize) -> &mut [S] {
        let s = self.block_stride();
        &mut self.data[id * s..(id + 1) * s]
    }

    /// Mutable iterator over per-matrix blocks.
    pub fn blocks_mut(&mut self) -> impl Iterator<Item = &mut [S]> {
        let s = self.block_stride();
        self.data.chunks_mut(s)
    }

    /// Read iterator over per-matrix blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks(self.block_stride())
    }

    /// Element `(row, rhs_col)` of matrix `id`.
    #[inline]
    #[must_use]
    pub fn get(&self, id: usize, row: usize, col: usize) -> S {
        self.block(id)[col * self.ldb + row]
    }

    /// Whole contiguous storage.
    #[inline]
    #[must_use]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Whole contiguous storage, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Total payload bytes.
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_batch_isolation() {
        let mut b = BandBatch::zeros(3, 4, 4, 1, 1).unwrap();
        b.matrix_mut(1).set(2, 2, 5.0);
        assert_eq!(b.matrix(0).get(2, 2), 0.0);
        assert_eq!(b.matrix(1).get(2, 2), 5.0);
        assert_eq!(b.matrix(2).get(2, 2), 0.0);
    }

    #[test]
    fn band_batch_from_fn_assigns_ids() {
        let b = BandBatch::from_fn(4, 3, 3, 1, 1, |id, m| {
            for j in 0..3 {
                m.set(j, j, id as f64 + 1.0);
            }
        })
        .unwrap();
        for id in 0..4 {
            assert_eq!(b.matrix(id).get(1, 1), id as f64 + 1.0);
        }
    }

    #[test]
    fn band_batch_chunk_stride() {
        let b = BandBatch::<f64>::zeros(2, 5, 5, 2, 1).unwrap();
        assert_eq!(b.matrix_stride(), b.layout().len());
        assert_eq!(b.chunks().count(), 2);
        assert_eq!(b.bytes(), 2 * b.layout().len() * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn band_batch_bad_id_panics() {
        let b = BandBatch::<f64>::zeros(2, 3, 3, 1, 1).unwrap();
        let _ = b.matrix(2);
    }

    #[test]
    fn pivot_batch_layout() {
        let mut p = PivotBatch::new(3, 5, 4);
        assert_eq!(p.per_matrix(), 4);
        p.pivots_mut(2)[3] = 7;
        assert_eq!(p.pivots(2)[3], 7);
        assert_eq!(p.pivots(0)[3], 0);
        let one_based = p.to_lapack_one_based();
        assert_eq!(one_based[2 * 4 + 3], 8);
        assert_eq!(p.batch(), 3);
    }

    #[test]
    fn pivot_lapack_round_trip() {
        let mut p = PivotBatch::new(2, 4, 4);
        for id in 0..2 {
            for j in 0..4 {
                p.pivots_mut(id)[j] = (j + (id + j) % 2) as i32; // j or j+1
            }
        }
        let one_based = p.to_lapack_one_based();
        assert!(one_based.iter().all(|&v| v >= 1), "1-based values");
        let mut back = PivotBatch::new(2, 4, 4);
        back.set_from_lapack_one_based(&one_based);
        assert_eq!(p, back, "0-based -> 1-based -> 0-based is lossless");
        assert_eq!(p.as_slice().len(), 8);
        p.as_mut_slice()[0] = 3;
        assert_eq!(p.pivots(0)[0], 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pivot_lapack_round_trip_checks_length() {
        let mut p = PivotBatch::new(2, 4, 4);
        p.set_from_lapack_one_based(&[1, 2, 3]);
    }

    #[test]
    fn band_batch_zeros_with_layout() {
        use crate::layout::BandStorage;
        let l = BandLayout::with_ldab(6, 6, 1, 1, 5, BandStorage::Factor).unwrap();
        let b = BandBatch::<f64>::zeros_with_layout(l, 3).unwrap();
        assert_eq!(b.layout(), l);
        assert_eq!(b.data().len(), l.len() * 3);
        assert!(BandBatch::<f64>::zeros_with_layout(l, 0).is_err());
    }

    #[test]
    fn info_array_failure_reporting() {
        let mut info = InfoArray::new(4);
        assert!(info.all_ok());
        info.set(2, 3);
        assert!(!info.all_ok());
        assert_eq!(info.failures(), vec![2]);
        assert_eq!(info.get(2), 3);
        assert_eq!(info.len(), 4);
    }

    #[test]
    #[allow(clippy::identity_op)] // col * stride + row, spelled out
    fn rhs_batch_indexing() {
        let mut r = RhsBatch::zeros(2, 3, 2).unwrap();
        r.block_mut(1)[1 * 3 + 2] = 9.0; // matrix 1, rhs col 1, row 2
        assert_eq!(r.get(1, 2, 1), 9.0);
        assert_eq!(r.get(0, 2, 1), 0.0);
        assert_eq!(r.block_stride(), 6);
        assert_eq!(r.bytes(), 2 * 6 * 8);
    }

    #[test]
    fn rhs_from_fn() {
        let r =
            RhsBatch::from_fn(2, 3, 2, |id, row, col| (id * 100 + col * 10 + row) as f64).unwrap();
        assert_eq!(r.get(1, 2, 1), 112.0);
        assert_eq!(r.get(0, 0, 0), 0.0);
        assert_eq!(r.get(0, 1, 1), 11.0);
    }

    #[test]
    fn rhs_validates_ldb() {
        assert!(RhsBatch::<f64>::zeros_with_ldb(1, 4, 1, 3).is_err());
        assert!(RhsBatch::<f64>::zeros_with_ldb(1, 4, 1, 6).is_ok());
    }
}
