//! Symmetric positive-definite band Cholesky (`DPBTF2`/`DPBTRS`/`DPBSV`
//! semantics, lower storage).
//!
//! The XGC/WDMApp systems of paper §2.2 come from an elliptic (collision)
//! operator: symmetric positive definite. A Cholesky factorization does
//! half the work of the LU path, needs **no pivoting** (so no fill-in rows
//! and no `ju` bookkeeping), and its band storage is just `kd + 1` rows.
//! This module provides the sequential routines; the batched GPU kernel
//! lives in `gbatch-kernels::pbtrf`.
//!
//! Lower band storage: `A(i, j)` for `j <= i <= j + kd` lives at
//! `AB[i - j, j]` of a column-major `(kd + 1) x n` array.

/// Geometry of an SPD band matrix in lower band storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbLayout {
    /// Matrix order.
    pub n: usize,
    /// Number of sub-diagonals.
    pub kd: usize,
    /// Leading dimension (`>= kd + 1`).
    pub ldab: usize,
}

impl PbLayout {
    /// Minimal layout for order `n`, bandwidth `kd`.
    pub fn new(n: usize, kd: usize) -> Self {
        assert!(n > 0 && kd < n, "require 0 < n and kd < n");
        PbLayout {
            n,
            kd,
            ldab: kd + 1,
        }
    }

    /// Elements of the band array.
    #[inline]
    pub fn len(&self) -> usize {
        self.ldab * self.n
    }

    /// True when the layout holds no elements (never for valid layouts).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of element `(i, j)` with `j <= i <= j + kd`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j && i - j <= self.kd);
        j * self.ldab + (i - j)
    }
}

/// Unblocked band Cholesky, lower storage (`DPBTF2('L')`). Overwrites `ab`
/// with `L` (diagonal in row 0). Returns 0 on success or the 1-based index
/// of the first non-positive pivot (matrix not positive definite); like
/// LAPACK, the factorization stops there.
pub fn pbtf2(l: &PbLayout, ab: &mut [f64]) -> i32 {
    let (n, kd) = (l.n, l.kd);
    for j in 0..n {
        let ajj = ab[l.idx(j, j)];
        if ajj <= 0.0 {
            return (j + 1) as i32;
        }
        let ajj = ajj.sqrt();
        ab[l.idx(j, j)] = ajj;
        let kn = kd.min(n - 1 - j);
        if kn > 0 {
            let base = l.idx(j, j);
            for k in 1..=kn {
                ab[base + k] /= ajj;
            }
            // Symmetric rank-1 update of the trailing kn x kn block (lower
            // triangle only).
            for c in 1..=kn {
                let xc = ab[base + c];
                if xc == 0.0 {
                    continue;
                }
                let col = l.idx(j + c, j + c);
                for r in c..=kn {
                    ab[col + (r - c)] -= ab[base + r] * xc;
                }
            }
        }
    }
    0
}

/// Band triangular solves from a Cholesky factorization
/// (`DPBTRS('L')`): `L L^T x = b`, `b` is `n x nrhs` column-major
/// (`ldb >= n`), overwritten with `x`.
pub fn pbtrs(l: &PbLayout, ab: &[f64], b: &mut [f64], ldb: usize, nrhs: usize) {
    let (n, kd) = (l.n, l.kd);
    debug_assert!(ldb >= n);
    for c in 0..nrhs {
        // Forward: L y = b.
        for j in 0..n {
            let yj = b[c * ldb + j] / ab[l.idx(j, j)];
            b[c * ldb + j] = yj;
            if yj != 0.0 {
                let kn = kd.min(n - 1 - j);
                let base = l.idx(j, j);
                for k in 1..=kn {
                    b[c * ldb + j + k] -= ab[base + k] * yj;
                }
            }
        }
        // Backward: L^T x = y.
        for j in (0..n).rev() {
            let kn = kd.min(n - 1 - j);
            let base = l.idx(j, j);
            let mut acc = b[c * ldb + j];
            for k in 1..=kn {
                acc -= ab[base + k] * b[c * ldb + j + k];
            }
            b[c * ldb + j] = acc / ab[base];
        }
    }
}

/// Driver: factorize and solve (`DPBSV('L')`). Returns the `pbtf2` info;
/// the solve is skipped when the matrix is not positive definite.
pub fn pbsv(l: &PbLayout, ab: &mut [f64], b: &mut [f64], ldb: usize, nrhs: usize) -> i32 {
    let info = pbtf2(l, ab);
    if info == 0 {
        pbtrs(l, ab, b, ldb, nrhs);
    }
    info
}

/// SPD band matvec `y = A x` from lower storage (uses symmetry).
pub fn pbmv(l: &PbLayout, ab: &[f64], x: &[f64], y: &mut [f64]) {
    let (n, kd) = (l.n, l.kd);
    debug_assert!(x.len() >= n && y.len() >= n);
    y[..n].fill(0.0);
    for j in 0..n {
        let kn = kd.min(n - 1 - j);
        let base = l.idx(j, j);
        y[j] += ab[base] * x[j];
        for k in 1..=kn {
            let v = ab[base + k];
            y[j + k] += v * x[j];
            y[j] += v * x[j + k];
        }
    }
}

/// Convert lower SPD band storage to the general `gbtrf` factor storage
/// (for cross-validation against the LU path).
pub fn pb_to_general(l: &PbLayout, ab: &[f64]) -> crate::band::BandMatrix {
    let mut g = crate::band::BandMatrix::zeros_factor(l.n, l.n, l.kd, l.kd).expect("dims");
    for j in 0..l.n {
        let kn = l.kd.min(l.n - 1 - j);
        let base = l.idx(j, j);
        g.set(j, j, ab[base]);
        for k in 1..=kn {
            g.set(j + k, j, ab[base + k]);
            g.set(j, j + k, ab[base + k]);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SPD band: diagonally dominant symmetric.
    fn spd(n: usize, kd: usize, seed: f64) -> (PbLayout, Vec<f64>) {
        let l = PbLayout::new(n, kd);
        let mut ab = vec![0.0; l.len()];
        let mut v = seed;
        for j in 0..n {
            let kn = kd.min(n - 1 - j);
            let mut sum = 0.0;
            for k in 1..=kn {
                v = (v * 2.3 + 0.19).fract();
                let w = v - 0.5;
                ab[l.idx(j + k, j)] = w;
                sum += w.abs();
            }
            // Diagonal dominant over both halves of the symmetric row.
            ab[l.idx(j, j)] = 2.0 * (sum + 1.0) + kd as f64;
        }
        (l, ab)
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let (l, a0) = spd(12, 3, 0.37);
        let mut ab = a0.clone();
        assert_eq!(pbtf2(&l, &mut ab), 0);
        // Rebuild A = L L^T and compare the lower band.
        let n = l.n;
        for j in 0..n {
            for i in j..(j + l.kd + 1).min(n) {
                // (L L^T)(i, j) = sum_k L(i, k) L(j, k), k <= min(i, j) = j.
                let mut s = 0.0;
                for k in j.saturating_sub(l.kd)..=j {
                    if i >= k && i - k <= l.kd {
                        s += ab[l.idx(i, k)] * ab[l.idx(j, k)];
                    }
                }
                let want = a0[l.idx(i, j)];
                assert!(
                    (s - want).abs() < 1e-12 * want.abs().max(1.0),
                    "({i},{j}): {s} vs {want}"
                );
            }
        }
    }

    #[test]
    fn pbsv_solves() {
        let (l, a0) = spd(30, 4, 0.71);
        let x_true: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; 30];
        pbmv(&l, &a0, &x_true, &mut b);
        let mut ab = a0.clone();
        assert_eq!(pbsv(&l, &mut ab, &mut b, 30, 1), 0);
        for i in 0..30 {
            assert!((b[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn agrees_with_lu_path() {
        // Same SPD matrix through gbsv must give the same solution.
        let (l, a0) = spd(20, 2, 0.53);
        let g = pb_to_general(&l, &a0);
        let x_true: Vec<f64> = (0..20).map(|i| 1.0 - (i % 4) as f64).collect();
        let mut b = vec![0.0; 20];
        pbmv(&l, &a0, &x_true, &mut b);
        let mut b_lu = b.clone();
        let gl = g.layout();
        let mut gab = g.data().to_vec();
        let mut piv = vec![0i32; 20];
        assert_eq!(
            crate::gbsv::gbsv(&gl, &mut gab, &mut piv, &mut b_lu, 20, 1),
            0
        );
        let mut ab = a0.clone();
        let mut b_ch = b.clone();
        assert_eq!(pbsv(&l, &mut ab, &mut b_ch, 20, 1), 0);
        for i in 0..20 {
            assert!(
                (b_ch[i] - b_lu[i]).abs() < 1e-11,
                "row {i}: {} vs {}",
                b_ch[i],
                b_lu[i]
            );
        }
    }

    #[test]
    fn not_positive_definite_detected() {
        let l = PbLayout::new(5, 1);
        let mut ab = vec![0.0; l.len()];
        for j in 0..5 {
            ab[l.idx(j, j)] = 1.0;
        }
        ab[l.idx(3, 3)] = -2.0; // indefinite
        assert_eq!(pbtf2(&l, &mut ab), 4);
    }

    #[test]
    fn multiple_rhs() {
        let (l, a0) = spd(16, 3, 0.11);
        let nrhs = 4;
        let mut xs = vec![0.0; 16 * nrhs];
        for (k, v) in xs.iter_mut().enumerate() {
            *v = ((k * 7 % 13) as f64) - 6.0;
        }
        let mut b = vec![0.0; 16 * nrhs];
        for c in 0..nrhs {
            let mut y = vec![0.0; 16];
            pbmv(&l, &a0, &xs[c * 16..(c + 1) * 16], &mut y);
            b[c * 16..(c + 1) * 16].copy_from_slice(&y);
        }
        let mut ab = a0.clone();
        assert_eq!(pbsv(&l, &mut ab, &mut b, 16, nrhs), 0);
        for k in 0..16 * nrhs {
            assert!((b[k] - xs[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn diagonal_case() {
        let l = PbLayout::new(4, 0);
        let mut ab = vec![4.0, 9.0, 16.0, 25.0];
        assert_eq!(pbtf2(&l, &mut ab), 0);
        assert_eq!(ab, vec![2.0, 3.0, 4.0, 5.0]);
        let mut b = vec![4.0, 9.0, 16.0, 25.0];
        pbtrs(&l, &ab, &mut b, 4, 1);
        assert_eq!(b, vec![1.0, 1.0, 1.0, 1.0]);
    }
}
