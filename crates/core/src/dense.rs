//! Small dense LAPACK-style routines (column-major), used as test oracles
//! for the band solver and as the workload of the Figure 1 motivation
//! experiment (batched `dgemm`/`dgemv`).

use crate::blas1::iamax;

/// Unblocked dense LU with partial pivoting (`DGETF2` semantics).
/// `a` is `m x n` column-major with leading dimension `lda`; `ipiv` gets
/// `min(m, n)` 0-based pivot rows. Returns LAPACK info (0 or 1-based index
/// of the first zero pivot).
pub fn getrf(m: usize, n: usize, a: &mut [f64], lda: usize, ipiv: &mut [i32]) -> i32 {
    debug_assert!(a.len() >= lda * n && lda >= m);
    debug_assert!(ipiv.len() >= m.min(n));
    let mut info = 0i32;
    for j in 0..m.min(n) {
        // Pivot search in column j, rows j..m.
        let col = &a[j * lda + j..j * lda + m];
        let jp = j + iamax(col);
        ipiv[j] = jp as i32;
        if a[j * lda + jp] != 0.0 {
            if jp != j {
                // Swap rows j and jp across all n columns.
                for c in 0..n {
                    a.swap(c * lda + j, c * lda + jp);
                }
            }
            if j + 1 < m {
                let piv = a[j * lda + j];
                let inv = 1.0 / piv;
                for i in (j + 1)..m {
                    a[j * lda + i] *= inv;
                }
                // Trailing update.
                for c in (j + 1)..n {
                    let u = a[c * lda + j];
                    if u == 0.0 {
                        continue;
                    }
                    for i in (j + 1)..m {
                        a[c * lda + i] -= a[j * lda + i] * u;
                    }
                }
            }
        } else if info == 0 {
            info = (j + 1) as i32;
        }
    }
    info
}

/// Dense triangular solve from an LU factorization (`DGETRS`, no transpose).
/// `b` is `n x nrhs` column-major with leading dimension `ldb`.
pub fn getrs(
    n: usize,
    nrhs: usize,
    lu: &[f64],
    lda: usize,
    ipiv: &[i32],
    b: &mut [f64],
    ldb: usize,
) {
    debug_assert!(lu.len() >= lda * n && b.len() >= ldb * nrhs && ldb >= n);
    // Apply P: forward swaps.
    for j in 0..n {
        let p = ipiv[j] as usize;
        if p != j {
            for c in 0..nrhs {
                b.swap(c * ldb + j, c * ldb + p);
            }
        }
    }
    // Solve L y = Pb (unit lower).
    for c in 0..nrhs {
        for j in 0..n {
            let bj = b[c * ldb + j];
            if bj == 0.0 {
                continue;
            }
            for i in (j + 1)..n {
                b[c * ldb + i] -= lu[j * lda + i] * bj;
            }
        }
        // Solve U x = y (non-unit upper).
        for j in (0..n).rev() {
            let bj = b[c * ldb + j] / lu[j * lda + j];
            b[c * ldb + j] = bj;
            if bj != 0.0 {
                for i in 0..j {
                    b[c * ldb + i] -= lu[j * lda + i] * bj;
                }
            }
        }
    }
}

/// Dense column-major matrix multiply `C = alpha * A * B + beta * C`
/// (`A` is `m x k`, `B` is `k x n`, `C` is `m x n`).
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(a.len() >= lda * k && b.len() >= ldb * n && c.len() >= ldc * n);
    for jc in 0..n {
        let ccol = &mut c[jc * ldc..jc * ldc + m];
        if beta == 0.0 {
            ccol.fill(0.0);
        } else if beta != 1.0 {
            for v in ccol.iter_mut() {
                *v *= beta;
            }
        }
        for p in 0..k {
            let bv = alpha * b[jc * ldb + p];
            if bv == 0.0 {
                continue;
            }
            let acol = &a[p * lda..p * lda + m];
            for (cv, &av) in ccol.iter_mut().zip(acol) {
                *cv += av * bv;
            }
        }
    }
}

/// Infinity norm of a dense `m x n` column-major matrix.
pub fn norm_inf(m: usize, n: usize, a: &[f64], lda: usize) -> f64 {
    let mut row = vec![0.0f64; m];
    for j in 0..n {
        for i in 0..m {
            row[i] += a[j * lda + i].abs();
        }
    }
    row.into_iter().fold(0.0, f64::max)
}

/// Reconstruct `P * L * U` from a dense LU factorization, as a dense matrix
/// (test helper; `m x n`).
pub fn reconstruct_plu(m: usize, n: usize, lu: &[f64], lda: usize, ipiv: &[i32]) -> Vec<f64> {
    let kmin = m.min(n);
    // Build L (m x kmin) and U (kmin x n).
    let mut l = vec![0.0; m * kmin];
    let mut u = vec![0.0; kmin * n];
    for j in 0..kmin {
        l[j * m + j] = 1.0;
        for i in (j + 1)..m {
            l[j * m + i] = lu[j * lda + i];
        }
    }
    for j in 0..n {
        for i in 0..=j.min(kmin - 1) {
            u[j * kmin + i] = lu[j * lda + i];
        }
    }
    let mut prod = vec![0.0; m * n];
    gemm(m, n, kmin, 1.0, &l, m, &u, kmin, 0.0, &mut prod, m);
    // Apply row swaps in reverse to undo P^-1: rows were swapped forward
    // during factorization, so reconstruct by applying them backwards.
    for j in (0..kmin).rev() {
        let p = ipiv[j] as usize;
        if p != j {
            for c in 0..n {
                prod.swap(c * m + j, c * m + p);
            }
        }
    }
    prod
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: usize, n: usize, seed: f64) -> Vec<f64> {
        let mut v = seed;
        (0..m * n)
            .map(|_| {
                v = (v * 1.9 + 0.37).fract();
                v - 0.5
            })
            .collect()
    }

    #[test]
    fn getrf_reconstructs_matrix() {
        for (m, n) in [(5, 5), (6, 4), (4, 6)] {
            let a = sample(m, n, 0.21);
            let mut lu = a.clone();
            let mut ipiv = vec![0i32; m.min(n)];
            let info = getrf(m, n, &mut lu, m, &mut ipiv);
            assert_eq!(info, 0);
            let plu = reconstruct_plu(m, n, &lu, m, &ipiv);
            for k in 0..m * n {
                assert!((plu[k] - a[k]).abs() < 1e-12, "PLU != A at {k}");
            }
        }
    }

    #[test]
    fn getrs_solves() {
        let n = 7;
        let a = sample(n, n, 0.77);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let mut b = vec![0.0; n];
        crate::blas2::gemv(n, n, 1.0, &a, n, &x_true, 0.0, &mut b);
        let mut lu = a.clone();
        let mut ipiv = vec![0i32; n];
        assert_eq!(getrf(n, n, &mut lu, n, &mut ipiv), 0);
        getrs(n, 1, &lu, n, &ipiv, &mut b, n);
        for i in 0..n {
            assert!(
                (b[i] - x_true[i]).abs() < 1e-9,
                "x[{i}] = {} != {}",
                b[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn getrs_multiple_rhs() {
        let n = 5;
        let nrhs = 3;
        let a = sample(n, n, 0.13);
        let xs = sample(n, nrhs, 0.5);
        let mut b = vec![0.0; n * nrhs];
        gemm(n, nrhs, n, 1.0, &a, n, &xs, n, 0.0, &mut b, n);
        let mut lu = a.clone();
        let mut ipiv = vec![0i32; n];
        assert_eq!(getrf(n, n, &mut lu, n, &mut ipiv), 0);
        getrs(n, nrhs, &lu, n, &ipiv, &mut b, n);
        for k in 0..n * nrhs {
            assert!((b[k] - xs[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn getrf_singular_info() {
        // Second column is 2x first -> rank deficient; zero pivot at step 2.
        let n = 3;
        let mut a = vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 1.0, 0.0, 1.0];
        let mut ipiv = vec![0i32; n];
        let info = getrf(n, n, &mut a, n, &mut ipiv);
        assert_eq!(info, 2);
    }

    #[test]
    fn gemm_identity() {
        let n = 4;
        let a = sample(n, n, 0.4);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        gemm(n, n, n, 1.0, &a, n, &eye, n, 0.0, &mut c, n);
        assert_eq!(a, c);
    }

    #[test]
    fn norm_inf_matches_manual() {
        // [[1, -2], [3, 4]] col-major: [1, 3, -2, 4]; row sums 3 and 7.
        let a = vec![1.0, 3.0, -2.0, 4.0];
        assert_eq!(norm_inf(2, 2, &a, 2), 7.0);
    }
}
