//! ASCII rendering of the band storage scheme — the paper's Figure 2 as a
//! function, used by docs, examples and debugging sessions.
//!
//! For the paper's example (`9 x 9`, `kl = 2`, `ku = 3`) the column-major
//! view marks in-band entries `*` and the band view adds the `+` fill rows
//! exactly like the figure.

use crate::layout::BandLayout;

/// Render the full-matrix view: `*` in-band, `.` outside.
pub fn dense_view(l: &BandLayout) -> String {
    let mut out = String::new();
    for i in 0..l.m {
        for j in 0..l.n {
            out.push(if l.in_band(i, j) { '*' } else { '.' });
            if j + 1 < l.n {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// Render the band-storage view (`ldab x n`): `+` for fill rows, `*` for
/// stored band entries, `.` for positions outside the matrix (the
/// triangular corners of the band array).
pub fn band_view(l: &BandLayout) -> String {
    let mut out = String::new();
    for r in 0..l.ldab {
        for j in 0..l.n {
            // Band row r of column j maps to full row i = r - row_offset + j.
            let i = r as isize - l.row_offset as isize + j as isize;
            let c = if r < l.row_offset - l.ku {
                // Fill rows reserved for pivoting fill-in (factor storage).
                if i >= 0 {
                    '+'
                } else {
                    '.'
                }
            } else if i >= 0 && (i as usize) < l.m && l.in_band(i as usize, j) {
                '*'
            } else {
                '.'
            };
            out.push(c);
            if j + 1 < l.n {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_dense_view() {
        // The paper's example: 9x9, kl = 2, ku = 3.
        let l = BandLayout::factor(9, 9, 2, 3).unwrap();
        let v = dense_view(&l);
        let lines: Vec<&str> = v.lines().collect();
        assert_eq!(lines.len(), 9);
        // Row 0: diagonal + 3 superdiagonals.
        assert_eq!(lines[0], "* * * * . . . . .");
        // Row 4: full band width (2 below, 3 above).
        assert_eq!(lines[4], ". . * * * * * * .");
        // Last row: 2 subdiagonals + diagonal.
        assert_eq!(lines[8], ". . . . . . * * *");
    }

    #[test]
    fn figure2_band_view() {
        let l = BandLayout::factor(9, 9, 2, 3).unwrap();
        let v = band_view(&l);
        let lines: Vec<&str> = v.lines().collect();
        assert_eq!(lines.len(), 8); // ldab = 2*2 + 3 + 1
                                    // Top kl = 2 rows are fill ('+'), except the leading triangle.
        assert!(lines[0].contains('+'));
        assert!(!lines[0].contains('*'));
        assert!(lines[1].contains('+'));
        // The diagonal row (row kl + ku = 5) is all '*'.
        assert_eq!(lines[5], "* * * * * * * * *");
        // First super-diagonal row (row 4): starts with '.', then '*'s.
        assert!(lines[4].starts_with(". *"));
        // Last sub-diagonal row (row 7): ends with dots (kl = 2 shorter).
        assert!(lines[7].ends_with(". ."));
    }

    #[test]
    fn fill_rows_absent_in_pure_storage() {
        let l = BandLayout::pure(6, 6, 1, 1).unwrap();
        let v = band_view(&l);
        assert!(!v.contains('+'), "pure storage has no fill rows:\n{v}");
        assert_eq!(v.lines().count(), 3);
    }

    #[test]
    fn views_agree_on_band_population() {
        // Count of '*' must match nnz in both views.
        let l = BandLayout::factor(7, 7, 2, 1).unwrap();
        let stars = |s: &str| s.chars().filter(|&c| c == '*').count();
        assert_eq!(stars(&dense_view(&l)), l.nnz());
        assert_eq!(stars(&band_view(&l)), l.nnz());
    }
}
