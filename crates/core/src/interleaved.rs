//! Interleaved (batch-major) band storage.
//!
//! The column-major [`BandBatch`] keeps each matrix's `ldab x n` panel
//! contiguous, so the hot inner loops of a batched factorization stride
//! within one small matrix. The interleaved layout transposes the batch to
//! batch-major order: band element `(r, j)` of *every* matrix in the batch
//! is adjacent in memory, turning the per-column primitives (IAMAX, SWAP,
//! SCAL, rank-1 update, triangular-solve updates) into contiguous sweeps
//! over the batch index — the coalesced/vectorizable access pattern of
//! "Efficient Interleaved Batch Matrix Solvers" (Gloster et al.,
//! arXiv:1909.04539).
//!
//! Storage order: flat element index `e = j * ldab + r` (identical to
//! [`BandLayout::idx`]), and the value of matrix `b` lives at
//! `data[e * batch + b]`. Equivalently the array is `[ldab][n][batch]` with
//! the batch index innermost. Both `Factor` and `Pure` layout flavours are
//! supported, including padded `ldab`, and conversion to/from [`BandBatch`]
//! is lossless: it is a pure transpose of the same `ldab * n * batch`
//! elements.

use crate::batch::BandBatch;
use crate::error::{BandError, Result};
use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// A uniform batch of band matrices in batch-major (interleaved) storage.
///
/// Same geometry as [`BandBatch`] (`m, n, kl, ku, ldab` shared by every
/// matrix), different element order: the batch lane of each band element is
/// contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedBandBatch<S: Scalar = f64> {
    layout: BandLayout,
    batch: usize,
    data: Vec<S>,
}

impl<S: Scalar> InterleavedBandBatch<S> {
    /// Zero-initialized interleaved batch in factor storage.
    pub fn zeros(batch: usize, m: usize, n: usize, kl: usize, ku: usize) -> Result<Self> {
        let layout = BandLayout::factor(m, n, kl, ku)?;
        Self::zeros_with_layout(layout, batch)
    }

    /// Zero-initialized interleaved batch with an explicit layout (any
    /// flavour, any valid `ldab`).
    pub fn zeros_with_layout(layout: BandLayout, batch: usize) -> Result<Self> {
        if batch == 0 {
            return Err(BandError::BadDimension {
                arg: "batch",
                constraint: "batch > 0",
            });
        }
        Ok(InterleavedBandBatch {
            layout,
            batch,
            data: vec![S::ZERO; layout.len() * batch],
        })
    }

    /// Transpose a column-major batch into interleaved storage (lossless:
    /// every one of the `ldab * n * batch` stored elements is carried over,
    /// fill/padding rows included).
    #[must_use = "returns the interleaved copy; the source is unchanged"]
    pub fn from_batch(src: &BandBatch<S>) -> Self {
        let layout = src.layout();
        let batch = src.batch();
        let len = layout.len();
        let mut data = vec![S::ZERO; len * batch];
        // Read each matrix contiguously, scatter with stride `batch`.
        for (b, m) in src.chunks().enumerate() {
            for (e, &v) in m.iter().enumerate() {
                data[e * batch + b] = v;
            }
        }
        InterleavedBandBatch {
            layout,
            batch,
            data,
        }
    }

    /// Transpose back to a column-major [`BandBatch`] (exact inverse of
    /// [`InterleavedBandBatch::from_batch`]).
    #[must_use = "returns the column-major copy; the source is unchanged"]
    pub fn to_batch(&self) -> BandBatch<S> {
        let len = self.layout.len();
        let mut out = BandBatch::zeros_with_layout(self.layout, self.batch)
            .expect("layout/batch already validated");
        for (b, m) in out.chunks_mut().enumerate() {
            for (e, v) in m.iter_mut().enumerate() {
                *v = self.data[e * self.batch + b];
            }
        }
        debug_assert_eq!(out.matrix_stride(), len);
        out
    }

    /// Layout shared by every matrix in the batch.
    #[inline]
    #[must_use]
    pub fn layout(&self) -> BandLayout {
        self.layout
    }

    /// Number of matrices (= lane count).
    #[inline]
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Flat *element* index of band element `(band_row, j)`; the batch lane
    /// of that element occupies `data[idx * batch .. (idx + 1) * batch]`.
    #[inline(always)]
    #[must_use]
    pub fn lane_index(&self, band_row: usize, j: usize) -> usize {
        self.layout.idx(band_row, j)
    }

    /// Contiguous batch lane of band element `(band_row, j)`: entry `b` is
    /// the value of matrix `b`.
    #[inline]
    #[must_use]
    pub fn lanes(&self, band_row: usize, j: usize) -> &[S] {
        let e = self.lane_index(band_row, j);
        &self.data[e * self.batch..(e + 1) * self.batch]
    }

    /// Mutable batch lane of band element `(band_row, j)`.
    #[inline]
    pub fn lanes_mut(&mut self, band_row: usize, j: usize) -> &mut [S] {
        let e = self.lane_index(band_row, j);
        &mut self.data[e * self.batch..(e + 1) * self.batch]
    }

    /// Band element `(band_row, j)` of matrix `id`.
    #[inline]
    #[must_use]
    pub fn get(&self, id: usize, band_row: usize, j: usize) -> S {
        self.lanes(band_row, j)[id]
    }

    /// Set band element `(band_row, j)` of matrix `id`.
    #[inline]
    pub fn set(&mut self, id: usize, band_row: usize, j: usize, v: S) {
        let b = self.batch;
        let e = self.lane_index(band_row, j);
        self.data[e * b + id] = v;
    }

    /// Whole contiguous storage (batch index innermost).
    #[inline]
    #[must_use]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Whole contiguous storage, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Total bytes of the batch payload (used by the timing models).
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BandStorage;

    fn sample_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.17f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.3 + 0.011 + id as f64 * 1e-3).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        for (batch, n, kl, ku) in [(1, 6, 1, 1), (4, 9, 2, 3), (7, 12, 10, 7), (3, 5, 0, 2)] {
            let a = sample_batch(batch, n, kl, ku);
            let i = InterleavedBandBatch::from_batch(&a);
            let back = i.to_batch();
            assert_eq!(a, back, "batch={batch} n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn lane_addressing_matches_column_major() {
        let a = sample_batch(5, 9, 2, 3);
        let l = a.layout();
        let i = InterleavedBandBatch::from_batch(&a);
        for b in 0..5 {
            for j in 0..l.n {
                for r in 0..l.ldab {
                    assert_eq!(i.get(b, r, j), a.matrix(b).data[l.idx(r, j)]);
                    assert_eq!(i.lanes(r, j)[b], a.matrix(b).data[l.idx(r, j)]);
                }
            }
        }
    }

    #[test]
    fn lanes_are_contiguous_in_storage() {
        let a = sample_batch(4, 6, 1, 2);
        let i = InterleavedBandBatch::from_batch(&a);
        let l = i.layout();
        let e = l.idx(2, 3);
        assert_eq!(i.lanes(2, 3), &i.data()[e * 4..e * 4 + 4]);
        assert_eq!(i.lane_index(2, 3), e);
    }

    #[test]
    fn mutation_through_lanes_round_trips() {
        let a = sample_batch(3, 5, 1, 1);
        let mut i = InterleavedBandBatch::from_batch(&a);
        i.lanes_mut(2, 2)[1] = 42.0;
        i.set(2, 3, 4, -7.0);
        let back = i.to_batch();
        assert_eq!(back.matrix(1).data[back.layout().idx(2, 2)], 42.0);
        assert_eq!(back.matrix(2).data[back.layout().idx(3, 4)], -7.0);
        assert_eq!(i.get(1, 2, 2), 42.0);
    }

    #[test]
    fn pure_and_padded_layouts_round_trip() {
        // Pure storage.
        let lp = BandLayout::pure(8, 8, 2, 1).unwrap();
        let mut a = BandBatch::zeros_with_layout(lp, 3).unwrap();
        for (b, m) in a.chunks_mut().enumerate() {
            for (e, v) in m.iter_mut().enumerate() {
                *v = (b * 100 + e) as f64;
            }
        }
        let i = InterleavedBandBatch::from_batch(&a);
        assert_eq!(i.layout().storage(), BandStorage::Pure);
        assert_eq!(i.to_batch(), a);

        // Factor storage with padded ldab.
        let lf = BandLayout::with_ldab(8, 8, 2, 1, 9, BandStorage::Factor).unwrap();
        let mut a = BandBatch::zeros_with_layout(lf, 2).unwrap();
        for (b, m) in a.chunks_mut().enumerate() {
            for (e, v) in m.iter_mut().enumerate() {
                *v = (b * 1000 + e) as f64 * 0.5;
            }
        }
        let i = InterleavedBandBatch::from_batch(&a);
        assert_eq!(i.layout().ldab, 9);
        assert_eq!(i.to_batch(), a);
    }

    #[test]
    fn zeros_constructors() {
        let i = InterleavedBandBatch::<f64>::zeros(4, 6, 6, 1, 2).unwrap();
        assert_eq!(i.batch(), 4);
        assert_eq!(i.layout().ldab, 5); // 2*kl + ku + 1
        assert_eq!(i.data().len(), i.layout().len() * 4);
        assert_eq!(i.bytes(), i.data().len() * 8);
        assert!(i.data().iter().all(|&v| v == 0.0));
        assert!(InterleavedBandBatch::<f64>::zeros(0, 6, 6, 1, 2).is_err());
    }
}
