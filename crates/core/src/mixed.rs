//! Mixed-precision band solve: factor in `f32`, refine to `f64` accuracy.
//!
//! The classic accelerator trick for batched solvers (pioneered for dense
//! `GESV` by the same research group as the paper, e.g. Haidar et al.):
//! a single-precision factorization costs half the memory traffic — the
//! dominant cost of thin-band kernels — and iterative refinement against
//! the double-precision matrix restores full accuracy whenever
//! `kappa(A) << 1/eps_f32 ~ 1e7`. For worse-conditioned systems the driver
//! detects stagnation and falls back to a full `f64` solve, so the result
//! is never worse than the plain path.
//!
//! The low-precision leg runs on the *generic* LU stack instantiated at
//! `f32` ([`crate::gbtf2::gbtf2`] / [`crate::gbtrs::gbtrs`]); the
//! hand-rolled `gbtf2_f32`/`gbtrs_f32` clones this module used to carry are
//! gone — the test module pins the generic path bitwise against their exact
//! original operation sequence.

use crate::band::BandMatrixRef;
use crate::blas2::gbmv;
use crate::gbtf2::gbtf2;
use crate::gbtrs::{gbtrs, Transpose};

/// Maximum refinement sweeps before declaring failure (LAPACK's `DSGESV`
/// uses 30).
pub const ITERMAX: usize = 30;

/// Which path produced the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedOutcome {
    /// Converged through `f32` factorization + refinement; payload is the
    /// sweep count.
    Mixed(usize),
    /// Refinement stagnated; fell back to the full `f64` factorization.
    FellBackToF64,
    /// The `f32` (or fallback `f64`) factorization hit a zero pivot; the
    /// payload is the LAPACK info code.
    Singular(i32),
}

/// Mixed-precision solve of `A x = b` (single RHS): returns the outcome and
/// leaves the solution in `x`.
///
/// Convergence criterion (LAPACK `DSGESV`): the normwise backward error
/// must drop below `sqrt(n) * eps_f64`.
pub fn msgbsv(a: BandMatrixRef<'_>, b: &[f64], x: &mut [f64]) -> MixedOutcome {
    let l = a.layout;
    let n = l.n;
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(x.len(), n);

    // f32 copy + factorization through the generic kernel.
    let mut ab32: Vec<f32> = a.data.iter().map(|&v| v as f32).collect();
    let mut ipiv = vec![0i32; n];
    let info = gbtf2::<f32>(&l, &mut ab32, &mut ipiv);
    if info != 0 {
        // An f32 underflow can create spurious zero pivots; try full f64.
        return f64_fallback(a, b, x);
    }

    // Initial solve in f32.
    let mut b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    gbtrs::<f32>(Transpose::No, &l, &ab32, &ipiv, &mut b32, n, 1);
    for (xi, &v) in x.iter_mut().zip(&b32) {
        *xi = f64::from(v);
    }

    let anorm = {
        let mut row = vec![0.0f64; n];
        for j in 0..n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                row[i] += a.get(i, j).abs();
            }
        }
        row.into_iter().fold(0.0, f64::max)
    };
    let bnorm = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let tol = (n as f64).sqrt() * f64::EPSILON;

    let mut prev_res = f64::INFINITY;
    for iter in 1..=ITERMAX {
        // Residual in f64.
        let mut r = b.to_vec();
        gbmv(-1.0, a, x, 1.0, &mut r);
        let rnorm = r.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let xnorm = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let denom = anorm * xnorm + bnorm;
        if denom == 0.0 || rnorm <= tol * denom {
            return MixedOutcome::Mixed(iter - 1);
        }
        if rnorm >= prev_res * 0.5 {
            // Stagnation: conditioning beyond f32's reach.
            return f64_fallback(a, b, x);
        }
        prev_res = rnorm;
        // Correction in f32.
        let mut r32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
        gbtrs::<f32>(Transpose::No, &l, &ab32, &ipiv, &mut r32, n, 1);
        for (xi, &d) in x.iter_mut().zip(&r32) {
            *xi += f64::from(d);
        }
    }
    f64_fallback(a, b, x)
}

fn f64_fallback(a: BandMatrixRef<'_>, b: &[f64], x: &mut [f64]) -> MixedOutcome {
    let l = a.layout;
    let n = l.n;
    let mut ab = a.data.to_vec();
    let mut ipiv = vec![0i32; n];
    let info = crate::gbtrf::gbtrf(&l, &mut ab, &mut ipiv);
    if info != 0 {
        return MixedOutcome::Singular(info);
    }
    x.copy_from_slice(b);
    crate::gbtrs::gbtrs(crate::gbtrs::Transpose::No, &l, &ab, &ipiv, x, n, 1);
    MixedOutcome::FellBackToF64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::layout::BandLayout;
    use crate::residual::backward_error;

    /// The hand-rolled `f32` band LU this module shipped before the stack
    /// went precision-generic — kept verbatim as the bitwise oracle for the
    /// generic `gbtf2::<f32>` path.
    fn legacy_gbtf2_f32(l: &BandLayout, ab: &mut [f32], ipiv: &mut [i32]) -> i32 {
        let (m, n, kl, ku) = (l.m, l.n, l.kl, l.ku);
        let kv = kl + ku;
        let ldab = l.ldab;
        let idx = |r: usize, c: usize| c * ldab + r;
        for j in (ku + 1)..kv.min(n) {
            for i in (kv - j)..kl {
                ab[idx(i, j)] = 0.0;
            }
        }
        let mut ju = 0usize;
        let mut info = 0i32;
        for j in 0..m.min(n) {
            if j + kv < n {
                for i in 0..kl {
                    ab[idx(i, j + kv)] = 0.0;
                }
            }
            let km = kl.min(m - j - 1);
            let base = idx(kv, j);
            let mut jp = 0usize;
            let mut best = -1.0f32;
            for k in 0..=km {
                let a = ab[base + k].abs();
                if a > best {
                    best = a;
                    jp = k;
                }
            }
            ipiv[j] = (j + jp) as i32;
            if ab[base + jp] != 0.0 {
                ju = ju.max((j + ku + jp).min(n - 1));
                if jp != 0 {
                    for (k, c) in (j..=ju).enumerate() {
                        ab.swap(idx(kv + jp - k, c), idx(kv - k, c));
                    }
                }
                if km > 0 {
                    let inv = 1.0 / ab[base];
                    for k in 1..=km {
                        ab[base + k] *= inv;
                    }
                    for c in 1..=(ju.saturating_sub(j)) {
                        let u = ab[idx(kv - c, j + c)];
                        if u == 0.0 {
                            continue;
                        }
                        let dst = idx(kv - c, j + c);
                        for i in 1..=km {
                            ab[dst + i] -= ab[base + i] * u;
                        }
                    }
                }
            } else if info == 0 {
                info = (j + 1) as i32;
            }
        }
        info
    }

    /// The hand-rolled single-RHS `f32` triangular solve, kept verbatim as
    /// the bitwise oracle for the generic `gbtrs::<f32>` path.
    fn legacy_gbtrs_f32(l: &BandLayout, ab: &[f32], ipiv: &[i32], b: &mut [f32]) {
        let n = l.n;
        let kv = l.kv();
        let ldab = l.ldab;
        let idx = |r: usize, c: usize| c * ldab + r;
        if l.kl > 0 {
            for j in 0..n.saturating_sub(1) {
                let lm = l.kl.min(n - 1 - j);
                let p = ipiv[j] as usize;
                if p != j {
                    b.swap(p, j);
                }
                let bj = b[j];
                if bj != 0.0 {
                    let base = idx(kv, j);
                    for i in 1..=lm {
                        b[j + i] -= ab[base + i] * bj;
                    }
                }
            }
        }
        for j in (0..n).rev() {
            let bj = b[j] / ab[idx(kv, j)];
            b[j] = bj;
            if bj != 0.0 {
                let reach = kv.min(j);
                for i in 1..=reach {
                    b[j - i] -= ab[idx(kv - i, j)] * bj;
                }
            }
        }
    }

    fn band(n: usize, kl: usize, ku: usize, seed: f64, dominance: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 2.3 + 0.17).fract();
                a.set(i, j, v - 0.5 + if i == j { dominance } else { 0.0 });
            }
        }
        a
    }

    /// The satellite pin: the generic `f32` instantiation must reproduce the
    /// deleted hand-rolled `gbtf2_f32`/`gbtrs_f32` bit for bit — factors,
    /// pivots, info, and solutions.
    #[test]
    fn generic_f32_path_matches_legacy_duplicates_bitwise() {
        for (n, kl, ku, seed, dom) in [
            (20, 2, 1, 0.13, 0.0),
            (33, 2, 3, 0.29, 1.5),
            (48, 10, 7, 0.41, 0.0),
            (16, 1, 0, 0.55, 2.0),
            (16, 0, 2, 0.67, 2.0),
        ] {
            let a = band(n, kl, ku, seed, dom);
            let l = a.layout();
            let ab32: Vec<f32> = a.data().iter().map(|&v| v as f32).collect();

            let mut ab_legacy = ab32.clone();
            let mut p_legacy = vec![0i32; n];
            let info_legacy = legacy_gbtf2_f32(&l, &mut ab_legacy, &mut p_legacy);

            let mut ab_generic = ab32.clone();
            let mut p_generic = vec![0i32; n];
            let info_generic = gbtf2::<f32>(&l, &mut ab_generic, &mut p_generic);

            assert_eq!(info_legacy, info_generic, "n={n} kl={kl} ku={ku}");
            assert_eq!(p_legacy, p_generic, "n={n} kl={kl} ku={ku}");
            let legacy_bits: Vec<u32> = ab_legacy.iter().map(|v| v.to_bits()).collect();
            let generic_bits: Vec<u32> = ab_generic.iter().map(|v| v.to_bits()).collect();
            assert_eq!(legacy_bits, generic_bits, "n={n} kl={kl} ku={ku}");

            if info_legacy == 0 {
                let b0: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin()).collect();
                let mut b_legacy = b0.clone();
                legacy_gbtrs_f32(&l, &ab_legacy, &p_legacy, &mut b_legacy);
                let mut b_generic = b0;
                gbtrs::<f32>(
                    Transpose::No,
                    &l,
                    &ab_generic,
                    &p_generic,
                    &mut b_generic,
                    n,
                    1,
                );
                let lb: Vec<u32> = b_legacy.iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = b_generic.iter().map(|v| v.to_bits()).collect();
                assert_eq!(lb, gb, "solve n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn f32_factorization_pivots_match_f64() {
        // Values representable in f32 exactly: pivots must agree.
        let n = 20;
        let mut a = BandMatrix::zeros_factor(n, n, 2, 1).unwrap();
        let mut v = 1i64;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 37 + 11) % 97;
                a.set(i, j, (v - 48) as f64 / 16.0); // exact in f32
            }
        }
        let l = a.layout();
        let mut ab64 = a.data().to_vec();
        let mut p64 = vec![0i32; n];
        crate::gbtf2::gbtf2(&l, &mut ab64, &mut p64);
        let mut ab32: Vec<f32> = a.data().iter().map(|&x| x as f32).collect();
        let mut p32 = vec![0i32; n];
        gbtf2::<f32>(&l, &mut ab32, &mut p32);
        assert_eq!(p64, p32);
    }

    #[test]
    fn mixed_converges_to_f64_accuracy() {
        let n = 64;
        let a = band(n, 2, 3, 0.37, 2.0);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut b = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
        let mut x = vec![0.0; n];
        let outcome = msgbsv(a.as_ref(), &b, &mut x);
        match outcome {
            MixedOutcome::Mixed(iters) => {
                assert!(iters <= 5, "well-conditioned: few sweeps, got {iters}");
            }
            other => panic!("expected mixed convergence, got {other:?}"),
        }
        let berr = backward_error(a.as_ref(), &x, &b);
        assert!(berr < 1e-13, "f64-level backward error, got {berr:.2e}");
    }

    #[test]
    fn ill_conditioned_falls_back() {
        // Upper bidiagonal with diag 1 and superdiagonal -2:
        // kappa ~ 2^n >> 1/eps_f32, so f32 refinement cannot reduce the
        // error and the driver must fall back to f64.
        let n = 60;
        let mut a = BandMatrix::zeros_factor(n, n, 0, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 1.0);
            if j > 0 {
                a.set(j - 1, j, -2.0);
            }
        }
        // Values with nontrivial f32 rounding: the error is amplified by
        // kappa and refinement stagnates.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
        let mut b = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
        let mut x = vec![0.0; n];
        let outcome = msgbsv(a.as_ref(), &b, &mut x);
        assert_eq!(outcome, MixedOutcome::FellBackToF64);
        // The fallback still solves with a small backward error.
        let berr = backward_error(a.as_ref(), &x, &b);
        assert!(berr < 1e-12, "berr {berr:.2e}");
    }

    #[test]
    fn singular_matrix_reported() {
        let n = 6;
        let a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        match msgbsv(a.as_ref(), &b, &mut x) {
            MixedOutcome::Singular(info) => assert!(info > 0),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn zero_rhs_trivially_converges() {
        let n = 10;
        let a = band(n, 1, 1, 0.5, 3.0);
        let b = vec![0.0; n];
        let mut x = vec![1.0; n];
        let outcome = msgbsv(a.as_ref(), &b, &mut x);
        assert!(matches!(outcome, MixedOutcome::Mixed(_)));
        assert!(x.iter().all(|&v| v.abs() < 1e-12));
    }
}
