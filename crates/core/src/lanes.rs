//! Lane-width abstraction for vectorized host hot paths.
//!
//! `std::simd` is nightly-only, so the portable route to SIMD on stable
//! is *autovectorization-friendly chunking*: fixed-width inner loops over
//! `[S; LANE_WIDTH]` chunks (which the compiler unrolls and vectorizes)
//! plus a scalar remainder loop. Because chunking changes neither the
//! per-element operation nor the element order, results are **bitwise
//! identical** to the scalar loops by construction — no reassociation, no
//! FMA contraction (the [`crate::scalar::Scalar`] contract never exposes
//! `mul_add`), at both precisions.
//!
//! [`LaneMode`] selects between the two code paths per thread (default
//! [`LaneMode::Chunked`]); [`with_lane_mode`] scopes an override, which is
//! how the equivalence tests drive both paths over the same inputs.
//! Cross-element *accumulations* (dot products, norms, `iamax`) stay
//! scalar everywhere: vectorizing them would reorder additions or
//! comparisons and break bitwise stability.

use std::cell::Cell;

/// Elements per vector lane group: 8 doubles = one 512-bit vector (two
/// 256-bit ops on AVX2), 8 floats = one 256-bit vector. Matches the
/// reporting width `gbatch_gpu_sim::BlockContext::SIMD_WIDTH`.
pub const LANE_WIDTH: usize = 8;

/// Which loop shape the lane helpers execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneMode {
    /// Plain element-at-a-time loops (the reference semantics).
    Scalar,
    /// Fixed-width chunked loops with a scalar remainder (the default):
    /// same operations in the same order, autovectorizable.
    #[default]
    Chunked,
}

thread_local! {
    static MODE: Cell<LaneMode> = const { Cell::new(LaneMode::Chunked) };
}

/// The calling thread's current lane mode.
#[inline]
pub fn lane_mode() -> LaneMode {
    MODE.with(Cell::get)
}

/// Run `f` with the calling thread's lane mode set to `mode`, restoring
/// the previous mode afterwards (also on panic). Both modes are bitwise
/// equivalent, so worker threads inheriting the default while a test
/// scopes `Scalar` on the main thread cannot skew results.
pub fn with_lane_mode<R>(mode: LaneMode, f: impl FnOnce() -> R) -> R {
    struct Restore(LaneMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE.with(|m| m.set(self.0));
        }
    }
    let prev = MODE.with(|m| {
        let prev = m.get();
        m.set(mode);
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Apply `f` to every element of `x` in ascending order. Under
/// [`LaneMode::Chunked`] the body runs over `[S; LANE_WIDTH]` chunks with
/// a scalar remainder; element order and operations are unchanged.
#[inline]
pub fn for_each<S, F: FnMut(&mut S)>(x: &mut [S], mut f: F) {
    match lane_mode() {
        LaneMode::Scalar => {
            for v in x {
                f(v);
            }
        }
        LaneMode::Chunked => {
            let mut chunks = x.chunks_exact_mut(LANE_WIDTH);
            for chunk in chunks.by_ref() {
                let lane: &mut [S; LANE_WIDTH] = chunk.try_into().expect("exact chunk");
                for v in lane {
                    f(v);
                }
            }
            for v in chunks.into_remainder() {
                f(v);
            }
        }
    }
}

/// Apply `f(&mut y[k], &x[k])` for every `k` in ascending order (the
/// axpy/update shape). Chunked mode pairs `[_; LANE_WIDTH]` chunks of both
/// slices; the remainder runs scalar. Lengths must match.
#[inline]
pub fn zip_each<S, T, F: FnMut(&mut S, &T)>(y: &mut [S], x: &[T], mut f: F) {
    debug_assert_eq!(y.len(), x.len());
    match lane_mode() {
        LaneMode::Scalar => {
            for (yi, xi) in y.iter_mut().zip(x) {
                f(yi, xi);
            }
        }
        LaneMode::Chunked => {
            let mut yc = y.chunks_exact_mut(LANE_WIDTH);
            let mut xc = x.chunks_exact(LANE_WIDTH);
            for (ychunk, xchunk) in yc.by_ref().zip(xc.by_ref()) {
                let yl: &mut [S; LANE_WIDTH] = ychunk.try_into().expect("exact chunk");
                let xl: &[T; LANE_WIDTH] = xchunk.try_into().expect("exact chunk");
                for k in 0..LANE_WIDTH {
                    f(&mut yl[k], &xl[k]);
                }
            }
            for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
                f(yi, xi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_chunked() {
        assert_eq!(lane_mode(), LaneMode::Chunked);
    }

    #[test]
    fn with_lane_mode_scopes_and_restores() {
        assert_eq!(lane_mode(), LaneMode::Chunked);
        let inner = with_lane_mode(LaneMode::Scalar, || {
            assert_eq!(lane_mode(), LaneMode::Scalar);
            // Nesting restores to the *enclosing* mode, not the default.
            with_lane_mode(LaneMode::Chunked, lane_mode)
        });
        assert_eq!(inner, LaneMode::Chunked);
        assert_eq!(lane_mode(), LaneMode::Chunked);
    }

    #[test]
    fn with_lane_mode_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_lane_mode(LaneMode::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(lane_mode(), LaneMode::Chunked);
    }

    #[test]
    fn for_each_covers_remainders_bitwise() {
        // Lengths straddling the lane width, including 0 and exact
        // multiples.
        for n in [0usize, 1, 7, 8, 9, 16, 23] {
            let init: Vec<f64> = (0..n).map(|k| 0.1 + k as f64).collect();
            let mut scalar = init.clone();
            let mut chunked = init.clone();
            with_lane_mode(LaneMode::Scalar, || {
                for_each(&mut scalar, |v| *v = *v * 3.0 + 1.0);
            });
            with_lane_mode(LaneMode::Chunked, || {
                for_each(&mut chunked, |v| *v = *v * 3.0 + 1.0);
            });
            let sb: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u64> = chunked.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, cb, "n={n}");
        }
    }

    #[test]
    fn zip_each_covers_remainders_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 23] {
            let x: Vec<f32> = (0..n).map(|k| 0.3 + k as f32 * 0.7).collect();
            let init: Vec<f32> = (0..n).map(|k| 1.0 - k as f32 * 0.2).collect();
            let mut scalar = init.clone();
            let mut chunked = init.clone();
            with_lane_mode(LaneMode::Scalar, || {
                zip_each(&mut scalar, &x, |yi, &xi| *yi += 1.5 * xi);
            });
            with_lane_mode(LaneMode::Chunked, || {
                zip_each(&mut chunked, &x, |yi, &xi| *yi += 1.5 * xi);
            });
            let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = chunked.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, cb, "n={n}");
        }
    }

    #[test]
    fn ascending_order_in_both_modes() {
        for mode in [LaneMode::Scalar, LaneMode::Chunked] {
            let mut order = Vec::new();
            let mut x = vec![0u32; 19];
            with_lane_mode(mode, || {
                for_each(&mut x, |v| {
                    order.push(*v);
                    *v = 1;
                });
            });
            assert_eq!(order.len(), 19, "{mode:?}");
            assert!(x.iter().all(|&v| v == 1), "{mode:?}");
        }
    }
}
