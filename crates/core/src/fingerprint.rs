//! Content fingerprinting for factorization reuse.
//!
//! Timestepping and PDE traffic re-solves the *same* banded operator for
//! thousands of right-hand sides. The serve layer detects that reuse by
//! fingerprinting each request's operator content — the band payload bytes
//! plus the geometry that decides which factorization they produce
//! (`n`, `kl`, `ku`, storage flavour, compute precision). Two requests
//! with equal fingerprints factor to bitwise-identical `LU` + pivots, so
//! a cached factorization can stand in for a fresh `gbtrf` run.
//!
//! The hash is a 128-bit FNV-1a variant absorbing one 64-bit word per
//! step (the IEEE-754 bit pattern of each band element, so `-0.0` and
//! `0.0` — which factor identically but are distinct payload bytes —
//! hash separately, as do NaN payload bits). 128 bits exist because a
//! cache hit *replaces* a factorization: a collision would silently
//! solve against the wrong operator, so the collision probability must
//! be negligible at any realistic cache size, not merely small.
//!
//! The right-hand-side count is deliberately **excluded**: one operator
//! serves any number of right-hand sides, and the whole point of the
//! cache is to share factors across solve-only traffic.

use crate::layout::BandStorage;
use crate::scalar::Precision;
use crate::shape::ShapeKey;

/// 128-bit FNV offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content fingerprint of one banded operator.
///
/// Equal fingerprints imply (with overwhelming probability) equal band
/// payloads *and* equal factorization geometry, hence bitwise-equal
/// retained factors. Ordered and hashable so it can key deterministic
/// `BTreeMap` caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// The two 64-bit halves, for display and diagnostics.
    #[must_use]
    pub fn to_words(self) -> (u64, u64) {
        (self.hi, self.lo)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Incremental 128-bit FNV-1a hasher absorbing 64-bit words.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        FingerprintHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb one 64-bit word (FNV-1a step: xor, then multiply).
    pub fn write_u64(&mut self, v: u64) {
        self.state ^= u128::from(v);
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Absorb a slice of `f64` payload as IEEE-754 bit patterns.
    pub fn write_f64s(&mut self, data: &[f64]) {
        for &v in data {
            self.write_u64(v.to_bits());
        }
    }

    /// Finalize into a [`Fingerprint`].
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint {
            hi: (self.state >> 64) as u64,
            lo: self.state as u64,
        }
    }
}

/// Fingerprint one operator: factorization geometry header plus the band
/// payload in wire (`f64`) form.
///
/// `shape.nrhs` does not participate — see the module docs. The
/// precision *does*: an F32-tagged key narrows at assembly and produces
/// `f32` factors, which must never be served to an F64 request of the
/// same band bytes.
#[must_use]
pub fn operator_fingerprint(shape: &ShapeKey, ab: &[f64]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_u64(shape.n as u64);
    h.write_u64(shape.kl as u64);
    h.write_u64(shape.ku as u64);
    h.write_u64(match shape.storage {
        BandStorage::Pure => 0,
        BandStorage::Factor => 1,
    });
    h.write_u64(match shape.precision {
        Precision::F32 => 32,
        Precision::F64 => 64,
    });
    h.write_u64(ab.len() as u64);
    h.write_f64s(ab);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize, kl: usize, ku: usize, nrhs: usize) -> ShapeKey {
        ShapeKey::gbsv(n, kl, ku, nrhs)
    }

    #[test]
    fn equal_content_equal_fingerprint() {
        let s = key(16, 2, 3, 1);
        let ab: Vec<f64> = (0..s.ab_len()).map(|i| (i as f64 * 0.37).sin()).collect();
        assert_eq!(operator_fingerprint(&s, &ab), operator_fingerprint(&s, &ab));
    }

    #[test]
    fn nrhs_does_not_participate() {
        let a = key(16, 2, 3, 1);
        let b = key(16, 2, 3, 7);
        let ab = vec![0.5; a.ab_len()];
        assert_eq!(operator_fingerprint(&a, &ab), operator_fingerprint(&b, &ab));
    }

    #[test]
    fn geometry_precision_and_payload_all_discriminate() {
        let s = key(16, 2, 3, 1);
        let ab = vec![0.5; s.ab_len()];
        let base = operator_fingerprint(&s, &ab);

        let mut other = ab.clone();
        other[3] = 0.5000000000000001;
        assert_ne!(base, operator_fingerprint(&s, &other), "payload bit flip");

        let f32_key = s.with_precision(Precision::F32);
        assert_ne!(base, operator_fingerprint(&f32_key, &ab), "precision");

        let wider = key(16, 3, 3, 1);
        // Same byte count only when lengths happen to match; hash the
        // header regardless.
        let ab_w = vec![0.5; ab.len()];
        assert_ne!(base, operator_fingerprint(&wider, &ab_w), "bandwidth");
    }

    #[test]
    fn signed_zero_and_nan_bits_are_distinct_content() {
        let s = key(8, 1, 1, 1);
        let mut a = vec![1.0; s.ab_len()];
        let mut b = a.clone();
        a[2] = 0.0;
        b[2] = -0.0;
        assert_ne!(operator_fingerprint(&s, &a), operator_fingerprint(&s, &b));
    }

    #[test]
    fn display_is_32_hex_digits() {
        let s = key(8, 1, 1, 1);
        let fp = operator_fingerprint(&s, &vec![1.0; s.ab_len()]);
        assert_eq!(format!("{fp}").len(), 32);
    }
}
