//! Iterative refinement for band solves (`DGBRFS` semantics, simplified):
//! improve a computed solution `x` of `A x = b` using the original matrix
//! and its factorization, and report the final componentwise backward
//! error.
//!
//! Refinement is the standard companion of a direct solver on
//! ill-conditioned batches (the PELE scenario, paper §2.1): each sweep
//! computes the residual in working precision, solves a correction system
//! with the existing factors, and stops when the backward error stops
//! improving (LAPACK's `ITMAX = 5`).

use crate::band::BandMatrixRef;
use crate::blas2::gbmv;
use crate::gbtrs::{gbtrs, Transpose};
use crate::layout::BandLayout;

/// Maximum refinement sweeps, like LAPACK's `ITMAX`.
pub const ITMAX: usize = 5;

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineResult {
    /// Sweeps actually performed.
    pub iterations: usize,
    /// Final componentwise-relative backward error (LAPACK `BERR`).
    pub berr: f64,
}

/// Componentwise backward error of `x`:
/// `max_i |b - A x|_i / (|A| |x| + |b|)_i` (zero denominators skipped —
/// LAPACK adds a safeguard term for them; entries that are exactly zero on
/// both sides contribute nothing).
pub fn componentwise_berr(a: BandMatrixRef<'_>, x: &[f64], b: &[f64]) -> f64 {
    let l = a.layout;
    let n = l.n;
    let mut resid = b.to_vec();
    gbmv(-1.0, a, x, 1.0, &mut resid);
    // |A| |x| + |b|
    let mut denom = vec![0.0f64; n];
    for j in 0..n {
        let xj = x[j].abs();
        let (s, e) = l.col_rows(j);
        for i in s..e {
            denom[i] += a.get(i, j).abs() * xj;
        }
    }
    let mut berr = 0.0f64;
    for i in 0..n {
        let d = denom[i] + b[i].abs();
        if d > 0.0 {
            berr = berr.max(resid[i].abs() / d);
        } else if resid[i] != 0.0 {
            berr = f64::INFINITY;
        }
    }
    berr
}

/// Refine a solution in place. `a` is the *original* matrix; `ab`/`ipiv`
/// are its factors from `gbtrf`; `x` (length `n`) is improved toward the
/// solution of `A x = b`.
pub fn gbrfs(
    a: BandMatrixRef<'_>,
    l: &BandLayout,
    ab: &[f64],
    ipiv: &[i32],
    b: &[f64],
    x: &mut [f64],
) -> RefineResult {
    let n = l.n;
    debug_assert_eq!(a.layout.n, n);
    let mut berr = componentwise_berr(a, x, b);
    let mut iterations = 0;
    for _ in 0..ITMAX {
        if berr <= 2.0 * f64::EPSILON {
            break;
        }
        // Residual r = b - A x, correction dx = A^{-1} r.
        let mut r = b.to_vec();
        gbmv(-1.0, a, x, 1.0, &mut r);
        gbtrs(Transpose::No, l, ab, ipiv, &mut r, n, 1);
        for (xi, di) in x.iter_mut().zip(&r) {
            *xi += di;
        }
        iterations += 1;
        let new_berr = componentwise_berr(a, x, b);
        if new_berr >= berr * 0.5 {
            // Not converging fast enough — stop (LAPACK's criterion).
            berr = new_berr.min(berr);
            break;
        }
        berr = new_berr;
    }
    RefineResult { iterations, berr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::gbtf2::gbtf2;

    fn ill_conditioned(n: usize) -> BandMatrix {
        // Graded diagonal: condition number ~ 10^8.
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            let scale = 10f64.powf(-8.0 * j as f64 / (n - 1) as f64);
            a.set(j, j, 2.0 * scale);
            if j > 0 {
                a.set(j, j - 1, -0.7 * scale);
                a.set(j - 1, j, -0.4 * scale);
            }
        }
        a
    }

    #[test]
    fn refinement_reaches_eps_level_backward_error() {
        let n = 24;
        let a = ill_conditioned(n);
        let l = a.layout();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);

        let mut ab = a.data().to_vec();
        let mut piv = vec![0i32; n];
        assert_eq!(gbtf2(&l, &mut ab, &mut piv), 0);
        let mut x = b.clone();
        gbtrs(Transpose::No, &l, &ab, &piv, &mut x, n, 1);

        let res = gbrfs(a.as_ref(), &l, &ab, &piv, &b, &mut x);
        assert!(res.berr <= 4.0 * f64::EPSILON, "berr {:.2e}", res.berr);
        assert!(res.iterations <= ITMAX);
    }

    #[test]
    fn perturbed_solution_is_repaired() {
        let n = 16;
        let a = ill_conditioned(n);
        let l = a.layout();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        let mut b = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
        let mut ab = a.data().to_vec();
        let mut piv = vec![0i32; n];
        gbtf2(&l, &mut ab, &mut piv);

        // Start from a solution perturbed by 1e-6 relative noise.
        let mut x = b.clone();
        gbtrs(Transpose::No, &l, &ab, &piv, &mut x, n, 1);
        for (k, v) in x.iter_mut().enumerate() {
            *v *= 1.0 + 1e-6 * ((k % 3) as f64 - 1.0);
        }
        let before = componentwise_berr(a.as_ref(), &x, &b);
        let res = gbrfs(a.as_ref(), &l, &ab, &piv, &b, &mut x);
        assert!(
            res.berr < before / 100.0,
            "berr {:.2e} -> {:.2e}",
            before,
            res.berr
        );
        assert!(res.iterations >= 1);
    }

    #[test]
    fn exact_solution_converges_immediately() {
        // Well-conditioned system: the first solve is already at eps level,
        // refinement must do zero or one sweeps and not regress.
        let n = 10;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 4.0);
            if j > 0 {
                a.set(j, j - 1, -1.0);
                a.set(j - 1, j, -1.0);
            }
        }
        let l = a.layout();
        let mut b = vec![1.0; n];
        let mut ab = a.data().to_vec();
        let mut piv = vec![0i32; n];
        gbtf2(&l, &mut ab, &mut piv);
        let b0 = b.clone();
        gbtrs(Transpose::No, &l, &ab, &piv, &mut b, n, 1);
        let mut x = b;
        let res = gbrfs(a.as_ref(), &l, &ab, &piv, &b0, &mut x);
        assert!(res.berr <= 4.0 * f64::EPSILON);
        assert!(res.iterations <= 1);
    }

    #[test]
    fn componentwise_berr_of_exact_zero_residual() {
        let n = 4;
        let mut a = BandMatrix::zeros_factor(n, n, 0, 0).unwrap();
        for j in 0..n {
            a.set(j, j, 2.0);
        }
        let x = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(componentwise_berr(a.as_ref(), &x, &b), 0.0);
    }
}
