//! Shape keys: the hashable identity of a batched solve's geometry.
//!
//! Everything in this workspace that groups problems — the tuning table's
//! per-band-shape entries, the serving layer's admission buckets, the
//! dispatcher's layout decision — keys on the same five facts: matrix
//! order, lower/upper bandwidth, right-hand-side count, and the band
//! storage flavour. [`ShapeKey`] makes that identity one shared type so a
//! request bucketed by the server looks up the *same* key the tuner swept.
//!
//! Keys order lexicographically (`n`, `kl`, `ku`, `nrhs`, storage,
//! precision), so a `BTreeMap<ShapeKey, _>` iterates buckets in a
//! deterministic, human-readable order — the serving layer relies on this
//! for reproducible flush schedules. The element precision is part of the
//! key: `f32` and `f64` traffic of the same geometry bucket separately.

use crate::error::Result;
use crate::layout::{BandLayout, BandStorage};
use crate::scalar::Precision;

/// Geometry identity of one batched solve: every problem sharing a key can
/// ride in the same uniform batch ([`crate::batch::BandBatch`] requires
/// identical `n`, `kl`, `ku`, `ldab`; identical `nrhs` makes the RHS blocks
/// uniform too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeKey {
    /// Matrix order (square systems only — the batched drivers require it).
    pub n: usize,
    /// Sub-diagonal count.
    pub kl: usize,
    /// Super-diagonal count.
    pub ku: usize,
    /// Right-hand sides per system (`0` for factor-only work).
    pub nrhs: usize,
    /// Band storage flavour ([`BandStorage::Factor`] for anything headed
    /// into `gbtrf`/`gbsv`).
    pub storage: BandStorage,
    /// Element precision of the payload (`f64` for the paper's default
    /// double-precision traffic). Last field so pre-existing keys keep
    /// their lexicographic order.
    pub precision: Precision,
}

impl ShapeKey {
    /// Key for a factor-storage solve shape — the common case for
    /// `dgbsv_batch` traffic.
    pub fn gbsv(n: usize, kl: usize, ku: usize, nrhs: usize) -> Self {
        ShapeKey {
            n,
            kl,
            ku,
            nrhs,
            storage: BandStorage::Factor,
            precision: Precision::F64,
        }
    }

    /// Key for a single-precision factor-storage solve shape — the
    /// `sgbsv_batch` counterpart of [`ShapeKey::gbsv`].
    pub fn sgbsv(n: usize, kl: usize, ku: usize, nrhs: usize) -> Self {
        ShapeKey {
            precision: Precision::F32,
            ..Self::gbsv(n, kl, ku, nrhs)
        }
    }

    /// The same key tagged with another element precision.
    #[must_use]
    pub fn with_precision(self, precision: Precision) -> Self {
        ShapeKey { precision, ..self }
    }

    /// Key of an existing layout plus an RHS count. The storage flavour is
    /// recovered from the layout's diagonal row offset.
    #[must_use]
    pub fn of_layout(l: &BandLayout, nrhs: usize) -> Self {
        let storage = if l.row_offset == l.kl + l.ku {
            BandStorage::Factor
        } else {
            BandStorage::Pure
        };
        ShapeKey {
            n: l.n,
            kl: l.kl,
            ku: l.ku,
            nrhs,
            storage,
            precision: Precision::F64,
        }
    }

    /// Reconstruct the minimal-`ldab` square layout this key describes.
    pub fn layout(&self) -> Result<BandLayout> {
        BandLayout::with_ldab(
            self.n,
            self.n,
            self.kl,
            self.ku,
            BandLayout::required_ldab(self.kl, self.ku, self.storage),
            self.storage,
        )
    }

    /// Element count of one matrix's band array under this key.
    #[must_use]
    pub fn ab_len(&self) -> usize {
        BandLayout::required_ldab(self.kl, self.ku, self.storage) * self.n
    }

    /// Element count of one system's RHS block (`n * nrhs`, minimal
    /// `ldb`).
    #[must_use]
    pub fn rhs_len(&self) -> usize {
        self.n * self.nrhs
    }

    /// True when a layout/RHS pair matches this key exactly (same
    /// geometry, same storage flavour, minimal `ldab`).
    #[must_use]
    pub fn matches(&self, l: &BandLayout, nrhs: usize) -> bool {
        *self == ShapeKey::of_layout(l, nrhs).with_precision(self.precision)
            && l.ldab == BandLayout::required_ldab(self.kl, self.ku, self.storage)
            && l.m == l.n
    }

    /// Bytes per element of this key's payloads.
    #[must_use]
    pub fn elem_bytes(&self) -> usize {
        self.precision.elem_bytes()
    }
}

impl std::fmt::Display for ShapeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.storage {
            BandStorage::Pure => "pure",
            BandStorage::Factor => "factor",
        };
        write!(
            f,
            "n{}/kl{}/ku{}/rhs{}/{s}",
            self.n, self.kl, self.ku, self.nrhs
        )?;
        // f64 keys keep the pre-existing compact display; only the new
        // f32 traffic is tagged.
        if self.precision == Precision::F32 {
            write!(f, "/f32")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trip() {
        let k = ShapeKey::gbsv(64, 2, 3, 4);
        let l = k.layout().unwrap();
        assert_eq!(l.ldab, 2 * 2 + 3 + 1);
        assert_eq!(ShapeKey::of_layout(&l, 4), k);
        assert!(k.matches(&l, 4));
        assert!(!k.matches(&l, 1));
        assert_eq!(k.ab_len(), l.len());
        assert_eq!(k.rhs_len(), 64 * 4);
    }

    #[test]
    fn pure_storage_recovered() {
        let l = BandLayout::pure(16, 16, 1, 2).unwrap();
        let k = ShapeKey::of_layout(&l, 1);
        assert_eq!(k.storage, BandStorage::Pure);
        assert_eq!(k.layout().unwrap(), l);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = ShapeKey::gbsv(16, 1, 1, 1);
        let b = ShapeKey::gbsv(16, 1, 2, 1);
        let c = ShapeKey::gbsv(32, 0, 0, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            ShapeKey::gbsv(64, 2, 3, 1).to_string(),
            "n64/kl2/ku3/rhs1/factor"
        );
    }

    #[test]
    fn precision_separates_keys() {
        let d = ShapeKey::gbsv(64, 2, 3, 1);
        let s = ShapeKey::sgbsv(64, 2, 3, 1);
        assert_ne!(d, s);
        assert!(s < d, "f32 sorts before f64 of the same geometry");
        assert_eq!(s.to_string(), "n64/kl2/ku3/rhs1/factor/f32");
        assert_eq!(s.elem_bytes(), 4);
        assert_eq!(d.elem_bytes(), 8);
        assert_eq!(d.with_precision(Precision::F32), s);
        // Geometry helpers are precision-agnostic.
        assert_eq!(s.ab_len(), d.ab_len());
        assert!(s.matches(&s.layout().unwrap(), 1));
    }
}
