//! BLAS-1 building blocks used by the band factorization
//! (paper Section 5.1: `IAMAX`, `SWAP`, `SCAL`, rank-1 update).
//!
//! The strided variants mirror how LAPACK's `dgbtf2` walks *rows* of the band
//! array with stride `ldab - 1` (moving one column right moves one band row
//! up).
//!
//! Every routine is generic over the element [`Scalar`] (`f32`/`f64`); the
//! `f64` instantiations compile to the exact operation sequence of the
//! original concrete code.
//!
//! The per-element maps (`scal`, `axpy`) run through the lane-width
//! abstraction of [`crate::lanes`] — chunked for autovectorization by
//! default, bitwise-identical to the scalar loops by construction. The
//! accumulating routines (`dot`, norms, `iamax`) are deliberately *not*
//! chunked: vectorizing a reduction reorders its additions/comparisons.

use crate::lanes;
use crate::scalar::Scalar;

/// Index of the element with the largest absolute value (`idamax`), 0-based.
/// Ties resolve to the first occurrence, like the reference BLAS.
/// Returns 0 for an empty slice.
#[inline]
pub fn iamax<S: Scalar>(x: &[S]) -> usize {
    let mut best = 0usize;
    let mut best_val = S::MIN;
    for (k, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best_val {
            best_val = a;
            best = k;
        }
    }
    if x.is_empty() {
        0
    } else {
        best
    }
}

/// Strided `idamax` over `n` elements starting at `off` with stride `inc`.
#[inline]
pub fn iamax_strided<S: Scalar>(x: &[S], off: usize, inc: usize, n: usize) -> usize {
    let mut best = 0usize;
    let mut best_val = S::from_f64(-1.0);
    for k in 0..n {
        let a = x[off + k * inc].abs();
        if a > best_val {
            best_val = a;
            best = k;
        }
    }
    best
}

/// `x *= alpha` (`dscal`).
#[inline]
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    lanes::for_each(x, |v| *v *= alpha);
}

/// `y += alpha * x` (`daxpy`); slices must have equal length.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    lanes::zip_each(y, x, |yi, &xi| *yi += alpha * xi);
}

/// Dot product (`ddot`).
#[inline]
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = S::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Swap two equally-strided element sequences inside one buffer (`dswap`
/// with both strides equal). Used for the pivoting row-swap in band storage:
/// swapping full-matrix rows `r1` and `r2` over columns `j..=ju` touches
/// elements with stride `ldab - 1`.
///
/// `off1`/`off2` are starting flat indices; the sequences must not overlap.
#[inline]
pub fn swap_strided<S: Scalar>(x: &mut [S], off1: usize, off2: usize, inc: usize, n: usize) {
    debug_assert_ne!(off1, off2, "swap of a sequence with itself");
    for k in 0..n {
        x.swap(off1 + k * inc, off2 + k * inc);
    }
}

/// Infinity norm of a vector.
#[inline]
pub fn norm_inf<S: Scalar>(x: &[S]) -> S {
    x.iter().fold(S::ZERO, |m, &v| m.max(v.abs()))
}

/// Euclidean norm of a vector (naive; fine for test/diagnostic use).
#[inline]
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    let mut acc = S::ZERO;
    for &v in x {
        acc += v * v;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[-2.0, 2.0]), 0, "ties resolve to first");
        assert_eq!(iamax(&[0.0]), 0);
        assert_eq!(iamax::<f64>(&[]), 0);
    }

    #[test]
    fn iamax_strided_walks_correctly() {
        // Elements at indices 1, 3, 5 of the buffer.
        let x = [9.0, 1.0, 9.0, -4.0, 9.0, 2.0];
        assert_eq!(iamax_strided(&x, 1, 2, 3), 1);
    }

    #[test]
    fn scal_and_axpy() {
        let mut x = vec![1.0, 2.0, 3.0];
        scal(2.0, &mut x);
        assert_eq!(x, vec![2.0, 4.0, 6.0]);
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(-0.5, &x, &mut y);
        assert_eq!(y, vec![0.0, -1.0, -2.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn swap_strided_swaps_rows_in_band_storage() {
        // A tiny 3-col band array with ldab = 3; swap "rows" starting at
        // flat offsets 2 and 0 with stride ldab - 1 = 2, length 2:
        // swaps (2 <-> 0) and (4 <-> 2)? No: pairs are (2,0) and (2+2, 0+2)=(4,2)...
        // Use disjoint sequences: offs 1 and 2, stride 3, n = 2.
        let mut x = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        swap_strided(&mut x, 1, 2, 3, 2);
        assert_eq!(x, vec![0.0, 2.0, 1.0, 3.0, 5.0, 4.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
    }
}
