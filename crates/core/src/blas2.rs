//! BLAS-2 helpers: band matrix–vector product (`dgbmv`-style) and dense
//! rank-1 update, used by solves, residual checks and workloads.
//!
//! Column updates (`gbmv`, `ger`, `gemv`) are per-element-independent, so
//! they run through the chunked lane abstraction of [`crate::lanes`];
//! `gbmv_t` accumulates across elements and stays scalar to preserve its
//! bitwise addition order.

use crate::band::BandMatrixRef;
use crate::lanes;
use crate::scalar::Scalar;

/// `y = alpha * A * x + beta * y` for a band matrix in either storage
/// flavour (uses the *structural* band only, so it is valid on unfactored
/// matrices). `x.len() == n`, `y.len() == m`.
pub fn gbmv<S: Scalar>(alpha: S, a: BandMatrixRef<'_, S>, x: &[S], beta: S, y: &mut [S]) {
    let l = a.layout;
    debug_assert_eq!(x.len(), l.n);
    debug_assert_eq!(y.len(), l.m);
    if beta == S::ZERO {
        y.fill(S::ZERO);
    } else if beta != S::ONE {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for j in 0..l.n {
        let xj = alpha * x[j];
        if xj == S::ZERO {
            continue;
        }
        let (s, e) = l.col_rows(j);
        if s >= e {
            continue;
        }
        // The structural rows s..e of column j are contiguous in the band
        // array (flat index `j*ldab + row_offset + i - j`).
        let base = l.idx(l.row_offset + s - j, j);
        let col = &a.data[base..base + (e - s)];
        lanes::zip_each(&mut y[s..e], col, |yi, &aij| *yi += aij * xj);
    }
}

/// `y = alpha * A^T * x + beta * y` for a band matrix (structural band).
/// `x.len() == m`, `y.len() == n`.
pub fn gbmv_t<S: Scalar>(alpha: S, a: BandMatrixRef<'_, S>, x: &[S], beta: S, y: &mut [S]) {
    let l = a.layout;
    debug_assert_eq!(x.len(), l.m);
    debug_assert_eq!(y.len(), l.n);
    if beta == S::ZERO {
        y.fill(S::ZERO);
    } else if beta != S::ONE {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for j in 0..l.n {
        let (s, e) = l.col_rows(j);
        let mut acc = S::ZERO;
        for i in s..e {
            acc += a.get(i, j) * x[i];
        }
        y[j] += alpha * acc;
    }
}

/// Dense column-major rank-1 update: `A += alpha * x * y^T`,
/// `A` is `m x n` with leading dimension `lda`.
pub fn ger<S: Scalar>(m: usize, n: usize, alpha: S, x: &[S], y: &[S], a: &mut [S], lda: usize) {
    debug_assert!(x.len() >= m && y.len() >= n && a.len() >= lda * n);
    for j in 0..n {
        let yj = alpha * y[j];
        if yj == S::ZERO {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        lanes::zip_each(col, &x[..m], |ai, &xi| *ai += xi * yj);
    }
}

/// Dense column-major `y = alpha * A * x + beta * y` (`A` is `m x n`).
#[allow(clippy::too_many_arguments)] // BLAS signature fidelity
pub fn gemv<S: Scalar>(
    m: usize,
    n: usize,
    alpha: S,
    a: &[S],
    lda: usize,
    x: &[S],
    beta: S,
    y: &mut [S],
) {
    debug_assert!(a.len() >= lda * n && x.len() >= n && y.len() >= m);
    if beta == S::ZERO {
        y[..m].fill(S::ZERO);
    } else if beta != S::ONE {
        for v in y[..m].iter_mut() {
            *v *= beta;
        }
    }
    for j in 0..n {
        let xj = alpha * x[j];
        if xj == S::ZERO {
            continue;
        }
        let col = &a[j * lda..j * lda + m];
        lanes::zip_each(&mut y[..m], col, |yi, &aij| *yi += aij * xj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;

    fn sample_band() -> BandMatrix {
        // 4x4, kl=1, ku=1:
        // [2 1 0 0]
        // [1 2 1 0]
        // [0 1 2 1]
        // [0 0 1 2]
        let mut a = BandMatrix::zeros_factor(4, 4, 1, 1).unwrap();
        for j in 0..4 {
            a.set(j, j, 2.0);
            if j > 0 {
                a.set(j - 1, j, 1.0);
                a.set(j, j - 1, 1.0);
            }
        }
        a
    }

    #[test]
    fn gbmv_matches_dense() {
        let a = sample_band();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        gbmv(1.0, a.as_ref(), &x, 0.0, &mut y);
        assert_eq!(y, [4.0, 8.0, 12.0, 11.0]);
    }

    #[test]
    fn gbmv_alpha_beta() {
        let a = sample_band();
        let x = [1.0; 4];
        let mut y = [10.0; 4];
        gbmv(2.0, a.as_ref(), &x, 0.5, &mut y);
        // A*ones = [3,4,4,3]; y = 0.5*10 + 2*A*x
        assert_eq!(y, [11.0, 13.0, 13.0, 11.0]);
    }

    #[test]
    fn gbmv_t_matches_transpose() {
        // Non-symmetric band: kl=1, ku=0 lower bidiagonal.
        let mut a = BandMatrix::zeros_factor(3, 3, 1, 0).unwrap();
        a.set(0, 0, 1.0);
        a.set(1, 0, 4.0);
        a.set(1, 1, 2.0);
        a.set(2, 1, 5.0);
        a.set(2, 2, 3.0);
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        gbmv_t(1.0, a.as_ref(), &x, 0.0, &mut y);
        assert_eq!(y, [5.0, 7.0, 3.0]);
    }

    #[test]
    fn ger_rank1() {
        // 2x2 identity += [1,2]*[3,4]^T
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        ger(2, 2, 1.0, &[1.0, 2.0], &[3.0, 4.0], &mut a, 2);
        assert_eq!(a, vec![4.0, 6.0, 4.0, 9.0]);
    }

    #[test]
    fn gemv_dense() {
        // A = [[1,3],[2,4]] col-major [1,2,3,4]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0, 0.0];
        gemv(2, 2, 1.0, &a, 2, &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn gemv_beta_scaling_without_alpha_contribution() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![2.0, 2.0];
        gemv(2, 2, 0.0, &a, 2, &[1.0, 1.0], 3.0, &mut y);
        assert_eq!(y, vec![6.0, 6.0]);
    }
}
