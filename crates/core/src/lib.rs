//! # gbatch-core
//!
//! Band-matrix storage and sequential LAPACK-style band LU routines.
//!
//! This crate is the numerical foundation of the `gbatch` workspace, a
//! reproduction of *"GPU-based LU Factorization and Solve on Batches of
//! Matrices with Band Structure"* (Abdelfattah et al., SC-W 2023). It
//! provides:
//!
//! - [`layout::BandLayout`] — the standard LAPACK band storage scheme
//!   (paper Section 3, Figure 2), where element `(i, j)` of the full matrix
//!   lives at band row `kl + ku + i - j` of column `j`, and the top `kl`
//!   rows are workspace for partial-pivoting fill-in;
//! - [`band::BandMatrix`] — an owned band matrix plus cheap views;
//! - [`batch::BandBatch`] — a uniform batch of band matrices stored
//!   contiguously, mirroring the paper's `double**` batch interface;
//! - sequential reference routines with LAPACK semantics:
//!   [`gbtf2::gbtf2`] (unblocked band LU with partial pivoting),
//!   [`gbtrf::gbtrf`] (blocked band LU), [`gbtrs::gbtrs`]
//!   (forward/backward band triangular solve) and [`gbsv::gbsv`] (driver);
//! - [`dense`] — small dense LAPACK-style routines (`getrf`, `getrs`,
//!   `gemm`, `gemv`) used as oracles in tests and as the Figure 1 workload;
//! - [`gbequ`] / [`gbrfs`] — equilibration and iterative refinement, the
//!   LAPACK companions for the ill-conditioned batches of the PELE
//!   scenario (paper §2.1);
//! - [`residual`] — backward-error measurement used by every test and
//!   example to certify solutions.
//!
//! Containers and routines are generic over the element [`scalar::Scalar`]
//! (`f32` or `f64`), defaulting to `f64` — the precision the paper
//! evaluates. The `f64` instantiations are bitwise-identical to the
//! original concrete code. Pivot indices are 0-based; conversions to
//! LAPACK's 1-based convention are provided where fidelity matters.
//!
//! ```
//! use gbatch_core::{BandMatrix, gbsv::gbsv};
//!
//! // Solve a diagonally dominant tridiagonal system.
//! let n = 8;
//! let mut a = BandMatrix::<f64>::zeros_factor(n, n, 1, 1).unwrap();
//! for j in 0..n {
//!     a.set(j, j, 4.0);
//!     if j > 0 { a.set(j - 1, j, -1.0); a.set(j, j - 1, -1.0); }
//! }
//! let mut b = vec![1.0; n];
//! let mut ab = a.data().to_vec();
//! let mut ipiv = vec![0i32; n];
//! let info = gbsv(&a.layout(), &mut ab, &mut ipiv, &mut b, n, 1);
//! assert_eq!(info, 0);
//! // Residual check through the band matvec.
//! let mut r = vec![0.0; n];
//! gbatch_core::blas2::gbmv(1.0, a.as_ref(), &b, 0.0, &mut r);
//! assert!(r.iter().all(|&v| (v - 1.0).abs() < 1e-12));
//! ```

// LAPACK-style numerical kernels are clearest with explicit indexed
// loops over band rows/columns; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod band;
pub mod batch;
pub mod blas1;
pub mod blas2;
pub mod dense;
pub mod display;
pub mod error;
pub mod factors;
pub mod fingerprint;
pub mod gbcon;
pub mod gbequ;
pub mod gbrfs;
pub mod gbsv;
pub mod gbsvx;
pub mod gbtf2;
pub mod gbtrf;
pub mod gbtrs;
pub mod interleaved;
pub mod io;
pub mod lanes;
pub mod layout;
pub mod mixed;
pub mod pb;
pub mod residual;
pub mod scalar;
pub mod shape;
pub mod spike;
pub mod vbatch;

pub use band::{BandMatrix, BandMatrixMut, BandMatrixRef};
pub use batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
pub use error::{BandError, Result};
pub use factors::{FactorPayload, RetainedFactor};
pub use fingerprint::{operator_fingerprint, Fingerprint, FingerprintHasher};
pub use interleaved::InterleavedBandBatch;
pub use lanes::{with_lane_mode, LaneMode, LANE_WIDTH};
pub use layout::{BandLayout, RowClass};
pub use scalar::{Precision, Scalar};
pub use shape::ShapeKey;
pub use spike::{spike_factorize, spike_gbsv, spike_solve_retained, SpikeFactor, SpikePartition};

/// Machine epsilon for `f64`, used in residual bounds.
pub const EPS: f64 = f64::EPSILON;
