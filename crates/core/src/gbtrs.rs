//! Band triangular solve from a `gbtrf`/`gbtf2` factorization — the exact
//! semantics of LAPACK's `DGBTRS` (paper Section 6).
//!
//! The lower factor is *not* stored in its final form: the multipliers sit
//! in the `kl` rows below the diagonal and the row interchanges were applied
//! only "to the right". The forward pass therefore re-applies each pivot to
//! the RHS progressively, coupled with a rank-1 update — exactly the
//! (row swap, rank-1 update) kernel pair the paper describes. The backward
//! pass is a banded triangular solve on `U`, whose upper bandwidth after
//! factorization is `kv = kl + ku`.

use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// Which system to solve: `A x = b` or `A^T x = b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Solve `A x = b`.
    No,
    /// Solve `A^T x = b`.
    Yes,
}

/// Forward elimination step for one column `j`: apply pivot `ipiv[j]` to the
/// RHS block and eliminate with the stored multipliers (the paper's
/// per-column kernel pair). `b` is `ldb x nrhs` column-major.
#[inline]
pub fn forward_step<S: Scalar>(
    l: &BandLayout,
    ab: &[S],
    ipiv: &[i32],
    j: usize,
    b: &mut [S],
    ldb: usize,
    nrhs: usize,
) {
    let n = l.n;
    let kv = l.kv();
    let lm = l.kl.min(n - 1 - j);
    let p = ipiv[j] as usize;
    if p != j {
        for c in 0..nrhs {
            b.swap(c * ldb + p, c * ldb + j);
        }
    }
    if lm > 0 {
        let base = l.idx(kv, j);
        for c in 0..nrhs {
            let bj = b[c * ldb + j];
            if bj == S::ZERO {
                continue;
            }
            for i in 1..=lm {
                b[c * ldb + j + i] -= ab[base + i] * bj;
            }
        }
    }
}

/// Backward substitution on the banded `U` factor (upper bandwidth `kv`),
/// one RHS column at a time (`DTBSV('U','N','N')` semantics).
#[inline]
pub fn backward_solve<S: Scalar>(l: &BandLayout, ab: &[S], b: &mut [S], ldb: usize, nrhs: usize) {
    let n = l.n;
    let kv = l.kv();
    for c in 0..nrhs {
        for j in (0..n).rev() {
            let bj = b[c * ldb + j] / ab[l.idx(kv, j)];
            b[c * ldb + j] = bj;
            if bj != S::ZERO {
                let reach = kv.min(j);
                for i in 1..=reach {
                    b[c * ldb + j - i] -= ab[l.idx(kv - i, j)] * bj;
                }
            }
        }
    }
}

/// Forward substitution on the banded `U^T` factor (`DTBSV('U','T','N')`),
/// used by the transpose solve.
#[inline]
pub fn forward_solve_ut<S: Scalar>(l: &BandLayout, ab: &[S], b: &mut [S], ldb: usize, nrhs: usize) {
    let n = l.n;
    let kv = l.kv();
    for c in 0..nrhs {
        for j in 0..n {
            // b[j] -= sum_{i<j within band} U[i][j] * b[i]
            let reach = kv.min(j);
            let mut acc = b[c * ldb + j];
            for i in 1..=reach {
                acc -= ab[l.idx(kv - i, j)] * b[c * ldb + j - i];
            }
            b[c * ldb + j] = acc / ab[l.idx(kv, j)];
        }
    }
}

/// Backward pass of the transpose solve: apply `L^T` eliminations and the
/// pivots in reverse order.
#[inline]
pub fn backward_lt<S: Scalar>(
    l: &BandLayout,
    ab: &[S],
    ipiv: &[i32],
    b: &mut [S],
    ldb: usize,
    nrhs: usize,
) {
    let n = l.n;
    let kv = l.kv();
    if l.kl == 0 || n < 2 {
        // Still must undo the (identity) pivots — nothing to do.
        return;
    }
    for j in (0..n - 1).rev() {
        let lm = l.kl.min(n - 1 - j);
        let base = l.idx(kv, j);
        for c in 0..nrhs {
            // b[j] -= l_j^T * b[j+1 .. j+lm]
            let mut acc = S::ZERO;
            for i in 1..=lm {
                acc += ab[base + i] * b[c * ldb + j + i];
            }
            b[c * ldb + j] -= acc;
        }
        let p = ipiv[j] as usize;
        if p != j {
            for c in 0..nrhs {
                b.swap(c * ldb + p, c * ldb + j);
            }
        }
    }
}

/// Band triangular solve (`DGBTRS`): solve `A x = b` (or `A^T x = b`) using
/// the factors and pivots produced by [`crate::gbtf2::gbtf2`] /
/// [`crate::gbtrf::gbtrf`]. Requires a square system (`l.m == l.n`).
///
/// `b` (`ldb x nrhs`, column-major, `ldb >= n`) is overwritten with `x`.
pub fn gbtrs<S: Scalar>(
    trans: Transpose,
    l: &BandLayout,
    ab: &[S],
    ipiv: &[i32],
    b: &mut [S],
    ldb: usize,
    nrhs: usize,
) {
    debug_assert_eq!(l.m, l.n, "gbtrs requires a square factorization");
    debug_assert!(ldb >= l.n);
    debug_assert!(b.len() >= ldb * nrhs);
    debug_assert!(ipiv.len() >= l.n);
    let n = l.n;
    match trans {
        Transpose::No => {
            if l.kl > 0 {
                for j in 0..n.saturating_sub(1) {
                    forward_step(l, ab, ipiv, j, b, ldb, nrhs);
                }
            }
            backward_solve(l, ab, b, ldb, nrhs);
        }
        Transpose::Yes => {
            forward_solve_ut(l, ab, b, ldb, nrhs);
            if l.kl > 0 {
                backward_lt(l, ab, ipiv, b, ldb, nrhs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::blas2::{gbmv, gbmv_t};
    use crate::gbtf2::gbtf2;

    fn random_band(n: usize, kl: usize, ku: usize, seed: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.7 + 0.31).fract();
                a.set(i, j, v - 0.5 + if i == j { 2.5 } else { 0.0 });
            }
        }
        a
    }

    fn solve_roundtrip(n: usize, kl: usize, ku: usize, nrhs: usize, trans: Transpose, seed: f64) {
        let a = random_band(n, kl, ku, seed);
        let l = a.layout();
        // Build b = A x_true (or A^T x_true).
        let xs: Vec<Vec<f64>> = (0..nrhs)
            .map(|c| {
                (0..n)
                    .map(|i| ((i + 1) as f64 * 0.37 + c as f64).sin())
                    .collect()
            })
            .collect();
        let mut b = vec![0.0; n * nrhs];
        for (c, x) in xs.iter().enumerate() {
            let mut y = vec![0.0; n];
            match trans {
                Transpose::No => gbmv(1.0, a.as_ref(), x, 0.0, &mut y),
                Transpose::Yes => gbmv_t(1.0, a.as_ref(), x, 0.0, &mut y),
            }
            b[c * n..(c + 1) * n].copy_from_slice(&y);
        }
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        assert_eq!(gbtf2(&l, &mut ab, &mut ipiv), 0);
        gbtrs(trans, &l, &ab, &ipiv, &mut b, n, nrhs);
        for (c, x) in xs.iter().enumerate() {
            for i in 0..n {
                let err = (b[c * n + i] - x[i]).abs();
                assert!(
                    err < 1e-8,
                    "n={n} kl={kl} ku={ku} rhs={c} row {i}: err {err}"
                );
            }
        }
    }

    #[test]
    fn solves_paper_band_shapes() {
        solve_roundtrip(9, 2, 3, 1, Transpose::No, 0.11);
        solve_roundtrip(64, 2, 3, 1, Transpose::No, 0.23);
        solve_roundtrip(64, 10, 7, 1, Transpose::No, 0.29);
        solve_roundtrip(31, 10, 7, 4, Transpose::No, 0.31);
    }

    #[test]
    fn solves_transpose() {
        solve_roundtrip(9, 2, 3, 1, Transpose::Yes, 0.41);
        solve_roundtrip(40, 10, 7, 3, Transpose::Yes, 0.43);
        solve_roundtrip(17, 1, 2, 2, Transpose::Yes, 0.47);
    }

    #[test]
    fn solves_extreme_bandwidths() {
        solve_roundtrip(12, 0, 0, 1, Transpose::No, 0.53); // diagonal
        solve_roundtrip(12, 0, 3, 2, Transpose::No, 0.59); // upper triangular band
        solve_roundtrip(12, 3, 0, 2, Transpose::No, 0.61); // lower triangular band
        solve_roundtrip(12, 11, 11, 1, Transpose::No, 0.67); // effectively dense
        solve_roundtrip(12, 0, 0, 1, Transpose::Yes, 0.71);
        solve_roundtrip(12, 3, 0, 1, Transpose::Yes, 0.73);
    }

    #[test]
    fn multiple_rhs_matches_repeated_single_rhs() {
        let n = 20;
        let (kl, ku) = (2, 3);
        let a = random_band(n, kl, ku, 0.83);
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        gbtf2(&l, &mut ab, &mut ipiv);
        let nrhs = 5;
        let mut b_multi = vec![0.0; n * nrhs];
        for c in 0..nrhs {
            for i in 0..n {
                b_multi[c * n + i] = ((c * n + i) as f64 * 0.77).cos();
            }
        }
        let mut b_single = b_multi.clone();
        gbtrs(Transpose::No, &l, &ab, &ipiv, &mut b_multi, n, nrhs);
        for c in 0..nrhs {
            gbtrs(
                Transpose::No,
                &l,
                &ab,
                &ipiv,
                &mut b_single[c * n..(c + 1) * n],
                n,
                1,
            );
        }
        assert_eq!(
            b_multi, b_single,
            "multi-RHS must equal column-by-column solves"
        );
    }

    #[test]
    fn respects_ldb_padding() {
        let n = 10;
        let a = random_band(n, 2, 1, 0.91);
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        gbtf2(&l, &mut ab, &mut ipiv);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let mut y = vec![0.0; n];
        gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut y);
        // ldb = n + 3 with sentinel padding.
        let ldb = n + 3;
        let mut b = vec![777.0; ldb];
        b[..n].copy_from_slice(&y);
        gbtrs(Transpose::No, &l, &ab, &ipiv, &mut b, ldb, 1);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
        for i in n..ldb {
            assert_eq!(b[i], 777.0, "padding must be untouched");
        }
    }
}
