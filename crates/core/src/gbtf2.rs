//! Unblocked band LU factorization with partial pivoting — the exact
//! semantics of LAPACK's `DGBTF2`, and the column-step building blocks the
//! paper's reference GPU implementation launches as individual kernels
//! (Section 5.1: `IAMAX`, `GET_UPDATE_BOUND`, `SET_FILLIN`, `SWAP`, `SCAL`,
//! `RANK_ONE_UPDATE`).
//!
//! On exit the band array holds `U` in rows `0..=kv` (bandwidth `kl + ku`)
//! and the multipliers of `L` in the `kl` rows below the diagonal. Pivot
//! indices are **0-based**: `ipiv[j] = j + jp` means full-matrix rows `j` and
//! `j + jp` were swapped at step `j`.

use crate::lanes;
use crate::layout::{update_bound, BandLayout};
use crate::scalar::Scalar;

/// State carried across column steps of the factorization.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnStepState {
    /// Highest column index (0-based) touched by any elimination so far.
    pub ju: usize,
    /// LAPACK info code: 0, or 1-based index of the first zero pivot.
    pub info: i32,
}

/// Zero the fill-in rows of the columns that become reachable before the
/// main loop starts: LAPACK `DGBTF2` prologue (columns `ku+1 .. min(kv, n)`
/// 0-based, band rows `kv - j .. kl`).
pub fn set_fillin_prologue<S: Scalar>(l: &BandLayout, ab: &mut [S]) {
    let kv = l.kv();
    let hi = kv.min(l.n);
    for j in (l.ku + 1)..hi {
        for i in (kv - j)..l.kl {
            ab[l.idx(i, j)] = S::ZERO;
        }
    }
}

/// `SET_FILLIN` for the main loop: when column `j + kv` enters the window,
/// zero its `kl` fill rows.
#[inline]
pub fn set_fillin_step<S: Scalar>(l: &BandLayout, ab: &mut [S], j: usize) {
    let kv = l.kv();
    if j + kv < l.n {
        for i in 0..l.kl {
            ab[l.idx(i, j + kv)] = S::ZERO;
        }
    }
}

/// `IAMAX` over the pivot candidates of column `j`: the diagonal plus the
/// `km` sub-diagonal entries. Returns the 0-based offset `jp` (`0..=km`).
#[inline]
pub fn pivot_search<S: Scalar>(l: &BandLayout, ab: &[S], j: usize) -> usize {
    let kv = l.kv();
    let km = l.km(j);
    let base = l.idx(kv, j);
    let mut jp = 0usize;
    let mut best = S::from_f64(-1.0);
    for k in 0..=km {
        let a = ab[base + k].abs();
        if a > best {
            best = a;
            jp = k;
        }
    }
    jp
}

/// `SWAP`: exchange full-matrix rows `j` and `j + jp` over columns
/// `j ..= ju` ("swap to the right only", paper §5.1 — the part of row `j`
/// left of the diagonal belongs to `L` and stays in place).
#[inline]
pub fn swap_step<S: Scalar>(l: &BandLayout, ab: &mut [S], j: usize, jp: usize, ju: usize) {
    if jp == 0 {
        return;
    }
    let kv = l.kv();
    for (k, c) in (j..=ju).enumerate() {
        ab.swap(l.idx(kv + jp - k, c), l.idx(kv - k, c));
    }
}

/// `SCAL`: divide the `km` sub-diagonal entries of column `j` by the pivot,
/// forming the multipliers of `L`.
#[inline]
pub fn scal_step<S: Scalar>(l: &BandLayout, ab: &mut [S], j: usize) {
    let kv = l.kv();
    let km = l.km(j);
    let piv = ab[l.idx(kv, j)];
    debug_assert!(piv != S::ZERO);
    let inv = S::ONE / piv;
    let base = l.idx(kv, j);
    lanes::for_each(&mut ab[base + 1..=base + km], |v| *v *= inv);
}

/// `RANK_ONE_UPDATE`: trailing update `A[j+1..j+km, j+1..=ju] -= l_j * u_j^T`
/// where `l_j` are the multipliers and `u_j` is row `j` of `U` (walked with
/// stride `ldab - 1` in band storage).
#[inline]
pub fn rank_one_update<S: Scalar>(l: &BandLayout, ab: &mut [S], j: usize, ju: usize) {
    let kv = l.kv();
    let km = l.km(j);
    if km == 0 || ju <= j {
        return;
    }
    for c in 1..=(ju - j) {
        let u = ab[l.idx(kv - c, j + c)];
        if u == S::ZERO {
            continue;
        }
        let src = l.idx(kv, j);
        let dst = l.idx(kv - c, j + c);
        // The multipliers live in column j and the updated entries in
        // column j + c; `src + km <= j*ldab + kv + kl < (j+1)*ldab <= dst`
        // (factor storage has `ldab >= kv + kl + 1`), so the two ranges
        // split cleanly and the update is a chunked axpy.
        let (lo, hi) = ab.split_at_mut(dst);
        let muls = &lo[src + 1..=src + km];
        lanes::zip_each(&mut hi[1..=km], muls, |ai, &li| *ai -= li * u);
    }
}

/// One full column step of the factorization (used by both the sequential
/// reference below and the simulated-GPU reference implementation).
/// Returns the pivot offset `jp` chosen at this step.
pub fn column_step<S: Scalar>(
    l: &BandLayout,
    ab: &mut [S],
    ipiv: &mut [i32],
    j: usize,
    state: &mut ColumnStepState,
) -> usize {
    let kv = l.kv();
    set_fillin_step(l, ab, j);
    let jp = pivot_search(l, ab, j);
    ipiv[j] = (j + jp) as i32;
    if ab[l.idx(kv + jp, j)] != S::ZERO {
        state.ju = update_bound(state.ju.max(j), j, l.ku, jp, l.n);
        swap_step(l, ab, j, jp, state.ju);
        if l.km(j) > 0 {
            scal_step(l, ab, j);
            rank_one_update(l, ab, j, state.ju);
        }
    } else if state.info == 0 {
        state.info = (j + 1) as i32;
    }
    jp
}

/// Unblocked band LU factorization with partial pivoting (`DGBTF2`).
///
/// * `ab` — band array in factor storage (`ldab >= 2*kl + ku + 1`),
///   overwritten with the factors.
/// * `ipiv` — `min(m, n)` pivot indices (0-based) on exit.
///
/// Returns the LAPACK info code: `0` on success, `j > 0` if `U[j-1][j-1]`
/// is exactly zero (factorization completed; solves will divide by zero).
pub fn gbtf2<S: Scalar>(l: &BandLayout, ab: &mut [S], ipiv: &mut [i32]) -> i32 {
    debug_assert!(ab.len() >= l.len(), "band array too short");
    debug_assert!(ipiv.len() >= l.m.min(l.n), "pivot array too short");
    debug_assert!(l.row_offset == l.kv(), "gbtf2 requires factor storage");
    set_fillin_prologue(l, ab);
    let mut state = ColumnStepState::default();
    for j in 0..l.m.min(l.n) {
        column_step(l, ab, ipiv, j, &mut state);
    }
    state.info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::dense;

    /// Reconstruct the original matrix from band factors by undoing the
    /// factorization exactly: `A = P_0 E_0^{-1} P_1 E_1^{-1} ... U`, where
    /// the multipliers of `E_j` sit below the diagonal of band column `j`
    /// (band storage keeps them in *pre-subsequent-swap* position, unlike
    /// dense LU — the paper's "lower factor is not stored in its final
    /// form").
    fn reconstruct_from_band(l: &super::BandLayout, ab: &[f64], ipiv: &[i32]) -> Vec<f64> {
        let (m, n) = (l.m, l.n);
        let kv = l.kv();
        // Start from U (rows 0..=kv of the band, i.e. i in [j-kv, j]).
        let mut x = vec![0.0; m * n];
        for j in 0..n {
            for i in j.saturating_sub(kv)..=(j.min(m - 1)) {
                x[i + j * m] = ab[l.idx(kv + i - j, j)];
            }
        }
        for j in (0..m.min(n)).rev() {
            let km = l.km(j);
            // Undo the elimination: rows j+1..=j+km += l_i * row j.
            for i in 1..=km {
                let mult = ab[l.idx(kv + i, j)];
                if mult != 0.0 {
                    for c in 0..n {
                        x[(j + i) + c * m] += mult * x[j + c * m];
                    }
                }
            }
            // Undo the pivot swap.
            let p = ipiv[j] as usize;
            if p != j {
                for c in 0..n {
                    x.swap(j + c * m, p + c * m);
                }
            }
        }
        x
    }

    /// Factor a band matrix; check pivots + `U` against the dense LU oracle
    /// and the full factorization by exact reconstruction.
    fn check_against_dense(a: &BandMatrix) {
        let l = a.layout();
        let (m, n) = (l.m, l.n);
        let dense_a = a.to_dense();

        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; m.min(n)];
        let info_band = gbtf2(&l, &mut ab, &mut ipiv);

        let mut lu = dense_a.clone();
        let mut dpiv = vec![0i32; m.min(n)];
        let info_dense = dense::getrf(m, n, &mut lu, m, &mut dpiv);
        assert_eq!(info_band, info_dense, "info mismatch");
        assert_eq!(ipiv, dpiv, "pivot sequences must agree");

        // U is swap-invariant: compare entry-wise against dense LU.
        let kv = l.kv();
        for j in 0..n {
            for i in j.saturating_sub(kv)..=(j.min(m - 1)) {
                let band_val = ab[l.idx(kv + i - j, j)];
                let dense_val = lu[i + j * m];
                assert!(
                    (band_val - dense_val).abs() <= 1e-12 * dense_val.abs().max(1.0),
                    "U mismatch at ({i},{j}): band {band_val} dense {dense_val}"
                );
            }
        }

        // L is validated through exact reconstruction of A.
        let rebuilt = reconstruct_from_band(&l, &ab, &ipiv);
        for j in 0..n {
            for i in 0..m {
                let (orig, got) = (dense_a[i + j * m], rebuilt[i + j * m]);
                assert!(
                    (orig - got).abs() <= 1e-11 * orig.abs().max(1.0),
                    "reconstruction mismatch at ({i},{j}): {got} != {orig}"
                );
            }
        }
    }

    fn fig2_matrix() -> BandMatrix {
        // 9x9, kl = 2, ku = 3 like the paper's Figure 2, diagonally dominant.
        let mut a = BandMatrix::zeros_factor(9, 9, 2, 3).unwrap();
        let mut v = 0.3f64;
        for j in 0..9 {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.7 + 0.13).fract();
                a.set(i, j, if i == j { 4.0 + v } else { v - 0.5 });
            }
        }
        a
    }

    #[test]
    fn factors_match_dense_oracle_dominant() {
        check_against_dense(&fig2_matrix());
    }

    #[test]
    fn factors_match_dense_oracle_pivoting_required() {
        // Small diagonal entries force row interchanges.
        let mut a = BandMatrix::zeros_factor(8, 8, 2, 1).unwrap();
        let mut v = 0.9f64;
        for j in 0..8 {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 3.9).fract(); // chaotic but deterministic
                a.set(i, j, if i == j { 0.01 * v } else { v + 0.2 });
            }
        }
        check_against_dense(&a);
    }

    #[test]
    fn rectangular_wide_and_tall() {
        for (m, n, kl, ku) in [(6, 9, 2, 1), (9, 6, 1, 2), (5, 12, 3, 0), (12, 5, 0, 3)] {
            let mut a = BandMatrix::zeros_factor(m, n, kl, ku).unwrap();
            let mut v = 0.37f64;
            for j in 0..n {
                let (s, e) = a.layout().col_rows(j);
                for i in s..e {
                    v = (v * 2.3 + 0.11).fract();
                    a.set(i, j, v - 0.5 + if i == j { 3.0 } else { 0.0 });
                }
            }
            check_against_dense(&a);
        }
    }

    #[test]
    fn zero_pivot_reports_info() {
        // First column identically zero -> info = 1 and factorization
        // continues (like LAPACK).
        let mut a = BandMatrix::zeros_factor(4, 4, 1, 1).unwrap();
        a.set(0, 1, 1.0);
        a.set(1, 1, 2.0);
        a.set(2, 1, 0.5);
        a.set(1, 2, 1.0);
        a.set(2, 2, 3.0);
        a.set(3, 2, 0.5);
        a.set(2, 3, 1.0);
        a.set(3, 3, 2.0);
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; 4];
        let info = gbtf2(&l, &mut ab, &mut ipiv);
        assert_eq!(info, 1);
    }

    #[test]
    fn diagonal_matrix_is_its_own_factorization() {
        let mut a = BandMatrix::zeros_factor(5, 5, 0, 0).unwrap();
        for j in 0..5 {
            a.set(j, j, (j + 1) as f64);
        }
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; 5];
        assert_eq!(gbtf2(&l, &mut ab, &mut ipiv), 0);
        for j in 0..5 {
            assert_eq!(ab[l.idx(l.kv(), j)], (j + 1) as f64);
            assert_eq!(ipiv[j], j as i32);
        }
    }

    #[test]
    fn tridiagonal_no_pivoting_when_dominant() {
        let n = 10;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 4.0);
            if j > 0 {
                a.set(j - 1, j, -1.0);
                a.set(j, j - 1, -1.0);
            }
        }
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        assert_eq!(gbtf2(&l, &mut ab, &mut ipiv), 0);
        // Diagonal dominance => no interchanges.
        for (j, &p) in ipiv.iter().enumerate() {
            assert_eq!(p, j as i32);
        }
        check_against_dense(&a);
    }

    #[test]
    fn pivot_offsets_bounded_by_km() {
        let a = fig2_matrix();
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; 9];
        gbtf2(&l, &mut ab, &mut ipiv);
        for (j, &p) in ipiv.iter().enumerate() {
            let jp = p as usize - j;
            assert!(jp <= l.km(j), "pivot offset {jp} exceeds km {}", l.km(j));
        }
    }

    #[test]
    fn padded_ldab_supported() {
        // A band array with extra leading-dimension padding must factor to
        // the same values as the minimal layout.
        use crate::layout::{BandLayout, BandStorage};
        let a = fig2_matrix();
        let lmin = a.layout();
        let mut ab_min = a.data().to_vec();
        let mut p_min = vec![0i32; 9];
        gbtf2(&lmin, &mut ab_min, &mut p_min);

        let lpad = BandLayout::with_ldab(9, 9, 2, 3, lmin.ldab + 3, BandStorage::Factor).unwrap();
        let mut ab_pad = vec![f64::NAN; lpad.len()];
        for j in 0..9 {
            let (s, e) = lmin.col_rows_filled(j);
            for i in s..e {
                ab_pad[lpad.idx_full(i, j).unwrap()] = a.get(i, j);
            }
            // Zero the fill rows like BandMatrix does.
            for r in 0..lpad.kl {
                ab_pad[lpad.idx(r, j)] = 0.0;
            }
        }
        let mut p_pad = vec![0i32; 9];
        gbtf2(&lpad, &mut ab_pad, &mut p_pad);
        assert_eq!(p_min, p_pad);
        for j in 0..9 {
            let (s, e) = lmin.col_rows_filled(j);
            for i in s..e {
                let vmin = ab_min[lmin.idx_full(i, j).unwrap()];
                let vpad = ab_pad[lpad.idx_full(i, j).unwrap()];
                assert_eq!(vmin, vpad, "({i},{j})");
            }
        }
    }

    #[test]
    fn building_blocks_compose_to_gbtf2() {
        // Running column_step manually must equal gbtf2.
        let a = fig2_matrix();
        let l = a.layout();
        let mut ab1 = a.data().to_vec();
        let mut ipiv1 = vec![0i32; 9];
        let info1 = gbtf2(&l, &mut ab1, &mut ipiv1);

        let mut ab2 = a.data().to_vec();
        let mut ipiv2 = vec![0i32; 9];
        set_fillin_prologue(&l, &mut ab2);
        let mut st = ColumnStepState::default();
        for j in 0..9 {
            column_step(&l, &mut ab2, &mut ipiv2, j, &mut st);
        }
        assert_eq!(info1, st.info);
        assert_eq!(ipiv1, ipiv2);
        assert_eq!(ab1, ab2, "bit-for-bit identical factors");
    }
}
