//! Scalar abstraction for the precision-generic numeric stack.
//!
//! Every container and routine in the band-LU stack is generic over a
//! [`Scalar`] — today `f32` or `f64`. The trait is **sealed**: the numeric
//! guarantees documented across the workspace (LAPACK-faithful pivoting,
//! bitwise reproducibility under every `ParallelPolicy`) are only
//! established for these two IEEE types, so downstream crates cannot add
//! implementations.
//!
//! The design constraint that shaped this trait is bitwise stability of the
//! pre-existing `f64` paths: every generic routine must compile to the exact
//! operation sequence the concrete `f64` code used, so the trait exposes
//! primitive arithmetic (via supertrait operators), `abs`, and constants —
//! never fused or reassociated helpers like `mul_add`.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod private {
    /// Seal: only `f32` and `f64` may implement [`super::Scalar`].
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Runtime tag for a [`Scalar`] type — the identity the serve layer buckets
/// on and the cost model prices with.
///
/// Orders `F32 < F64` so shape keys carrying a precision still iterate
/// deterministically in ordered maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
}

impl Precision {
    /// Bytes per element (`4` or `8`) — the factor every shared-memory
    /// footprint formula scales by.
    #[inline]
    #[must_use]
    pub fn elem_bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// Simulated FLOP throughput class relative to fp64: GPUs in this
    /// workspace issue fp32 on twice the lanes per SM (H100: 128 fp32 vs 64
    /// fp64 cores; CDNA2 similar for vector ops).
    #[inline]
    #[must_use]
    pub fn flop_lane_multiplier(self) -> u32 {
        match self {
            Precision::F32 => 2,
            Precision::F64 => 1,
        }
    }

    /// Short lowercase name (`"f32"` / `"f64"`), used in shape-key display
    /// and artifact files.
    #[inline]
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        }
    }
}

impl Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// IEEE floating-point element type of the band-LU stack (`f32` or `f64`).
///
/// The supertrait operators give generic code access to the primitive
/// `+ - * /` and comparisons only; anything that could change the rounding
/// sequence (FMA, pairwise sums) is deliberately absent.
pub trait Scalar:
    private::Sealed
    + Copy
    + Default
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision.
    const EPSILON: Self;
    /// Most negative finite value (the `iamax` initial best).
    const MIN: Self;
    /// Bytes per element — `size_of::<Self>()` as a const.
    const BYTES: usize;
    /// Runtime precision tag.
    const PRECISION: Precision;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE maximum (as `f32::max`/`f64::max`).
    fn max(self, other: Self) -> Self;
    /// Lossy cast from `f64` (round-to-nearest; identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const MIN: Self = f32::MIN;
    const BYTES: usize = 4;
    const PRECISION: Precision = Precision::F32;

    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        self.max(other)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const MIN: Self = f64::MIN;
    const BYTES: usize = 8;
    const PRECISION: Precision = Precision::F64;

    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        self.max(other)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(<f64 as Scalar>::EPSILON, f64::EPSILON);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
        assert_eq!(f64::BYTES, std::mem::size_of::<f64>());
        assert_eq!(f32::BYTES, std::mem::size_of::<f32>());
    }

    #[test]
    fn precision_tags() {
        assert_eq!(<f32 as Scalar>::PRECISION, Precision::F32);
        assert_eq!(<f64 as Scalar>::PRECISION, Precision::F64);
        assert_eq!(Precision::F32.elem_bytes(), 4);
        assert_eq!(Precision::F64.elem_bytes(), 8);
        assert_eq!(Precision::F32.flop_lane_multiplier(), 2);
        assert_eq!(Precision::F64.flop_lane_multiplier(), 1);
    }

    #[test]
    fn precision_orders_below_f64() {
        assert!(Precision::F32 < Precision::F64);
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::F64.to_string(), "f64");
    }

    #[test]
    fn casts_round_trip_f32_exactly() {
        for v in [0.0f32, -0.0, 1.5, -3.25e7, f32::MIN, f32::MAX] {
            assert_eq!(<f32 as Scalar>::from_f64(v.to_f64()), v);
        }
    }

    #[test]
    fn generic_arithmetic_matches_concrete() {
        fn recip<S: Scalar>(x: S) -> S {
            S::ONE / x
        }
        assert_eq!(recip(4.0f64).to_bits(), (1.0f64 / 4.0).to_bits());
        assert_eq!(recip(3.0f32).to_bits(), (1.0f32 / 3.0).to_bits());
    }
}
