//! Retained factorizations: the container a serving-layer factor cache
//! stores per operator.
//!
//! One [`RetainedFactor`] holds a single lane's `gbtrf` output — the
//! factored band storage (with fill-in rows) at the precision the lane
//! ran at, plus its 0-based pivot sequence. Retention is lossless: the
//! payload is the exact factored band, so a later `gbtrs` over it is
//! bitwise-identical to the solve that would have followed a fresh
//! factorization.

use crate::batch::BandBatch;
use crate::layout::BandLayout;
use crate::scalar::Precision;
use crate::spike::SpikeFactor;

/// Factored band payload at the precision the factorization ran at.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorPayload {
    /// Double-precision factors.
    F64(Vec<f64>),
    /// Single-precision factors (F32-tagged serve traffic).
    F32(Vec<f32>),
    /// Double-precision SPIKE factorization (large-`n` split operators):
    /// `P` block LUs + spikes + the factored reduced system.
    SpikeF64(Box<SpikeFactor<f64>>),
    /// Single-precision SPIKE factorization.
    SpikeF32(Box<SpikeFactor<f32>>),
}

/// One lane's retained LU factorization: factored band + pivots.
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedFactor {
    /// Band layout of the factored storage (factor flavour, with
    /// fill-in rows).
    pub layout: BandLayout,
    /// The factored band payload.
    pub payload: FactorPayload,
    /// 0-based pivot indices, one per eliminated column.
    pub pivots: Vec<i32>,
}

impl RetainedFactor {
    /// Harvest one lane out of a factored batch (`f64`).
    #[must_use]
    pub fn from_lane_f64(a: &BandBatch<f64>, piv: &[i32], lane: usize) -> Self {
        let stride = a.matrix_stride();
        RetainedFactor {
            layout: a.layout(),
            payload: FactorPayload::F64(a.data()[lane * stride..(lane + 1) * stride].to_vec()),
            pivots: piv.to_vec(),
        }
    }

    /// Harvest one lane out of a factored batch (`f32`).
    #[must_use]
    pub fn from_lane_f32(a: &BandBatch<f32>, piv: &[i32], lane: usize) -> Self {
        let stride = a.matrix_stride();
        RetainedFactor {
            layout: a.layout(),
            payload: FactorPayload::F32(a.data()[lane * stride..(lane + 1) * stride].to_vec()),
            pivots: piv.to_vec(),
        }
    }

    /// Precision of the retained payload.
    #[must_use]
    pub fn precision(&self) -> Precision {
        match self.payload {
            FactorPayload::F64(_) | FactorPayload::SpikeF64(_) => Precision::F64,
            FactorPayload::F32(_) | FactorPayload::SpikeF32(_) => Precision::F32,
        }
    }

    /// The `f64` monolithic band factors, when retained at double
    /// precision (`None` for SPIKE payloads — those solve through
    /// [`crate::spike::spike_solve_retained`]).
    #[must_use]
    pub fn factors_f64(&self) -> Option<&[f64]> {
        match &self.payload {
            FactorPayload::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The `f32` monolithic band factors, when retained at single
    /// precision.
    #[must_use]
    pub fn factors_f32(&self) -> Option<&[f32]> {
        match &self.payload {
            FactorPayload::F32(v) => Some(v),
            _ => None,
        }
    }

    /// The retained SPIKE factorization, when the operator was split
    /// (`f64`).
    #[must_use]
    pub fn spike_f64(&self) -> Option<&SpikeFactor<f64>> {
        match &self.payload {
            FactorPayload::SpikeF64(f) => Some(f),
            _ => None,
        }
    }

    /// The retained SPIKE factorization, when the operator was split
    /// (`f32`).
    #[must_use]
    pub fn spike_f32(&self) -> Option<&SpikeFactor<f32>> {
        match &self.payload {
            FactorPayload::SpikeF32(f) => Some(f),
            _ => None,
        }
    }

    /// Retained footprint in bytes (payload + pivots) — what a cache's
    /// byte budget accounts against.
    #[must_use]
    pub fn bytes(&self) -> usize {
        let payload = match &self.payload {
            FactorPayload::F64(v) => v.len() * std::mem::size_of::<f64>(),
            FactorPayload::F32(v) => v.len() * std::mem::size_of::<f32>(),
            FactorPayload::SpikeF64(f) => f.bytes(),
            FactorPayload::SpikeF32(f) => f.bytes(),
        };
        payload + self.pivots.len() * std::mem::size_of::<i32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbtf2::gbtf2;

    #[test]
    fn harvested_lane_round_trips_bitwise() {
        let batch = 3;
        let (n, kl, ku) = (8, 1, 2);
        let mut a = BandBatch::<f64>::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    m.set(i, j, ((i + 2 * j + id) % 4) as f64 * 0.25 + 0.1);
                }
                m.set(j, j, 3.0);
            }
        })
        .unwrap();
        let l = a.layout();
        let stride = a.matrix_stride();
        let mut pivots = vec![vec![0i32; n]; batch];
        for k in 0..batch {
            let ab = &mut a.data_mut()[k * stride..(k + 1) * stride];
            assert_eq!(gbtf2(&l, ab, &mut pivots[k]), 0);
        }
        let lane = 1;
        let retained = RetainedFactor::from_lane_f64(&a, &pivots[lane], lane);
        assert_eq!(retained.precision(), Precision::F64);
        assert_eq!(
            retained.factors_f64().unwrap(),
            &a.data()[lane * stride..(lane + 1) * stride]
        );
        assert_eq!(retained.pivots, pivots[lane]);
        assert!(retained.factors_f32().is_none());
        assert_eq!(
            retained.bytes(),
            stride * std::mem::size_of::<f64>() + n * std::mem::size_of::<i32>()
        );
    }

    #[test]
    fn f32_payload_reports_half_width() {
        let l = BandLayout::factor(4, 4, 1, 1).unwrap();
        let f64_side = RetainedFactor {
            layout: l,
            payload: FactorPayload::F64(vec![0.0; l.len()]),
            pivots: vec![0; 4],
        };
        let f32_side = RetainedFactor {
            layout: l,
            payload: FactorPayload::F32(vec![0.0; l.len()]),
            pivots: vec![0; 4],
        };
        assert_eq!(f32_side.precision(), Precision::F32);
        assert!(f32_side.factors_f32().is_some());
        assert_eq!(
            f64_side.bytes() - f32_side.bytes(),
            l.len() * std::mem::size_of::<f32>()
        );
    }
}
