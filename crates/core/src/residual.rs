//! Backward-error measurement for band solves.
//!
//! Every test, example and benchmark in the workspace certifies solutions
//! through these functions rather than comparing against "known" solutions,
//! matching standard LAPACK testing methodology: a solver is correct when
//! the componentwise/normwise backward error is a small multiple of machine
//! epsilon.

use crate::band::BandMatrixRef;
use crate::blas1::norm_inf;
use crate::blas2::gbmv;

/// Normwise backward error of a computed solution `x` for `A x = b`:
///
/// `‖b − A x‖_∞ / (‖A‖_∞ ‖x‖_∞ + ‖b‖_∞)`
///
/// A numerically-stable solve yields a value of order `n * EPS`.
pub fn backward_error(a: BandMatrixRef<'_>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = b.to_vec();
    gbmv(-1.0, a, x, 1.0, &mut r);
    let num = norm_inf(&r);
    let a_norm = {
        // inf-norm of the structural band.
        let l = a.layout;
        let mut row_sums = vec![0.0f64; l.m];
        for j in 0..l.n {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                row_sums[i] += a.get(i, j).abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    };
    let den = a_norm * norm_inf(x) + norm_inf(b);
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Backward errors for a batch: `mats[i]`, `x` block `i`, `b` block `i`
/// (blocks of `ldb * nrhs`; per-RHS errors are maximized).
pub fn backward_error_batch<'a>(
    mats: impl Iterator<Item = BandMatrixRef<'a>>,
    xs: &[f64],
    bs: &[f64],
    ldb: usize,
    nrhs: usize,
) -> Vec<f64> {
    let stride = ldb * nrhs;
    mats.enumerate()
        .map(|(id, a)| {
            let n = a.layout.n;
            let mut worst = 0.0f64;
            for c in 0..nrhs {
                let off = id * stride + c * ldb;
                let x = &xs[off..off + n];
                let b = &bs[off..off + n];
                worst = worst.max(backward_error(a, x, b));
            }
            worst
        })
        .collect()
}

/// Relative forward error `‖x − x_ref‖_∞ / ‖x_ref‖_∞` (diagnostic only —
/// forward error depends on conditioning, so tests should prefer
/// [`backward_error`]).
pub fn forward_error(x: &[f64], x_ref: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), x_ref.len());
    let mut num = 0.0f64;
    for (a, b) in x.iter().zip(x_ref) {
        num = num.max((a - b).abs());
    }
    let den = norm_inf(x_ref);
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;

    fn tridiag(n: usize) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 2.0);
            if j > 0 {
                a.set(j - 1, j, -1.0);
                a.set(j, j - 1, -1.0);
            }
        }
        a
    }

    #[test]
    fn exact_solution_has_zero_residual() {
        let a = tridiag(4);
        // x = ones: A*ones = [1, 0, 0, 1].
        let x = [1.0; 4];
        let b = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(backward_error(a.as_ref(), &x, &b), 0.0);
    }

    #[test]
    fn wrong_solution_has_large_residual() {
        let a = tridiag(4);
        let x = [5.0, -3.0, 2.0, 0.0];
        let b = [1.0, 0.0, 0.0, 1.0];
        assert!(backward_error(a.as_ref(), &x, &b) > 1e-2);
    }

    #[test]
    fn zero_everything_is_zero_error() {
        let a = tridiag(3);
        assert_eq!(backward_error(a.as_ref(), &[0.0; 3], &[0.0; 3]), 0.0);
    }

    #[test]
    fn forward_error_relative() {
        assert_eq!(forward_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((forward_error(&[1.1, 2.0], &[1.0, 2.0]) - 0.05).abs() < 1e-15);
        assert_eq!(forward_error(&[1.0], &[0.0]), 1.0);
    }

    #[test]
    fn batch_backward_errors() {
        let a0 = tridiag(3);
        let a1 = tridiag(3);
        let xs = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let bs = [1.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let errs = backward_error_batch([a0.as_ref(), a1.as_ref()].into_iter(), &xs, &bs, 3, 1);
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0], 0.0);
        assert_eq!(errs[1], 0.0);
    }
}
