//! Band LU factorization driver (`DGBTRF` semantics).
//!
//! LAPACK's `DGBTRF` switches between the unblocked `DGBTF2` and a blocked
//! algorithm; for the thin bands this paper targets (`kl, ku <= 32`, below
//! LAPACK's crossover `NB`), the unblocked path is what actually executes in
//! MKL as well. [`gbtrf`] therefore uses [`crate::gbtf2::gbtf2`] for small
//! bands and a block-column variant ([`gbtrf_blocked`]) for wide bands —
//! the blocked variant exists mainly as the CPU-baseline ablation
//! (`ablation_cpu_blocked`).

use crate::gbtf2::{column_step, set_fillin_prologue, ColumnStepState};
use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// Block-size crossover mirroring LAPACK: bands narrower than this run the
/// unblocked code.
pub const GBTRF_NB: usize = 32;

/// Band LU factorization with partial pivoting. Chooses the unblocked or
/// blocked path automatically (both produce identical factors and pivots).
///
/// Returns the LAPACK info code (0, or 1-based index of the first zero
/// pivot).
pub fn gbtrf<S: Scalar>(l: &BandLayout, ab: &mut [S], ipiv: &mut [i32]) -> i32 {
    if l.kl < GBTRF_NB && l.ku < GBTRF_NB {
        crate::gbtf2::gbtf2(l, ab, ipiv)
    } else {
        gbtrf_blocked(l, ab, ipiv, GBTRF_NB)
    }
}

/// Block-column band LU: processes `nb` columns per outer iteration but
/// performs the numerics with the same column-step building blocks, so the
/// factors are bit-for-bit identical to `gbtf2`. The blocking exists to
/// model cache-friendly panel traversal on the CPU baseline (the sliding
/// window of the paper's GPU kernel is the same idea in shared memory).
pub fn gbtrf_blocked<S: Scalar>(l: &BandLayout, ab: &mut [S], ipiv: &mut [i32], nb: usize) -> i32 {
    debug_assert!(nb > 0);
    set_fillin_prologue(l, ab);
    let kmin = l.m.min(l.n);
    let mut state = ColumnStepState::default();
    let mut j = 0usize;
    while j < kmin {
        let jb = nb.min(kmin - j);
        for jj in j..j + jb {
            column_step(l, ab, ipiv, jj, &mut state);
        }
        j += jb;
    }
    state.info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;

    fn random_band(n: usize, kl: usize, ku: usize, seed: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 2.1 + 0.17).fract();
                a.set(i, j, v - 0.5);
            }
        }
        // Shift the diagonal to make it comfortably nonsingular.
        for j in 0..n {
            let d = a.get(j, j);
            a.set(j, j, d + 3.0);
        }
        a
    }

    #[test]
    fn blocked_equals_unblocked_bit_for_bit() {
        for (n, kl, ku, nb) in [(40, 2, 3, 4), (40, 10, 7, 8), (33, 5, 5, 32), (64, 1, 1, 7)] {
            let a = random_band(n, kl, ku, 0.19 + n as f64 * 0.01);
            let l = a.layout();
            let mut ab1 = a.data().to_vec();
            let mut p1 = vec![0i32; n];
            let info1 = crate::gbtf2::gbtf2(&l, &mut ab1, &mut p1);
            let mut ab2 = a.data().to_vec();
            let mut p2 = vec![0i32; n];
            let info2 = gbtrf_blocked(&l, &mut ab2, &mut p2, nb);
            assert_eq!(info1, info2);
            assert_eq!(p1, p2);
            assert_eq!(ab1, ab2);
        }
    }

    #[test]
    fn driver_picks_working_path_for_wide_bands() {
        let n = 80;
        let (kl, ku) = (35, 33); // above GBTRF_NB -> blocked path
        let a = random_band(n, kl, ku, 0.27);
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        assert_eq!(gbtrf(&l, &mut ab, &mut ipiv), 0);
        // Solve against it to prove the factors are usable.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; n];
        crate::blas2::gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
        crate::gbtrs::gbtrs(crate::gbtrs::Transpose::No, &l, &ab, &ipiv, &mut b, n, 1);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-8);
        }
    }
}
