//! Band factorize-and-solve driver (`DGBSV` semantics, paper Section 7):
//! `gbtrf` followed by `gbtrs`.

use crate::gbtrf::gbtrf;
use crate::gbtrs::{gbtrs, Transpose};
use crate::layout::BandLayout;
use crate::scalar::Scalar;

/// Solve `A x = b` for a band matrix: factorize in place, then solve.
///
/// * `ab` — band array in factor storage; overwritten with the factors.
/// * `ipiv` — `n` pivot indices (0-based) on exit.
/// * `b` — `ldb x nrhs` column-major RHS block; overwritten with `x`.
///
/// Returns the LAPACK info code from the factorization. When `info != 0`
/// the triangular solve is **not** performed (exactly like `DGBSV`) and `b`
/// is left as the (pivoted) input.
pub fn gbsv<S: Scalar>(
    l: &BandLayout,
    ab: &mut [S],
    ipiv: &mut [i32],
    b: &mut [S],
    ldb: usize,
    nrhs: usize,
) -> i32 {
    debug_assert_eq!(l.m, l.n, "gbsv requires a square system");
    let info = gbtrf(l, ab, ipiv);
    if info == 0 {
        gbtrs(Transpose::No, l, ab, ipiv, b, ldb, nrhs);
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::blas2::gbmv;
    use crate::residual::backward_error;

    fn random_band(n: usize, kl: usize, ku: usize, seed: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.3 + 0.241).fract();
                a.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
        a
    }

    #[test]
    fn gbsv_solves_with_small_backward_error() {
        for (n, kl, ku) in [(9, 2, 3), (50, 2, 3), (50, 10, 7), (128, 1, 1)] {
            let a = random_band(n, kl, ku, 0.05 + kl as f64 * 0.01);
            let l = a.layout();
            let mut b = vec![0.0; n];
            let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
            gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);
            let b0 = b.clone();
            let mut ab = a.data().to_vec();
            let mut ipiv = vec![0i32; n];
            assert_eq!(gbsv(&l, &mut ab, &mut ipiv, &mut b, n, 1), 0);
            let berr = backward_error(a.as_ref(), &b, &b0);
            assert!(berr < 1e-12, "n={n} kl={kl} ku={ku}: backward error {berr}");
        }
    }

    #[test]
    fn gbsv_singular_skips_solve() {
        // Zero matrix: info = 1 and b unchanged (no pivoting happened since
        // every column is zero -> jp = 0 -> no swaps).
        let n = 5;
        let a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        let mut b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let info = gbsv(&l, &mut ab, &mut ipiv, &mut b, n, 1);
        assert_eq!(info, 1);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn gbsv_multi_rhs() {
        let n = 30;
        let a = random_band(n, 3, 2, 0.33);
        let l = a.layout();
        let nrhs = 10; // the paper's Figure 9 setting
        let mut xs = vec![0.0; n * nrhs];
        for (k, v) in xs.iter_mut().enumerate() {
            *v = ((k as f64) * 0.11).cos();
        }
        let mut b = vec![0.0; n * nrhs];
        for c in 0..nrhs {
            let mut y = vec![0.0; n];
            gbmv(1.0, a.as_ref(), &xs[c * n..(c + 1) * n], 0.0, &mut y);
            b[c * n..(c + 1) * n].copy_from_slice(&y);
        }
        let mut ab = a.data().to_vec();
        let mut ipiv = vec![0i32; n];
        assert_eq!(gbsv(&l, &mut ab, &mut ipiv, &mut b, n, nrhs), 0);
        for k in 0..n * nrhs {
            assert!((b[k] - xs[k]).abs() < 1e-8);
        }
    }
}
