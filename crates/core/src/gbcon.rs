//! Condition-number estimation for factored band matrices (`DGBCON`
//! semantics, 1-norm).
//!
//! The paper motivates the band solver with batches whose "numerical
//! conditioning affects the behavior of numerical stability measures"
//! (§2.1) and highlights that a direct band solver comes "with known
//! numerical estimates and bounds". This module supplies the estimate:
//! Hager–Higham 1-norm estimation (`DLACN2`-style) driven by solves with
//! the existing `GBTRF` factors, returning `rcond = 1 / (‖A‖_1 ·
//! est(‖A^{-1}‖_1))`.

use crate::band::BandMatrixRef;
use crate::gbtrs::{gbtrs, Transpose};
use crate::layout::BandLayout;

/// Maximum Hager iterations (LAPACK uses 5).
const ITMAX: usize = 5;

/// Estimate `‖A^{-1}‖_1` using the factorization: repeatedly solve
/// `A x = e` and `A^T y = sign(x)` (Hager's algorithm, the core of
/// `DLACN2`).
pub fn inverse_norm1_estimate(l: &BandLayout, ab: &[f64], ipiv: &[i32]) -> f64 {
    let n = l.n;
    if n == 0 {
        return 0.0;
    }
    // Start with the uniform vector.
    let mut x = vec![1.0 / n as f64; n];
    gbtrs(Transpose::No, l, ab, ipiv, &mut x, n, 1);
    let mut est = x.iter().map(|v| v.abs()).sum::<f64>();
    if n > 1 {
        let sgn = |v: f64| if v >= 0.0 { 1.0 } else { -1.0 };
        let mut xsign: Vec<f64> = x.iter().map(|&v| sgn(v)).collect();
        for _ in 0..ITMAX {
            // w = A^{-T} xi: its largest component points at the column of
            // A^{-1} with (locally) largest 1-norm.
            let mut w = xsign.clone();
            gbtrs(Transpose::Yes, l, ab, ipiv, &mut w, n, 1);
            let jmax = w
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.abs().total_cmp(&b.abs()))
                .map(|(j, _)| j)
                .unwrap_or(0);
            // Probe that column: v = A^{-1} e_j.
            let mut v = vec![0.0; n];
            v[jmax] = 1.0;
            gbtrs(Transpose::No, l, ab, ipiv, &mut v, n, 1);
            let new_est = v.iter().map(|t| t.abs()).sum::<f64>();
            let new_sign: Vec<f64> = v.iter().map(|&t| sgn(t)).collect();
            if new_est <= est {
                break;
            }
            est = new_est;
            if new_sign == xsign {
                break;
            }
            xsign = new_sign;
        }
        // LAPACK's alternating-vector safeguard against underestimation.
        let mut alt: Vec<f64> = (0..n)
            .map(|i| {
                let mag = 1.0 + i as f64 / (n - 1) as f64;
                if i % 2 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect();
        gbtrs(Transpose::No, l, ab, ipiv, &mut alt, n, 1);
        let alt_est = 2.0 * alt.iter().map(|t| t.abs()).sum::<f64>() / (3.0 * n as f64);
        est = est.max(alt_est);
    }
    est
}

/// Reciprocal condition number estimate in the 1-norm:
/// `rcond = 1 / (‖A‖_1 * est(‖A^{-1}‖_1))`, using the original matrix for
/// the norm and the factors for the inverse estimate. Returns 0 for a
/// singular factorization (zero diagonal in `U`).
pub fn gbcon(a: BandMatrixRef<'_>, l: &BandLayout, ab: &[f64], ipiv: &[i32]) -> f64 {
    let n = l.n;
    // Singular U -> rcond 0 (a solve would divide by zero).
    let kv = l.kv();
    for j in 0..n {
        if ab[l.idx(kv, j)] == 0.0 {
            return 0.0;
        }
    }
    let anorm = a.to_owned().norm_one();
    if anorm == 0.0 {
        return 0.0;
    }
    let inv_norm = inverse_norm1_estimate(l, ab, ipiv);
    if inv_norm == 0.0 {
        return 0.0;
    }
    1.0 / (anorm * inv_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::BandMatrix;
    use crate::gbtf2::gbtf2;

    fn factored(a: &BandMatrix) -> (Vec<f64>, Vec<i32>) {
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut piv = vec![0i32; l.n];
        assert_eq!(gbtf2(&l, &mut ab, &mut piv), 0);
        (ab, piv)
    }

    #[test]
    fn identity_has_rcond_one() {
        let n = 8;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 1.0);
        }
        let (ab, piv) = factored(&a);
        let rcond = gbcon(a.as_ref(), &a.layout(), &ab, &piv);
        assert!((rcond - 1.0).abs() < 1e-12, "rcond {rcond}");
    }

    #[test]
    fn diagonal_matrix_exact_condition() {
        // diag(1, 10, 100): kappa_1 = 100, rcond = 0.01.
        let n = 3;
        let mut a = BandMatrix::zeros_factor(n, n, 0, 0).unwrap();
        a.set(0, 0, 1.0);
        a.set(1, 1, 10.0);
        a.set(2, 2, 100.0);
        let (ab, piv) = factored(&a);
        let rcond = gbcon(a.as_ref(), &a.layout(), &ab, &piv);
        assert!((rcond - 0.01).abs() < 1e-12, "rcond {rcond}");
    }

    #[test]
    fn graded_matrix_detected_as_ill_conditioned() {
        let n = 20;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            let s = 10f64.powf(-6.0 * j as f64 / (n - 1) as f64);
            a.set(j, j, 2.0 * s);
            if j > 0 {
                a.set(j, j - 1, -0.5 * s);
                a.set(j - 1, j, -0.5 * s);
            }
        }
        let (ab, piv) = factored(&a);
        let rcond = gbcon(a.as_ref(), &a.layout(), &ab, &piv);
        assert!(
            rcond < 1e-4,
            "graded matrix must look ill-conditioned: {rcond:.2e}"
        );
        assert!(rcond > 1e-12, "but not singular: {rcond:.2e}");
    }

    #[test]
    fn well_conditioned_tridiagonal() {
        let n = 30;
        let mut a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        for j in 0..n {
            a.set(j, j, 4.0);
            if j > 0 {
                a.set(j, j - 1, -1.0);
                a.set(j - 1, j, -1.0);
            }
        }
        let (ab, piv) = factored(&a);
        let rcond = gbcon(a.as_ref(), &a.layout(), &ab, &piv);
        // kappa_1 of this matrix is ~3; rcond ~ 1/3 within estimator slack.
        assert!(rcond > 0.1, "rcond {rcond}");
    }

    #[test]
    fn singular_factors_give_zero() {
        let n = 4;
        let a = BandMatrix::zeros_factor(n, n, 1, 1).unwrap();
        let l = a.layout();
        let mut ab = a.data().to_vec();
        let mut piv = vec![0i32; n];
        let _ = gbtf2(&l, &mut ab, &mut piv); // singular: zero matrix
        assert_eq!(gbcon(a.as_ref(), &l, &ab, &piv), 0.0);
    }

    #[test]
    fn estimate_close_to_true_inverse_norm() {
        // Compare against the exact inverse 1-norm computed by solving for
        // all unit vectors.
        let n = 12;
        let mut a = BandMatrix::zeros_factor(n, n, 2, 1).unwrap();
        let mut v = 0.77f64;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.7 + 0.13).fract();
                a.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
        let l = a.layout();
        let (ab, piv) = factored(&a);
        let mut exact = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            crate::gbtrs::gbtrs(Transpose::No, &l, &ab, &piv, &mut e, n, 1);
            exact = exact.max(e.iter().map(|x| x.abs()).sum());
        }
        let est = inverse_norm1_estimate(&l, &ab, &piv);
        assert!(
            est <= exact * (1.0 + 1e-12),
            "estimate must lower-bound: {est} vs {exact}"
        );
        assert!(est >= exact * 0.3, "estimate within 3.3x: {est} vs {exact}");
    }
}
