//! Binary persistence for band batches.
//!
//! Applications like the paper's PELE integration (§2.3: "ReactEval can
//! also be initialized with an input file with states produced by
//! PeleLM(eX)") exchange batches through files. This module provides a
//! small self-describing little-endian binary format:
//!
//! ```text
//! magic  "GBB1"          4 bytes
//! batch  u64             number of matrices
//! m, n, kl, ku, ldab     u64 each (uniform layout)
//! data   f64 * ldab*n*batch
//! ```
//!
//! No external dependencies: the format is explicit `to_le_bytes` writes,
//! so files are portable across platforms and stable across versions.

use crate::batch::BandBatch;
use crate::error::{BandError, Result};
use crate::layout::{BandLayout, BandStorage};
use std::io::{self, Read, Write};

/// Format magic for uniform band batches.
pub const MAGIC: &[u8; 4] = b"GBB1";

fn io_err(e: io::Error) -> BandError {
    // Map I/O failures onto the crate error type without adding a variant
    // for every io::ErrorKind: the message carries the detail.
    let _ = e;
    BandError::BadDimension {
        arg: "io",
        constraint: "readable/writable stream",
    }
}

/// Serialize a batch to a writer.
pub fn write_batch(w: &mut impl Write, b: &BandBatch) -> Result<()> {
    let l = b.layout();
    w.write_all(MAGIC).map_err(io_err)?;
    for v in [
        b.batch() as u64,
        l.m as u64,
        l.n as u64,
        l.kl as u64,
        l.ku as u64,
        l.ldab as u64,
    ] {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    for &x in b.data() {
        w.write_all(&x.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// Deserialize a batch from a reader, validating the header.
pub fn read_batch(r: &mut impl Read) -> Result<BandBatch> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(BandError::BadDimension {
            arg: "magic",
            constraint: "file must start with GBB1",
        });
    }
    let mut u64buf = [0u8; 8];
    let mut next = |r: &mut dyn Read| -> Result<u64> {
        r.read_exact(&mut u64buf).map_err(io_err)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let batch = next(r)? as usize;
    let m = next(r)? as usize;
    let n = next(r)? as usize;
    let kl = next(r)? as usize;
    let ku = next(r)? as usize;
    let ldab = next(r)? as usize;
    let layout = BandLayout::with_ldab(m, n, kl, ku, ldab, BandStorage::Factor)?;
    if batch == 0 {
        return Err(BandError::BadDimension {
            arg: "batch",
            constraint: "batch > 0",
        });
    }
    let total = layout
        .len()
        .checked_mul(batch)
        .ok_or(BandError::BadDimension {
            arg: "batch",
            constraint: "size overflow",
        })?;
    let mut out = BandBatch::zeros(batch, m, n, kl, ku)?;
    debug_assert_eq!(out.data().len(), total);
    let mut f64buf = [0u8; 8];
    for v in out.data_mut() {
        r.read_exact(&mut f64buf).map_err(io_err)?;
        *v = f64::from_le_bytes(f64buf);
    }
    Ok(out)
}

/// Write a batch to a file path.
pub fn save_batch(path: &std::path::Path, b: &BandBatch) -> Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    write_batch(&mut f, b)?;
    f.flush().map_err(io_err)
}

/// Read a batch from a file path.
pub fn load_batch(path: &std::path::Path) -> Result<BandBatch> {
    let mut f = io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    read_batch(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BandBatch {
        let mut v = 0.77f64;
        BandBatch::from_fn(5, 12, 12, 2, 3, |id, m| {
            for j in 0..12 {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 1.9 + 0.123).fract();
                    m.set(i, j, v - 0.5 + id as f64);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn roundtrip_in_memory() {
        let b = sample();
        let mut buf = Vec::new();
        write_batch(&mut buf, &b).unwrap();
        let back = read_batch(&mut buf.as_slice()).unwrap();
        assert_eq!(b, back, "bit-exact roundtrip");
        // Header size + payload size.
        assert_eq!(buf.len(), 4 + 6 * 8 + b.data().len() * 8);
    }

    #[test]
    fn roundtrip_through_file() {
        let b = sample();
        let path = std::env::temp_dir().join("gbatch_io_test.gbb");
        save_batch(&path, &b).unwrap();
        let back = load_batch(&path).unwrap();
        assert_eq!(b, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_batch(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(read_batch(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_batch(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_batch(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_header() {
        let mut buf = Vec::new();
        write_batch(&mut buf, &sample()).unwrap();
        // Zero the batch count.
        for k in 4..12 {
            buf[k] = 0;
        }
        assert!(read_batch(&mut buf.as_slice()).is_err());
    }
}
