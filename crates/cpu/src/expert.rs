//! Batched expert solves on the CPU: the `gbsvx`-style pipeline
//! (equilibrate, factor, solve, refine, condition-estimate) applied to a
//! whole batch with OpenMP-style parallelism — what a cautious PELE-style
//! application (paper §2.1) runs on the host for its worst-conditioned
//! batches.

use crate::model::CpuSpec;
use crate::solver::CpuReport;
use gbatch_core::band::BandMatrix;
use gbatch_core::batch::BandBatch;
use gbatch_core::gbsvx::{gbsvx, GbsvxResult};

/// Expert-solve every system of the batch (`nrhs` right-hand sides each,
/// blocks of `n * nrhs` in `rhs`). Returns per-system results plus the
/// modeled time (the expert path costs roughly 3x a plain solve: condition
/// estimate + refinement sweeps re-stream the band).
pub fn cpu_gbsvx_batch(
    cpu: &CpuSpec,
    a: &BandBatch,
    rhs: &mut [f64],
    nrhs: usize,
) -> (Vec<GbsvxResult>, CpuReport) {
    let l = a.layout();
    let n = l.n;
    let batch = a.batch();
    assert_eq!(rhs.len(), batch * n * nrhs);
    let start = std::time::Instant::now();

    let mut results: Vec<Option<GbsvxResult>> = (0..batch).map(|_| None).collect();
    let threads = (cpu.cores as usize).min(batch);
    struct Task<'a> {
        mat: BandMatrix,
        b: &'a mut [f64],
        out: &'a mut Option<GbsvxResult>,
    }
    let mut tasks: Vec<Task<'_>> = rhs
        .chunks_mut(n * nrhs)
        .zip(results.iter_mut())
        .enumerate()
        .map(|(id, (b, out))| Task {
            mat: a.matrix(id).to_owned(),
            b,
            out,
        })
        .collect();
    if threads <= 1 {
        for t in tasks.iter_mut() {
            *t.out = Some(gbsvx(&t.mat, t.b, nrhs));
        }
    } else {
        let chunk = tasks.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for slice in tasks.chunks_mut(chunk) {
                s.spawn(move |_| {
                    for t in slice.iter_mut() {
                        *t.out = Some(gbsvx(&t.mat, t.b, nrhs));
                    }
                });
            }
        })
        .expect("worker panicked");
    }

    // Model: factor + solve + ~2 extra band sweeps (rcond estimate and
    // refinement residuals) + the refinement solves.
    let flops = crate::model::gbtrf_flops(&l) + 3.0 * crate::model::gbtrs_flops(&l, nrhs);
    let bytes = crate::model::gbtrf_bytes(&l) + 3.0 * crate::model::gbtrs_bytes(&l, nrhs);
    let report = CpuReport {
        model_time_s: cpu.batch_time(batch, flops, bytes),
        wall_time_s: start.elapsed().as_secs_f64(),
    };
    (
        results
            .into_iter()
            .map(|r| r.expect("all solved"))
            .collect(),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::residual::backward_error;

    fn graded_batch(batch: usize, n: usize) -> BandBatch {
        let mut v = 0.19f64;
        BandBatch::from_fn(batch, n, n, 2, 1, |id, m| {
            let decades = 2.0 + (id % 5) as f64 * 2.0; // 2..10 decades
            for j in 0..n {
                let s = 10f64.powf(-decades * j as f64 / (n - 1) as f64);
                let (lo, hi) = m.layout.col_rows(j);
                for i in lo..hi {
                    v = (v * 2.3 + 0.11).fract();
                    m.set(i, j, (v - 0.5) * s + if i == j { 2.0 * s } else { 0.0 });
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn batch_expert_solve_handles_mixed_conditioning() {
        let cpu = CpuSpec::test_cpu();
        let (batch, n, nrhs) = (10usize, 24usize, 2usize);
        let a = graded_batch(batch, n);
        // Manufactured solutions.
        let mut rhs = vec![0.0; batch * n * nrhs];
        let mut xs = vec![0.0; batch * n * nrhs];
        for id in 0..batch {
            for c in 0..nrhs {
                let x: Vec<f64> = (0..n).map(|i| 1.0 + ((i + c) % 4) as f64).collect();
                let mut b = vec![0.0; n];
                gbatch_core::blas2::gbmv(1.0, a.matrix(id), &x, 0.0, &mut b);
                let off = id * n * nrhs + c * n;
                xs[off..off + n].copy_from_slice(&x);
                rhs[off..off + n].copy_from_slice(&b);
            }
        }
        let rhs0 = rhs.clone();
        let (results, rep) = cpu_gbsvx_batch(&cpu, &a, &mut rhs, nrhs);
        assert!(rep.model_time_s > 0.0);
        for (id, r) in results.iter().enumerate() {
            assert_eq!(r.info, 0, "system {id}");
            // Deeply graded systems must have been equilibrated.
            if id % 5 >= 3 {
                assert!(
                    r.equilibrated,
                    "system {id} (8+ decades) should equilibrate"
                );
            }
            for c in 0..nrhs {
                let off = id * n * nrhs + c * n;
                let berr = backward_error(a.matrix(id), &rhs[off..off + n], &rhs0[off..off + n]);
                assert!(berr < 1e-12, "system {id} rhs {c}: berr {berr:.2e}");
            }
        }
    }

    #[test]
    fn expert_model_time_exceeds_plain_solve() {
        let cpu = CpuSpec::xeon_gold_6140();
        let l = gbatch_core::layout::BandLayout::factor(128, 128, 2, 3).unwrap();
        let plain = cpu.batch_time(
            1000,
            crate::model::gbtrf_flops(&l) + crate::model::gbtrs_flops(&l, 1),
            crate::model::gbtrf_bytes(&l) + crate::model::gbtrs_bytes(&l, 1),
        );
        let expert = cpu.batch_time(
            1000,
            crate::model::gbtrf_flops(&l) + 3.0 * crate::model::gbtrs_flops(&l, 1),
            crate::model::gbtrf_bytes(&l) + 3.0 * crate::model::gbtrs_bytes(&l, 1),
        );
        assert!(expert > 1.3 * plain);
    }
}
