//! Analytic cost model for the CPU baseline.
//!
//! The paper's CPU platform is an Intel Xeon Gold 6140 (Skylake, 18 cores,
//! 2.3 GHz) running MKL under OpenMP, with one matrix per task. For thin
//! bands the per-matrix work is a memory-streaming pass over the band array
//! (the `O(n * kl * kv)` flops never saturate the FMA units), so the model
//! prices each matrix as
//! `max(bytes / per-core-bandwidth, flops / per-core-flop-rate)` and divides
//! the batch across cores, plus a fixed OpenMP fork/join and a small
//! per-call overhead. This reproduces the paper's two CPU-side behaviours:
//! near-linear growth in `n`, and the ≈2x jump from 1 to 10 right-hand
//! sides (Fig. 9/Table 3) — RHS traffic dominates once `nrhs` grows.

use gbatch_core::layout::BandLayout;
use serde::{Deserialize, Serialize};

/// Descriptor of the multicore CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Physical cores used by the OpenMP runtime.
    pub cores: u32,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Sustained flops per cycle per core on band-kernel code (scalar-ish
    /// inner loops over short columns — far from peak AVX-512).
    pub flops_per_cycle: f64,
    /// Effective per-core streaming bandwidth in bytes/s (strided band
    /// accesses; the socket aggregate is `cores * this`, capped below).
    pub core_bw: f64,
    /// Socket-aggregate memory bandwidth cap in bytes/s.
    pub total_bw: f64,
    /// OpenMP parallel-region fork/join cost in seconds.
    pub fork_join_s: f64,
    /// Per-matrix dispatch overhead (LAPACK call, pointer chasing).
    pub per_matrix_s: f64,
}

impl CpuSpec {
    /// Intel Xeon Gold 6140 (Skylake), the paper's CPU, with MKL-2023-era
    /// effective rates.
    pub fn xeon_gold_6140() -> Self {
        CpuSpec {
            name: "Xeon Gold 6140 + MKL (modeled)".to_string(),
            cores: 18,
            clock_hz: 2.3e9,
            flops_per_cycle: 4.0,
            core_bw: 9.0e9,
            total_bw: 1.6e11,
            fork_join_s: 8.0e-6,
            per_matrix_s: 4.0e-7,
        }
    }

    /// A tiny deterministic CPU for unit tests.
    pub fn test_cpu() -> Self {
        CpuSpec {
            name: "TestCPU".to_string(),
            cores: 4,
            clock_hz: 1.0e9,
            flops_per_cycle: 2.0,
            core_bw: 1.0e9,
            total_bw: 4.0e9,
            fork_join_s: 1.0e-6,
            per_matrix_s: 1.0e-7,
        }
    }

    /// Model the time of `batch` independent tasks of `flops` flops and
    /// `bytes` bytes of traffic each, spread over the cores.
    pub fn batch_time(&self, batch: usize, flops: f64, bytes: f64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let per_core_bw = self.core_bw.min(self.total_bw / self.cores as f64);
        let per_matrix = (bytes / per_core_bw).max(flops / (self.flops_per_cycle * self.clock_hz))
            + self.per_matrix_s;
        let tasks_per_core = (batch as f64 / self.cores as f64).ceil();
        self.fork_join_s + tasks_per_core * per_matrix
    }
}

/// Worst-case flop count of one band LU factorization (matches the
/// operation count of `gbtf2` under full-pivoting updates).
pub fn gbtrf_flops(l: &BandLayout) -> f64 {
    let n = l.n;
    let kv = l.kv();
    let mut flops = 0f64;
    for j in 0..l.m.min(n) {
        let km = l.km(j);
        let w = kv.min(n - 1 - j);
        flops += km as f64; // scal
        flops += 2.0 * (w * km) as f64; // rank-1 update
    }
    flops
}

/// Bytes moved by one band LU factorization: the band array is streamed
/// in and out once, plus pivot traffic.
pub fn gbtrf_bytes(l: &BandLayout) -> f64 {
    (2 * l.len() * 8 + l.m.min(l.n) * 4) as f64
}

/// Flop count of one band triangular solve with `nrhs` right-hand sides.
pub fn gbtrs_flops(l: &BandLayout, nrhs: usize) -> f64 {
    let n = l.n;
    let kv = l.kv();
    let mut flops = 0f64;
    for j in 0..n.saturating_sub(1) {
        let lm = l.kl.min(n - 1 - j);
        flops += 2.0 * (lm * nrhs) as f64; // forward rank-1
    }
    for j in 0..n {
        flops += 2.0 * ((kv.min(j) + 1) * nrhs) as f64; // backward column
    }
    flops
}

/// Bytes moved by one band triangular solve: the factor band is read once
/// per sweep (forward uses the `L` rows, backward the `U` rows) and the RHS
/// block is read and written by both sweeps.
pub fn gbtrs_bytes(l: &BandLayout, nrhs: usize) -> f64 {
    let band = (l.len() * 8) as f64;
    let rhs = (4 * l.n * nrhs * 8) as f64;
    band + rhs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_time_scales_with_batch() {
        let cpu = CpuSpec::test_cpu();
        let t1 = cpu.batch_time(4, 1e6, 1e4);
        let t2 = cpu.batch_time(8, 1e6, 1e4);
        assert!(
            t2 > t1 * 1.8 - cpu.fork_join_s,
            "doubling tasks ~doubles time"
        );
        assert_eq!(cpu.batch_time(0, 1e9, 1e9), 0.0);
    }

    #[test]
    fn memory_bound_vs_compute_bound() {
        let cpu = CpuSpec::test_cpu();
        // Tiny flops, huge bytes -> memory-bound: time set by bandwidth.
        let t_mem = cpu.batch_time(4, 1.0, 1e9);
        assert!((t_mem - (cpu.fork_join_s + 1e9 / 1e9 + cpu.per_matrix_s)).abs() < 1e-9);
        // Huge flops, tiny bytes -> compute-bound.
        let t_cmp = cpu.batch_time(4, 1e9, 8.0);
        assert!((t_cmp - (cpu.fork_join_s + 1e9 / 2e9 + cpu.per_matrix_s)).abs() < 1e-9);
    }

    #[test]
    fn flop_counts_match_hand_computation() {
        // n = 4, kl = 1, ku = 1 (kv = 2):
        // j=0: km=1, w=2 -> 1 + 4 = 5
        // j=1: km=1, w=2 -> 5
        // j=2: km=1, w=1 -> 1 + 2 = 3
        // j=3: km=0, w=0 -> 0
        let l = BandLayout::factor(4, 4, 1, 1).unwrap();
        assert_eq!(gbtrf_flops(&l), 13.0);
        // Solve, 1 RHS: forward j=0..2: lm=1 -> 2*3 = 6;
        // backward j=0..3: reach+1 = 1,2,3,3 -> 2*(1+2+3+3) = 18.
        assert_eq!(gbtrs_flops(&l, 1), 24.0);
        assert_eq!(gbtrs_flops(&l, 2), 48.0);
    }

    #[test]
    fn ten_rhs_roughly_doubles_gbsv_bytes_for_thin_bands() {
        // The paper's Fig. 9 observation: MKL's time ~2x from 1 to 10 RHS.
        let l = BandLayout::factor(512, 512, 2, 3).unwrap();
        let gbsv1 = gbtrf_bytes(&l) + gbtrs_bytes(&l, 1);
        let gbsv10 = gbtrf_bytes(&l) + gbtrs_bytes(&l, 10);
        let ratio = gbsv10 / gbsv1;
        assert!((1.8..3.2).contains(&ratio), "10-RHS byte ratio {ratio:.2}");
    }

    #[test]
    fn spec_serializes() {
        let c = CpuSpec::xeon_gold_6140();
        let s = serde_json::to_string(&c).unwrap();
        let b: CpuSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(c, b);
    }
}
