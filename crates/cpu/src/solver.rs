//! Multicore batched band solver (the "mkl + openmp" baseline).
//!
//! The batch is split into contiguous chunks, one per worker thread
//! (OpenMP static schedule); each worker runs the sequential LAPACK-style
//! routines of `gbatch-core` on its matrices. Results are bit-identical to
//! the sequential reference regardless of the thread count, because
//! matrices are independent.

use crate::model::{gbtrf_bytes, gbtrf_flops, gbtrs_bytes, gbtrs_flops, CpuSpec};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::gbtrs::Transpose;
use gbatch_core::layout::BandLayout;

/// Result of a CPU batched routine.
#[derive(Debug, Clone, Copy)]
pub struct CpuReport {
    /// Modeled time on the descriptor CPU, in seconds.
    pub model_time_s: f64,
    /// Wall-clock time of the host execution, in seconds (diagnostic; on a
    /// throttled CI box this is not comparable across machines).
    pub wall_time_s: f64,
}

/// Run `work(id)` for every problem id, statically chunked over `threads`
/// workers. The closure only receives disjoint data through the index, so
/// each worker wraps its own mutable chunk.
fn parallel_chunks<T: Send, F>(items: &mut [T], threads: usize, work: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        for (id, item) in items.iter_mut().enumerate() {
            work(id, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let work = &work;
            s.spawn(move |_| {
                for (k, item) in slice.iter_mut().enumerate() {
                    work(c * chunk + k, item);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Batched band LU factorization on the CPU.
pub fn cpu_gbtrf_batch(
    cpu: &CpuSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
) -> CpuReport {
    let l = a.layout();
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(info.len(), batch);
    let start = std::time::Instant::now();
    struct Prob<'a> {
        ab: &'a mut [f64],
        piv: &'a mut [i32],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .chunks_mut()
        .zip(piv.chunks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|((ab, piv), info)| Prob { ab, piv, info })
        .collect();
    parallel_chunks(&mut probs, cpu.cores as usize, |_, p| {
        *p.info = gbatch_core::gbtrf::gbtrf(&l, p.ab, p.piv);
    });
    CpuReport {
        model_time_s: cpu.batch_time(batch, gbtrf_flops(&l), gbtrf_bytes(&l)),
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// Batched band triangular solve on the CPU.
pub fn cpu_gbtrs_batch(
    cpu: &CpuSpec,
    l: &BandLayout,
    factors: &[f64],
    piv: &PivotBatch,
    rhs: &mut RhsBatch,
) -> CpuReport {
    let batch = rhs.batch();
    assert_eq!(piv.batch(), batch);
    let stride = l.len();
    assert_eq!(factors.len(), stride * batch);
    let (n, nrhs, ldb) = (l.n, rhs.nrhs(), rhs.ldb());
    assert_eq!(n, rhs.n());
    let start = std::time::Instant::now();
    let mut blocks: Vec<&mut [f64]> = rhs.blocks_mut().collect();
    parallel_chunks(&mut blocks, cpu.cores as usize, |id, b| {
        let ab = &factors[id * stride..(id + 1) * stride];
        gbatch_core::gbtrs::gbtrs(Transpose::No, l, ab, piv.pivots(id), b, ldb, nrhs);
    });
    CpuReport {
        model_time_s: cpu.batch_time(batch, gbtrs_flops(l, nrhs), gbtrs_bytes(l, nrhs)),
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// Batched band factorize-and-solve on the CPU (`DGBSV` per matrix).
pub fn cpu_gbsv_batch(
    cpu: &CpuSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch,
    info: &mut InfoArray,
) -> CpuReport {
    let l = a.layout();
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(rhs.batch(), batch);
    assert_eq!(info.len(), batch);
    let (nrhs, ldb) = (rhs.nrhs(), rhs.ldb());
    let start = std::time::Instant::now();
    struct Prob<'a> {
        ab: &'a mut [f64],
        piv: &'a mut [i32],
        b: &'a mut [f64],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .chunks_mut()
        .zip(piv.chunks_mut())
        .zip(rhs.blocks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|(((ab, piv), b), info)| Prob { ab, piv, b, info })
        .collect();
    parallel_chunks(&mut probs, cpu.cores as usize, |_, p| {
        *p.info = gbatch_core::gbsv::gbsv(&l, p.ab, p.piv, p.b, ldb, nrhs);
    });
    let flops = gbtrf_flops(&l) + gbtrs_flops(&l, nrhs);
    let bytes = gbtrf_bytes(&l) + gbtrs_bytes(&l, nrhs);
    CpuReport {
        model_time_s: cpu.batch_time(batch, flops, bytes),
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::blas2::gbmv;
    use gbatch_core::residual::backward_error;

    fn random_system(batch: usize, n: usize, kl: usize, ku: usize) -> (BandBatch, RhsBatch) {
        let mut v = 0.83f64;
        let a = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.4 + 0.051 + id as f64 * 1e-4).fract();
                    m.set(i, j, v - 0.5 + if i == j { 1.5 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let b =
            RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id * 7 + i) as f64 * 0.19).sin()).unwrap();
        (a, b)
    }

    #[test]
    fn gbsv_solves_every_matrix() {
        let cpu = CpuSpec::test_cpu();
        let (batch, n, kl, ku) = (9, 40, 2, 3);
        let (mut a, mut b) = random_system(batch, n, kl, ku);
        let (a0, b0) = (a.clone(), b.clone());
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut b, &mut info);
        assert!(info.all_ok());
        assert!(rep.model_time_s > 0.0);
        for id in 0..batch {
            let berr = backward_error(a0.matrix(id), b.block(id), b0.block(id));
            assert!(berr < 1e-12, "matrix {id}: berr {berr:.2e}");
        }
    }

    #[test]
    fn multithreaded_equals_sequential_bitwise() {
        let (batch, n, kl, ku) = (7, 24, 3, 1);
        let (a0, _) = random_system(batch, n, kl, ku);
        let mut a_par = a0.clone();
        let mut piv_par = PivotBatch::new(batch, n, n);
        let mut info_par = InfoArray::new(batch);
        let many = CpuSpec {
            cores: 8,
            ..CpuSpec::test_cpu()
        };
        cpu_gbtrf_batch(&many, &mut a_par, &mut piv_par, &mut info_par);

        let mut a_seq = a0.clone();
        let mut piv_seq = PivotBatch::new(batch, n, n);
        let mut info_seq = InfoArray::new(batch);
        let one = CpuSpec {
            cores: 1,
            ..CpuSpec::test_cpu()
        };
        cpu_gbtrf_batch(&one, &mut a_seq, &mut piv_seq, &mut info_seq);

        assert_eq!(a_par.data(), a_seq.data());
        assert_eq!(piv_par, piv_seq);
        assert_eq!(info_par, info_seq);
    }

    #[test]
    fn factor_then_solve_matches_gbsv() {
        let cpu = CpuSpec::test_cpu();
        let (batch, n, kl, ku) = (4, 30, 2, 3);
        let (mut a1, mut b1) = random_system(batch, n, kl, ku);
        let mut a2 = a1.clone();
        let mut b2 = b1.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let mut i2 = InfoArray::new(batch);
        cpu_gbsv_batch(&cpu, &mut a1, &mut p1, &mut b1, &mut i1);
        cpu_gbtrf_batch(&cpu, &mut a2, &mut p2, &mut i2);
        let l = a2.layout();
        let factors = a2.data().to_vec();
        cpu_gbtrs_batch(&cpu, &l, &factors, &p2, &mut b2);
        assert_eq!(b1.data(), b2.data());
        assert_eq!(p1, p2);
    }

    #[test]
    fn model_time_monotone_in_batch_and_rhs() {
        let cpu = CpuSpec::xeon_gold_6140();
        let l = BandLayout::factor(256, 256, 2, 3).unwrap();
        let t1 = cpu.batch_time(1000, gbtrf_flops(&l), gbtrf_bytes(&l));
        let t2 = cpu.batch_time(2000, gbtrf_flops(&l), gbtrf_bytes(&l));
        assert!(t2 > t1);
        let s1 = cpu.batch_time(1000, gbtrs_flops(&l, 1), gbtrs_bytes(&l, 1));
        let s10 = cpu.batch_time(1000, gbtrs_flops(&l, 10), gbtrs_bytes(&l, 10));
        assert!(
            s10 > 1.8 * s1,
            "10 RHS should cost much more: {s1} vs {s10}"
        );
    }

    #[test]
    fn residual_stays_small_under_gbmv_check() {
        // Round-trip through gbmv to double-check the RHS convention.
        let cpu = CpuSpec::test_cpu();
        let (mut a, _) = random_system(1, 12, 1, 2);
        let a0 = a.clone();
        let x_true: Vec<f64> = (0..12).map(|i| i as f64 - 6.0).collect();
        let mut y = vec![0.0; 12];
        gbmv(1.0, a0.matrix(0), &x_true, 0.0, &mut y);
        let mut rhs = RhsBatch::zeros(1, 12, 1).unwrap();
        rhs.block_mut(0).copy_from_slice(&y);
        let mut piv = PivotBatch::new(1, 12, 12);
        let mut info = InfoArray::new(1);
        cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut rhs, &mut info);
        for i in 0..12 {
            assert!((rhs.block(0)[i] - x_true[i]).abs() < 1e-9);
        }
    }
}
