//! # gbatch-cpu
//!
//! The multicore CPU baseline of the paper ("mkl + openmp" in every
//! figure): each matrix is factored/solved with the sequential LAPACK-style
//! band routines of `gbatch-core`, and the batch is spread across cores
//! with an OpenMP-`parallel for`-style scoped thread pool.
//!
//! Two outputs per call:
//!
//! - **real numerics** — computed on the host (bit-identical to the
//!   sequential reference, since each matrix is processed by exactly the
//!   same routine);
//! - **modeled time** — an analytic cost for the paper's Intel Xeon Gold
//!   6140 (Skylake, 18 cores) so GPU-vs-CPU comparisons are
//!   apples-to-apples with the simulated devices (see
//!   [`model::CpuSpec`]).

// LAPACK-style numerical kernels are clearest with explicit indexed
// loops over band rows/columns; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod expert;
pub mod model;
pub mod solver;

pub use expert::cpu_gbsvx_batch;
pub use model::CpuSpec;
pub use solver::{cpu_gbsv_batch, cpu_gbtrf_batch, cpu_gbtrs_batch, CpuReport};
