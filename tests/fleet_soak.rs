//! Fleet soak: the heterogeneous multi-device scheduler under
//! adversarial traffic, plus the degenerate-fleet parity pin.
//!
//! Two contracts from the fleet refactor:
//!
//! 1. **Degenerate-fleet parity** — the one-device configuration
//!    (`Server::simulated` over `mi250x_full`) must reproduce the
//!    pre-refactor server *bitwise* on the PR-4 soak corpus. The pinned
//!    FNV-1a digest below was captured from the server immediately before
//!    the Worker/router refactor; every response field (solutions,
//!    completion instants, batch sizes, routing) and every scalar of the
//!    report participates.
//! 2. **Fleet soak** — 10 000 adversarial requests (bursty MMPP arrivals,
//!    shape churn, poison storms, interleaved f32/f64, a large-`n` SPIKE
//!    lane) through a 1×H100 + 2×GCD fleet: request conservation,
//!    residual bounds on a sample, every device utilized, and bitwise
//!    determinism across 1/2/8 host worker threads.

use gbatch::cpu::CpuSpec;
use gbatch::gpu_sim::multi::DeviceGroup;
use gbatch::gpu_sim::{FleetSpec, ParallelPolicy};
use gbatch::serve::{
    FlushPolicy, ServeReport, Server, ServerConfig, SolveRequest, SolveResponse, SolveStatus,
};
use gbatch::workloads::{
    adversarial_traffic, poisson_traffic, AdversarialConfig, Arrival, ShapeMix, TrafficConfig,
};
use gbatch_core::{Precision, ShapeKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pre-refactor response digest of the PR-4 soak corpus (Serial policy),
/// captured on the commit preceding the fleet scheduler.
const PRE_REFACTOR_DIGEST: u64 = 0x649b99318fe53023;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a over every determinism-relevant response field, in id order.
fn response_digest(responses: &[SolveResponse]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for r in responses {
        fnv(&mut h, &r.id.to_le_bytes());
        let (code, col) = match r.status {
            SolveStatus::Solved => (0u8, 0u64),
            SolveStatus::Singular { column } => (1, column as u64),
            SolveStatus::TimedOut => (2, 0),
            SolveStatus::Failed => (3, 0),
        };
        fnv(&mut h, &[code]);
        fnv(&mut h, &col.to_le_bytes());
        for v in &r.x {
            fnv(&mut h, &v.to_bits().to_le_bytes());
        }
        fnv(&mut h, &r.completed_s.to_bits().to_le_bytes());
        fnv(&mut h, &(r.batch_size as u64).to_le_bytes());
        fnv(&mut h, format!("{:?}|{:?}", r.reason, r.backend).as_bytes());
    }
    h
}

/// The PR-4 soak corpus, verbatim (same seed, mix, rates as
/// `tests/serve_soak.rs`).
fn pr4_corpus() -> Vec<Arrival> {
    let cfg = TrafficConfig {
        rate_hz: 2.0e5,
        deadline_s: 2.0e-3,
        mix: vec![
            ShapeMix {
                shape: ShapeKey::gbsv(24, 2, 2, 1),
                weight: 4.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(32, 3, 3, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(16, 1, 2, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(20, 1, 1, 2),
                weight: 1.0,
            },
        ],
        poison_every: Some(500),
    };
    poisson_traffic(&mut StdRng::seed_from_u64(99), 10_000, &cfg)
}

fn submit_all(server: &mut Server, arrivals: Vec<Arrival>) -> (Vec<SolveResponse>, ServeReport) {
    for a in arrivals {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab,
                rhs: a.rhs,
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("soak traffic fits the admission queue");
    }
    server.drain();
    let mut responses = server.take_responses();
    responses.sort_by_key(|r| r.id);
    (responses, server.report())
}

#[test]
fn one_device_fleet_is_bitwise_identical_to_the_pre_refactor_server() {
    let mut server = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::Serial,
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    );
    let (responses, report) = submit_all(&mut server, pr4_corpus());

    assert_eq!(
        response_digest(&responses),
        PRE_REFACTOR_DIGEST,
        "one-device fleet diverged from the pre-refactor server"
    );

    // Every scalar the pre-refactor report carried, pinned exactly
    // (busy times and quantiles by bit pattern — no tolerance).
    assert_eq!(report.submitted, 10_000);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.solved, 9980);
    assert_eq!(report.singular, 20);
    assert_eq!(report.timed_out, 0);
    assert_eq!(report.failed, 0);
    assert_eq!(report.flush_size, 69);
    assert_eq!(report.flush_deadline, 146);
    assert_eq!(report.flush_drain, 3);
    assert_eq!(report.spills, 24);
    assert_eq!(report.bisect_retries, 0);
    assert_eq!(report.fallback_singletons, 0);
    assert_eq!(report.deadline_misses, 0);
    assert_eq!(report.max_queue_depth, 173);
    assert_eq!(report.gpu_requests, 9226);
    assert_eq!(report.cpu_requests, 774);
    assert_eq!(report.gpu_busy_s.to_bits(), 0x3f70c95b58456b73);
    assert_eq!(report.cpu_busy_s.to_bits(), 0x3f304fa262679494);
    assert_eq!(report.p50_latency_s, 0.0004401598819546576);
    assert_eq!(report.p99_latency_s, 0.0010215583643683676);
    assert_eq!(report.max_latency_s, 0.0010296947058823572);
    assert_eq!(report.mean_latency_s, 0.00045998978647051063);
    assert_eq!(report.cache_lookups, 10_000);
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_misses, 10_000);
    assert_eq!(report.cache_insertions, 9980);
    assert_eq!(report.cache_evictions, 9724);
    assert_eq!(report.cache_entries, 256);
    assert_eq!(report.cache_bytes, 341_136);

    // The new per-device breakdown partitions the old aggregates.
    assert_eq!(report.devices.len(), 2, "one GPU worker + the CPU pool");
    let (gpu, cpu) = (&report.devices[0], &report.devices[1]);
    assert_eq!(gpu.kind, "gpu");
    assert_eq!(cpu.kind, "cpu");
    assert_eq!(gpu.requests, report.gpu_requests);
    assert_eq!(cpu.requests, report.cpu_requests);
    assert_eq!(gpu.busy_s, report.gpu_busy_s);
    assert_eq!(cpu.busy_s, report.cpu_busy_s);
    assert_eq!(gpu.sheds, 0, "a one-worker fleet never sheds");
    assert!(gpu.utilization > 0.0 && gpu.utilization <= 1.0);
}

const FLEET: &str = "h100_pcie:1,mi250x_gcd:2";
const N_REQUESTS: usize = 10_000;

fn fleet_arrivals() -> Vec<Arrival> {
    let cfg = AdversarialConfig::fleet_mix(2.0e5, 2.0e-3);
    adversarial_traffic(&mut StdRng::seed_from_u64(2024), N_REQUESTS, &cfg)
}

fn run_fleet(policy: ParallelPolicy) -> (Vec<SolveResponse>, ServeReport) {
    let mut server = Server::simulated_fleet(
        &FleetSpec::parse(FLEET).unwrap(),
        CpuSpec::xeon_gold_6140(),
        policy,
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    )
    .unwrap();
    submit_all(&mut server, fleet_arrivals())
}

#[test]
fn fleet_soak_10k_adversarial_conserved_correct_and_deterministic() {
    let traffic = fleet_arrivals();
    let (responses, report) = run_fleet(ParallelPolicy::Serial);

    // Conservation: every request answered exactly once.
    assert_eq!(responses.len(), N_REQUESTS);
    for (k, r) in responses.iter().enumerate() {
        assert_eq!(r.id, k as u64, "no duplicated or missing ids");
    }
    assert!(report.is_conserved());
    assert_eq!(report.rejected, 0);

    // Three heterogeneous device workers plus the CPU pool, all named
    // from the registry, every one of them utilized.
    assert_eq!(report.devices.len(), 4);
    assert_eq!(report.devices[0].name, "h100_pcie:0");
    assert_eq!(report.devices[1].name, "mi250x_gcd:0");
    assert_eq!(report.devices[2].name, "mi250x_gcd:1");
    assert_eq!(report.devices[3].name, "cpu");
    for d in &report.devices[..3] {
        assert_eq!(d.kind, "gpu");
        assert!(d.requests > 0, "device {} never used", d.name);
        assert!(d.busy_s > 0.0);
        assert!(d.utilization > 0.0 && d.utilization <= 1.0);
    }
    // The aggregates still partition exactly across the fleet.
    assert_eq!(
        report.devices.iter().map(|d| d.requests).sum::<u64>(),
        report.gpu_requests + report.cpu_requests
    );
    let busy: f64 = report.devices[..3].iter().map(|d| d.busy_s).sum();
    assert!((busy - report.gpu_busy_s).abs() < 1e-15 * busy.max(1.0));
    assert!(report.p99_latency_s > 0.0, "fleet-wide p99 is surfaced");

    // Poison storms flagged singular per lane, never fatal to batchmates.
    assert!(report.singular > 0, "storms must actually poison");
    assert_eq!(report.failed, 0);

    // Residual bounds on a sample (f64 tight, f32 at single precision).
    let mut checked = 0usize;
    for r in responses.iter().step_by(131) {
        if r.status != SolveStatus::Solved || r.shape.n > 256 {
            continue;
        }
        let a = &traffic[r.id as usize];
        let l = r.shape.layout().unwrap();
        let m = gbatch_core::BandMatrixRef {
            layout: l,
            data: &a.ab,
        };
        let tol = match r.shape.precision {
            Precision::F64 => 1e-8,
            Precision::F32 => 2e-3,
        };
        for col in 0..r.shape.nrhs {
            let x = &r.x[col * l.n..(col + 1) * l.n];
            let b = &a.rhs[col * l.n..(col + 1) * l.n];
            for (i, bi) in b.iter().enumerate() {
                let lo = i.saturating_sub(l.kl);
                let hi = (i + l.ku + 1).min(l.n);
                let ax: f64 = x[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(k, xj)| m.get(i, lo + k) * xj)
                    .sum();
                assert!(
                    (ax - bi).abs() < tol,
                    "request {} ({:?}) row {i}: residual {:e}",
                    r.id,
                    r.shape.precision,
                    (ax - bi).abs()
                );
            }
        }
        checked += 1;
    }
    assert!(checked > 20, "residual sample too small: {checked}");

    // Bitwise determinism across host worker counts: responses AND the
    // full report (per-device stats included) replay exactly.
    let base_digest = response_digest(&responses);
    for workers in [2usize, 8] {
        let (alt, alt_report) = run_fleet(ParallelPolicy::threads(workers));
        assert_eq!(
            response_digest(&alt),
            base_digest,
            "{workers}-worker fleet responses differ"
        );
        assert_eq!(alt_report, report, "{workers}-worker fleet report differs");
    }
}
