//! Factor-cache soak: 10 000 timestepping requests over a small reused
//! operator pool with occasional Jacobian churn, so roughly nine in ten
//! arrivals repeat a previously-seen operator byte-for-byte.
//!
//! Checks the cache's production contract end to end:
//!
//! - conservation: every request answered exactly once, all solved;
//! - the measured cache hit rate clears the 0.85 floor the bench gate
//!   also enforces;
//! - warm (GBTRS-only) flushes dominate the schedule;
//! - reuse is *cheaper*: the same traffic with full operator churn
//!   (every arrival cold) keeps the device busy strictly longer;
//! - determinism: responses and the full report are bitwise-identical
//!   under serial and 4-worker host scheduling.

use gbatch::cpu::CpuSpec;
use gbatch::gpu_sim::multi::DeviceGroup;
use gbatch::gpu_sim::ParallelPolicy;
use gbatch::serve::{
    FlushPolicy, ServeReport, Server, ServerConfig, SolveRequest, SolveResponse, SolveStatus,
};
use gbatch::workloads::{timestep_traffic, TimestepConfig};
use gbatch_core::ShapeKey;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_REQUESTS: usize = 10_000;
const OPERATOR_POOL: usize = 8;
const CHURN: f64 = 0.02;

fn run_soak(policy: ParallelPolicy, churn: f64) -> (Vec<SolveResponse>, ServeReport) {
    // Factors enter the cache when their cold bucket *flushes*, so the
    // flush cadence must stay short against the operator repeat period:
    // a lazy cold bucket would keep every repeat of a fresh operator
    // missing until it finally fills. A modest target batch plus a tight
    // deadline keeps insertion latency at a few tens of arrivals.
    let mut cfg =
        TimestepConfig::timestepper(ShapeKey::gbsv(16, 2, 3, 1), OPERATOR_POOL, churn, 2.0e5);
    cfg.deadline_s = 2.0e-4;
    let mut server = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        policy,
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(16)
                .with_min_gpu_batch(8),
        },
    );
    for a in timestep_traffic(&mut StdRng::seed_from_u64(41), N_REQUESTS, &cfg) {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab,
                rhs: a.rhs,
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("soak traffic fits the admission queue");
    }
    server.drain();
    let mut responses = server.take_responses();
    responses.sort_by_key(|r| r.id);
    (responses, server.report())
}

#[test]
fn cache_soak_hit_rate_conservation_and_determinism() {
    let (responses, report) = run_soak(ParallelPolicy::Serial, CHURN);

    // Conservation: every request answered exactly once, all solvable.
    assert_eq!(responses.len(), N_REQUESTS);
    for (k, r) in responses.iter().enumerate() {
        assert_eq!(r.id, k as u64, "no duplicated or missing ids");
        assert_eq!(r.status, SolveStatus::Solved, "request {}", r.id);
    }
    assert!(report.is_conserved());
    assert_eq!(report.rejected, 0);

    // The repeated-operator stream keeps the cache hot: the hit rate
    // clears the same floor the perf gate replays from the bench JSON.
    assert_eq!(report.cache_lookups, N_REQUESTS as u64);
    assert!(
        report.hit_rate() >= 0.85,
        "soak hit rate {:.4} below the 0.85 floor",
        report.hit_rate()
    );
    assert!(report.warm_requests >= (N_REQUESTS as u64 * 85) / 100);
    assert!(
        report.warm_flushes > 0,
        "warm buckets flushed as GBTRS-only"
    );
    assert_eq!(report.stale_handles, 0, "no explicit handles in this soak");
    // The pool (plus churn replacements) stays far under the default
    // entry budget, so nothing hot is ever evicted.
    assert!(report.cache_entries <= 256);
    assert!(report.amortized_cost_s() > 0.0);

    // Reuse earns its keep: the identical stream with every operator
    // regenerated per arrival (churn 1.0 — nothing ever repeats) must
    // keep the device busy strictly longer than the cached run.
    let (_, cold) = run_soak(ParallelPolicy::Serial, 1.0);
    assert_eq!(cold.cache_hits, 0, "full churn never repeats an operator");
    assert!(
        report.gpu_busy_s + report.cpu_busy_s < cold.gpu_busy_s + cold.cpu_busy_s,
        "cached busy {:.6}s !< cold busy {:.6}s",
        report.gpu_busy_s + report.cpu_busy_s,
        cold.gpu_busy_s + cold.cpu_busy_s
    );
    assert!(
        report.amortized_cost_s() < cold.amortized_cost_s(),
        "amortized per-solve cost must drop under reuse"
    );

    // Determinism: bitwise-identical responses and report under a
    // work-stealing host pool.
    let (alt, alt_report) = run_soak(ParallelPolicy::threads(4), CHURN);
    assert_eq!(alt.len(), responses.len());
    for (a, b) in alt.iter().zip(&responses) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.x, b.x, "4-worker solution differs (id {})", a.id);
        assert_eq!(a.completed_s, b.completed_s);
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.backend, b.backend);
    }
    assert_eq!(alt_report, report, "4-worker report differs");
}
