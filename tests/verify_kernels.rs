//! Tier-1 slice of `cargo xtask verify-kernels`: race proofs over the
//! quick envelope, rejection of the seeded historical-bug fixtures, and
//! the model-vs-kernel conformance grid at both precisions.

use gbatch_analyzer::{prove_model, RaceError};
use gbatch_kernels::access_model::{fixtures, registry, Rigor};
use gbatch_kernels::conformance::run_conformance;

#[test]
fn race_proofs_hold_for_every_registered_family() {
    let models = registry(Rigor::Quick);
    assert!(models.len() >= 5, "the registry must cover >= 5 families");
    for model in &models {
        match prove_model(model) {
            Ok(stats) => {
                if !model.templates.is_empty() {
                    assert!(
                        stats.pair_systems > 0,
                        "family {}: proof discharged no obligations",
                        model.family
                    );
                }
            }
            Err(e) => panic!("family {} failed its race proof:\n{e}", model.family),
        }
    }
}

#[test]
fn historical_bug_fixtures_are_rejected_with_counterexamples() {
    let fxs = fixtures();
    assert_eq!(fxs.len(), 2);
    for fx in &fxs {
        match prove_model(fx) {
            Err(RaceError::Counterexample(ce)) => {
                assert_eq!(ce.family, fx.family);
                assert!(
                    ce.shape.contains_key("n"),
                    "counterexample must pin a concrete shape"
                );
            }
            Ok(stats) => panic!(
                "fixture {} wrongly proved race-free ({} pair systems)",
                fx.family, stats.pair_systems
            ),
            Err(other) => panic!(
                "fixture {} must fail with a concrete counterexample, got: {other}",
                fx.family
            ),
        }
    }
}

#[test]
fn conformance_grid_passes_for_f64() {
    let checks = run_conformance::<f64>(Rigor::Quick).unwrap_or_else(|e| panic!("{e}"));
    assert!(checks > 0, "conformance ran no checks");
}

#[test]
fn conformance_grid_passes_for_f32() {
    let checks = run_conformance::<f32>(Rigor::Quick).unwrap_or_else(|e| panic!("{e}"));
    assert!(checks > 0, "conformance ran no checks");
}
