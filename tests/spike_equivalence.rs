//! Equivalence grid for the SPIKE split regime (the third dispatch path).
//!
//! The split driver's contract is that splitting is an implementation
//! detail: an exact-mode split solve agrees with the sequential `gbsv`
//! driver, a one-block "split" is *bitwise* the unsplit window + blocked
//! path, the answer is bitwise-deterministic under every host scheduling
//! policy, and the truncated mode either meets its advertised residual
//! bound or falls back cleanly. The grid here drives the dispatch layer
//! (forced `GbsvOptions::spike`) over both precisions, `P ∈ {1, 2, 3, 8}`
//! blocks and `{1, 2, 8}` host workers, plus the headline large system:
//! `n = 65536`, `kl = ku = 8`, exact mode at `P = 8`.

use gbatch::core::gbsv::gbsv;
use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch, Scalar};
use gbatch::gpu_sim::{registry, DeviceSpec, ParallelPolicy};
use gbatch::kernels::dispatch::{gbsv_batch, ChosenAlgo, FactorAlgo, GbsvOptions};
use gbatch::kernels::gbtrs_blocked::SolveParams;
use gbatch::kernels::spike::{spike_gbsv_batch, SpikeMode, SpikeOutcome, SpikeParams};
use gbatch::kernels::window::WindowParams;

/// Host worker counts the answer must be bitwise-invariant under.
const WORKERS: [usize; 3] = [1, 2, 8];
/// Block counts of the grid (`P = 1` degenerates to the unsplit path).
const PARTS: [usize; 4] = [1, 2, 3, 8];

fn dev() -> DeviceSpec {
    registry::device(registry::H100_PCIE).expect("catalog entry")
}

/// Deterministic diagonally dominant band batch (LU never pivots a zero,
/// truncated-SPIKE refinement converges).
fn dominant_band<S: Scalar>(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch<S> {
    BandBatch::<S>::from_fn(batch, n, n, kl, ku, |id, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(
                    i,
                    j,
                    S::from_f64(((i * 7 + j * 3 + id) % 5) as f64 * 0.1 + 0.05),
                );
            }
            let sum = (s..e)
                .filter(|&i| i != j)
                .fold(S::ZERO, |acc, i| acc + m.get(i, j).abs());
            m.set(j, j, sum + S::ONE);
        }
    })
    .unwrap()
}

/// Deterministic band batch with *no* dominance: the truncated spikes do
/// not decay, so refinement stalls and the driver must fall back.
fn nondominant_band<S: Scalar>(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch<S> {
    BandBatch::<S>::from_fn(batch, n, n, kl, ku, |id, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = ((i * 11 + j * 5 + id * 3) % 17) as f64 * 0.13 - 1.0;
                m.set(i, j, S::from_f64(if i == j { v + 0.2 } else { v }));
            }
        }
    })
    .unwrap()
}

fn rhs<S: Scalar>(batch: usize, n: usize, nrhs: usize) -> RhsBatch<S> {
    RhsBatch::<S>::from_fn(batch, n, nrhs, |id, i, c| {
        S::from_f64(((id * 13 + c * 5 + i) as f64 * 0.29).sin())
    })
    .unwrap()
}

/// Sequential LAPACK-style `gbsv` on one lane — the ground truth every
/// split configuration is measured against.
fn sequential<S: Scalar>(a0: &BandBatch<S>, b0: &RhsBatch<S>, id: usize) -> Vec<S> {
    let l = a0.layout();
    let stride = a0.matrix_stride();
    let mut ab = a0.data()[id * stride..(id + 1) * stride].to_vec();
    let mut ipiv = vec![0i32; l.n];
    let mut b = b0.block(id).to_vec();
    let info = gbsv(&l, &mut ab, &mut ipiv, &mut b, l.n, b0.nrhs());
    assert_eq!(info, 0, "sequential comparator must factor");
    b
}

/// Infinity-norm relative residual `‖b - A x‖ / ‖b‖` of one lane/column,
/// with the residual accumulated in the working precision (matching the
/// split driver's own refinement guard).
#[allow(clippy::needless_range_loop)] // i and j index three slices in lockstep
fn rel_residual<S: Scalar>(a: &BandBatch<S>, id: usize, x: &[S], b: &[S]) -> f64 {
    let l = a.layout();
    let m = a.matrix(id);
    let mut r: Vec<S> = b.to_vec();
    for j in 0..l.n {
        let (s, e) = l.col_rows(j);
        for i in s..e {
            let upd = m.get(i, j) * x[j];
            r[i] -= upd;
        }
    }
    let rn = r.iter().fold(0.0f64, |acc, v| acc.max(v.to_f64().abs()));
    let bn = b.iter().fold(0.0f64, |acc, v| acc.max(v.to_f64().abs()));
    rn / bn.max(f64::MIN_POSITIVE)
}

/// One dispatch-layer solve; returns the solution batch and the algorithm
/// the dispatcher reports.
fn run_dispatch<S: Scalar>(
    a0: &BandBatch<S>,
    b0: &RhsBatch<S>,
    opts: &GbsvOptions,
) -> (RhsBatch<S>, ChosenAlgo) {
    let dev = dev();
    let mut a = a0.clone();
    let mut b = b0.clone();
    let n = a.layout().n;
    let mut piv = PivotBatch::new(a.batch(), n, n);
    let mut info = InfoArray::new(a.batch());
    let rep = gbsv_batch::<S>(&dev, &mut a, &mut piv, &mut b, &mut info, opts).unwrap();
    assert!(info.all_ok(), "grid systems are nonsingular");
    (b, rep.algo)
}

/// Shared window/solve tuning pinned to the split driver's defaults so the
/// `P = 1` degenerate path and the forced-window baseline run bitwise the
/// same kernels.
fn pinned_unsplit_opts() -> GbsvOptions {
    GbsvOptions {
        algo: FactorAlgo::Window,
        window: Some(WindowParams {
            nb: 8,
            threads: 32,
            ..Default::default()
        }),
        solve: Some(SolveParams {
            nb: 8,
            threads: 32,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// The exact-mode grid at one precision: every `P`, every worker count,
/// against the sequential driver; bitwise-stable across workers; `P = 1`
/// bitwise against the unsplit window + blocked path.
fn exact_grid<S: Scalar>(sol_tol: f64) {
    let dev = dev();
    let (batch, n, kl, ku, nrhs) = (2, 512, 3, 2, 2);
    let a0 = dominant_band::<S>(batch, n, kl, ku);
    let b0 = rhs::<S>(batch, n, nrhs);
    let seq: Vec<Vec<S>> = (0..batch).map(|id| sequential(&a0, &b0, id)).collect();

    let (x_unsplit, algo) = run_dispatch(&a0, &b0, &pinned_unsplit_opts());
    assert_eq!(algo, ChosenAlgo::Window);

    for parts in PARTS {
        let mut per_worker = Vec::new();
        for workers in WORKERS {
            let opts = GbsvOptions {
                spike: Some(
                    SpikeParams::auto(&dev, kl)
                        .with_parts(parts)
                        .with_mode(SpikeMode::Exact),
                ),
                parallel: Some(ParallelPolicy::threads(workers)),
                ..Default::default()
            };
            let (x, algo) = run_dispatch(&a0, &b0, &opts);
            assert_eq!(algo, ChosenAlgo::Spike);
            per_worker.push(x);
        }
        // Bitwise determinism across host scheduling.
        for w in &per_worker[1..] {
            assert_eq!(
                per_worker[0].data(),
                w.data(),
                "P = {parts}: host workers changed the bits"
            );
        }
        // Agreement with the sequential driver.
        let x = &per_worker[0];
        for (id, sq) in seq.iter().enumerate() {
            let scale = sq.iter().fold(0.0f64, |acc, v| acc.max(v.to_f64().abs()));
            for c in 0..nrhs {
                for i in 0..n {
                    let d = (x.get(id, i, c).to_f64() - sq[c * n + i].to_f64()).abs();
                    assert!(
                        d <= sol_tol * scale,
                        "P = {parts} lane {id} ({i}, {c}): |dx| = {d:.3e}"
                    );
                }
            }
        }
        // A one-block split *is* the unsplit path, bit for bit.
        if parts == 1 {
            assert_eq!(
                x.data(),
                x_unsplit.data(),
                "P = 1 must be bitwise the window + blocked path"
            );
        }
    }
}

#[test]
fn exact_spike_matches_sequential_gbsv_f64() {
    exact_grid::<f64>(1e-12);
}

#[test]
fn exact_spike_matches_sequential_gbsv_f32() {
    exact_grid::<f32>(1e-4);
}

/// The acceptance headline: one `n = 65536`, `kl = ku = 8` system, exact
/// mode at `P = 8`, answers to ≤ 1e-12 relative residual and is bitwise
/// identical under 1, 2 and 8 host workers.
#[test]
fn exact_p8_headline_system_meets_residual_and_determinism() {
    let dev = dev();
    let (n, kl, ku) = (65536, 8, 8);
    let a0 = dominant_band::<f64>(1, n, kl, ku);
    let b0 = rhs::<f64>(1, n, 1);

    let mut per_worker = Vec::new();
    for workers in WORKERS {
        let opts = GbsvOptions {
            spike: Some(
                SpikeParams::auto(&dev, kl)
                    .with_parts(8)
                    .with_mode(SpikeMode::Exact),
            ),
            parallel: Some(ParallelPolicy::threads(workers)),
            ..Default::default()
        };
        let (x, algo) = run_dispatch(&a0, &b0, &opts);
        assert_eq!(algo, ChosenAlgo::Spike);
        per_worker.push(x);
    }
    for w in &per_worker[1..] {
        assert_eq!(per_worker[0].data(), w.data(), "workers changed the bits");
    }
    let x: Vec<f64> = (0..n).map(|i| per_worker[0].get(0, i, 0)).collect();
    let r = rel_residual(&a0, 0, &x, b0.block(0));
    assert!(r <= 1e-12, "headline relative residual {r:.3e} above 1e-12");
}

/// Truncated mode on diagonally dominant operators: every lane converges
/// through refinement and the final answer meets the driver's advertised
/// bound, `‖b - A x‖ ≤ 10 · eps · ‖b‖`.
fn truncated_meets_bound<S: Scalar>() {
    let dev = dev();
    let (batch, n, kl, ku, nrhs) = (2, 2048, 3, 3, 2);
    let mut a = dominant_band::<S>(batch, n, kl, ku);
    let b0 = rhs::<S>(batch, n, nrhs);
    let mut b = b0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let params = SpikeParams::auto(&dev, kl)
        .with_parts(8)
        .with_mode(SpikeMode::Truncated);
    let rep = spike_gbsv_batch::<S>(&dev, &mut a, &mut piv, &mut b, &mut info, params).unwrap();
    assert!(info.all_ok());
    for (id, o) in rep.outcomes.iter().enumerate() {
        assert!(
            matches!(o, SpikeOutcome::Truncated { .. }),
            "lane {id}: expected truncated convergence, got {o:?}"
        );
        // The factors in `a` are block-partitioned after the split solve,
        // so rebuild the operator for an independent residual check.
        let a0 = dominant_band::<S>(batch, n, kl, ku);
        for c in 0..nrhs {
            let x: Vec<S> = (0..n).map(|i| b.get(id, i, c)).collect();
            let bc = &b0.block(id)[c * n..(c + 1) * n];
            let r = rel_residual(&a0, id, &x, bc);
            assert!(
                r <= 10.0 * S::EPSILON.to_f64(),
                "lane {id} col {c}: truncated residual {r:.3e} above 10·eps"
            );
        }
    }
}

#[test]
fn truncated_refinement_meets_advertised_bound_f64() {
    truncated_meets_bound::<f64>();
}

#[test]
fn truncated_refinement_meets_advertised_bound_f32() {
    truncated_meets_bound::<f32>();
}

/// Exact-mode residual-guard rejection: a nearly singular operator (the
/// Neumann Laplacian plus a tiny corner perturbation) whose diagonal
/// blocks are all well conditioned, so the split solve runs to completion
/// and only the residual guard rejects it. The driver must then fall back
/// to the unsplit path *on the original right-hand side* — a fallback that
/// consumed a clobbered RHS would return a wildly wrong answer with
/// `info = 0`, exactly in the ill-conditioned case the guard exists for.
#[test]
fn exact_guard_rejection_falls_back_on_pristine_rhs() {
    let dev = dev();
    let (n, kl, ku, nrhs) = (512, 1, 1, 1);
    let a0 = BandBatch::<f64>::from_fn(1, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, if i == j { 2.0 } else { -1.0 });
            }
        }
        m.set(0, 0, 1.0 + 1e-12);
        m.set(n - 1, n - 1, 1.0);
    })
    .unwrap();
    let b0 = rhs::<f64>(1, n, nrhs);
    let mut a = a0.clone();
    let mut b = b0.clone();
    let mut piv = PivotBatch::new(1, n, n);
    let mut info = InfoArray::new(1);
    let params = SpikeParams::auto(&dev, kl)
        .with_parts(4)
        .with_mode(SpikeMode::Exact);
    let rep = spike_gbsv_batch::<f64>(&dev, &mut a, &mut piv, &mut b, &mut info, params).unwrap();
    assert!(info.all_ok(), "fallback must still answer");
    assert!(
        matches!(rep.outcomes[0], SpikeOutcome::Unsplit),
        "near-singular operator should trip the residual guard, got {:?}",
        rep.outcomes[0]
    );
    // "Never worse than the sequential driver": the fallback's residual is
    // comparable to the sequential one only if it solved the original b.
    let seq = sequential(&a0, &b0, 0);
    let x: Vec<f64> = (0..n).map(|i| b.get(0, i, 0)).collect();
    let r_split = rel_residual(&a0, 0, &x, b0.block(0));
    let r_seq = rel_residual(&a0, 0, &seq, b0.block(0)).max(f64::EPSILON);
    assert!(
        r_split <= 100.0 * r_seq,
        "fallback residual {r_split:.3e} vs sequential {r_seq:.3e}"
    );
}

/// Truncated mode on non-dominant operators: refinement stalls, the
/// driver falls back (exact reduced system or unsplit), and the answer is
/// still as good as the sequential driver's.
#[test]
fn truncated_falls_back_cleanly_on_non_dominant_operators() {
    let dev = dev();
    let (batch, n, kl, ku, nrhs) = (2, 768, 3, 3, 1);
    let a0 = nondominant_band::<f64>(batch, n, kl, ku);
    let b0 = rhs::<f64>(batch, n, nrhs);
    let mut a = a0.clone();
    let mut b = b0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let params = SpikeParams {
        parts: 4,
        mode: SpikeMode::Truncated,
        max_refine: 2,
        ..SpikeParams::auto(&dev, kl)
    };
    let rep = spike_gbsv_batch::<f64>(&dev, &mut a, &mut piv, &mut b, &mut info, params).unwrap();
    assert!(info.all_ok(), "fallback must still answer");
    assert!(
        rep.outcomes
            .iter()
            .any(|o| !matches!(o, SpikeOutcome::Truncated { .. })),
        "non-dominant operators should defeat truncated refinement, got {:?}",
        rep.outcomes
    );
    for (id, _) in rep.outcomes.iter().enumerate() {
        for c in 0..nrhs {
            let x: Vec<f64> = (0..n).map(|i| b.get(id, i, c)).collect();
            let bc = &b0.block(id)[c * n..(c + 1) * n];
            let r = rel_residual(&a0, id, &x, bc);
            assert!(r <= 1e-10, "lane {id} col {c}: fallback residual {r:.3e}");
        }
    }
}
