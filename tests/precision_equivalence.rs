//! Cross-precision grid: the `Scalar`-generic refactor is observable only
//! through the new `f32` surface.
//!
//! Two families of property tests:
//!
//! - **f64 is bitwise-unchanged** — the pre-refactor double-precision
//!   stack and the generic one at `S = f64` execute the same operation
//!   sequence, so the dispatcher's output is bitwise-identical under every
//!   worker count (the seed determinism baseline, re-proved here over
//!   random shapes).
//! - **f32 kernels agree with f32 `gbtf2`** — every GPU factorization
//!   design instantiated at `f32` (fused, window, interleaved) produces
//!   the same bits as the sequential single-precision reference, and the
//!   `sgbsv_batch` driver is policy-invariant exactly like its `f64`
//!   sibling.

use gbatch::core::gbsv::gbsv;
use gbatch::core::gbtf2::gbtf2;
use gbatch::core::{BandBatch, InfoArray, InterleavedBandBatch, PivotBatch, RhsBatch};
use gbatch::gpu_sim::{DeviceSpec, ParallelPolicy};
use gbatch::kernels::dispatch::{dgbsv_batch, sgbsv_batch, GbsvOptions};
use gbatch::kernels::fused::{gbtrf_batch_fused, FusedParams};
use gbatch::kernels::interleaved::{gbtrf_batch_interleaved, InterleavedParams};
use gbatch::kernels::window::{gbtrf_batch_window, WindowParams};
use proptest::prelude::*;

const WORKERS: [ParallelPolicy; 3] = [
    ParallelPolicy::Threads(1),
    ParallelPolicy::Threads(2),
    ParallelPolicy::Threads(8),
];

/// Strategy: valid square band problems small enough for fast shrinking.
fn band_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..32).prop_flat_map(|n| {
        let kmax = n - 1;
        ((Just(n)), 0..=kmax.min(6), 0..=kmax.min(6))
    })
}

/// Deterministic f32 batch from a value pool; the diagonal boost keeps
/// partial pivoting away from exact ties (which are still deterministic,
/// just less interesting to shrink).
fn fill_batch_f32(batch: usize, n: usize, kl: usize, ku: usize, values: &[f64]) -> BandBatch<f32> {
    let mut k = 0usize;
    BandBatch::<f32>::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = values[k % values.len()] as f32 + if i == j { 3.0 } else { 0.0 };
                m.set(i, j, v);
                k += 1;
            }
        }
    })
    .unwrap()
}

fn fill_batch_f64(batch: usize, n: usize, kl: usize, ku: usize, values: &[f64]) -> BandBatch {
    let mut k = 0usize;
    BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = values[k % values.len()] + if i == j { 3.0 } else { 0.0 };
                m.set(i, j, v);
                k += 1;
            }
        }
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// f32 fused and window kernels agree bit-for-bit with the sequential
    /// single-precision reference factorization.
    #[test]
    fn f32_fused_and_window_match_f32_gbtf2((n, kl, ku) in band_dims(),
                                            nb in 1usize..16,
                                            vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 2usize;
        let a0 = fill_batch_f32(batch, n, kl, ku, &vals);
        let l = a0.layout();

        // Sequential f32 oracle, one matrix at a time.
        let mut oracle = a0.clone();
        let mut opiv = PivotBatch::new(batch, n, n);
        let mut oinfo = Vec::new();
        let stride = l.len();
        for id in 0..batch {
            let ab = &mut oracle.data_mut()[id * stride..(id + 1) * stride];
            oinfo.push(gbtf2::<f32>(&l, ab, opiv.pivots_mut(id)));
        }

        let mut a1 = a0.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let _ = gbtrf_batch_fused(&dev, &mut a1, &mut p1, &mut i1, FusedParams::auto(&dev, kl)).unwrap();
        prop_assert_eq!(a1.data(), oracle.data(), "fused f32 factors");
        prop_assert_eq!(&p1, &opiv, "fused f32 pivots");
        prop_assert_eq!(i1.as_slice(), &oinfo[..], "fused f32 info");

        let mut a2 = a0.clone();
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i2 = InfoArray::new(batch);
        let params = WindowParams { nb, ..WindowParams::auto(&dev, kl) };
        let _ = gbtrf_batch_window(&dev, &mut a2, &mut p2, &mut i2, params).unwrap();
        prop_assert_eq!(a2.data(), oracle.data(), "window f32 factors");
        prop_assert_eq!(&p2, &opiv, "window f32 pivots");
    }

    /// The interleaved (batch-major) f32 factorization produces the same
    /// bits as the column-major f32 reference after de-interleaving.
    #[test]
    fn f32_interleaved_matches_f32_gbtf2((n, kl, ku) in band_dims(),
                                         lanes in 1usize..5,
                                         vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 3usize;
        let a0 = fill_batch_f32(batch, n, kl, ku, &vals);
        let l = a0.layout();

        let mut oracle = a0.clone();
        let mut opiv = PivotBatch::new(batch, n, n);
        let stride = l.len();
        for id in 0..batch {
            let ab = &mut oracle.data_mut()[id * stride..(id + 1) * stride];
            let _ = gbtf2::<f32>(&l, ab, opiv.pivots_mut(id));
        }

        let mut ia = InterleavedBandBatch::from_batch(&a0);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let params = InterleavedParams {
            lanes_per_block: lanes,
            ..InterleavedParams::auto_for::<f32>(&dev, &l, 1)
        };
        let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        let back = ia.to_batch();
        prop_assert_eq!(back.data(), oracle.data(), "interleaved f32 factors");
        prop_assert_eq!(&piv, &opiv, "interleaved f32 pivots");
    }

    /// The f64 dispatcher is bitwise worker-count-invariant — the seed
    /// determinism baseline survives the generic refactor.
    #[test]
    fn f64_dispatch_bitwise_invariant_across_workers((n, kl, ku) in band_dims(),
                                                     vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 4usize;
        let a0 = fill_batch_f64(batch, n, kl, ku, &vals);
        let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id * 5 + i) as f64 * 0.23).sin()).unwrap();

        let run = |policy: ParallelPolicy| {
            let mut a = a0.clone();
            let mut b = b0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let opts = GbsvOptions { parallel: Some(policy), ..GbsvOptions::default() };
            let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
            (a, b, piv, info.as_slice().to_vec(), rep.time.secs().to_bits())
        };
        let serial = run(ParallelPolicy::Serial);
        for policy in WORKERS {
            let par = run(policy);
            prop_assert_eq!(serial.0.data(), par.0.data(), "factors under {:?}", policy);
            prop_assert_eq!(serial.1.data(), par.1.data(), "solutions under {:?}", policy);
            prop_assert_eq!(&serial.2, &par.2, "pivots under {:?}", policy);
            prop_assert_eq!(&serial.3, &par.3, "info under {:?}", policy);
            prop_assert_eq!(serial.4, par.4, "modeled time bits under {:?}", policy);
        }
    }

    /// `sgbsv_batch` is policy-invariant and agrees bitwise with the
    /// sequential f32 driver.
    #[test]
    fn f32_dispatch_bitwise_invariant_and_matches_f32_gbsv((n, kl, ku) in band_dims(),
                                                           vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 4usize;
        let a0 = fill_batch_f32(batch, n, kl, ku, &vals);
        let b0 = RhsBatch::<f32>::from_fn(batch, n, 1, |id, i, _| (((id * 5 + i) as f64 * 0.23).sin()) as f32).unwrap();
        let l = a0.layout();

        // Sequential f32 oracle.
        let mut oab = a0.clone();
        let mut ob = b0.clone();
        let mut opiv = PivotBatch::new(batch, n, n);
        let stride = l.len();
        for id in 0..batch {
            let ab = &mut oab.data_mut()[id * stride..(id + 1) * stride];
            let _ = gbsv::<f32>(&l, ab, opiv.pivots_mut(id), ob.block_mut(id), n, 1);
        }

        let run = |policy: ParallelPolicy| {
            let mut a = a0.clone();
            let mut b = b0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let opts = GbsvOptions { parallel: Some(policy), ..GbsvOptions::default() };
            let _ = sgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
            (a, b, piv, info.as_slice().to_vec())
        };
        let serial = run(ParallelPolicy::Serial);
        prop_assert_eq!(serial.1.data(), ob.data(), "sgbsv vs sequential f32 gbsv");
        prop_assert_eq!(&serial.2, &opiv, "sgbsv pivots vs sequential f32");
        for policy in WORKERS {
            let par = run(policy);
            prop_assert_eq!(serial.0.data(), par.0.data(), "f32 factors under {:?}", policy);
            prop_assert_eq!(serial.1.data(), par.1.data(), "f32 solutions under {:?}", policy);
            prop_assert_eq!(&serial.2, &par.2, "f32 pivots under {:?}", policy);
            prop_assert_eq!(&serial.3, &par.3, "f32 info under {:?}", policy);
        }
    }
}
