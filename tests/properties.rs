//! Property-based tests (proptest) over the core invariants:
//! layout round-trips, factorization equivalence across kernel designs,
//! solve backward errors, pivot bounds, and occupancy monotonicity.

use gbatch::core::gbtrs::{gbtrs, Transpose};
use gbatch::core::layout::BandLayout;
use gbatch::core::residual::backward_error;
use gbatch::core::vbatch::{VarBandBatch, VarPivots};
use gbatch::core::{BandBatch, BandMatrix, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::ParallelPolicy;
use gbatch::gpu_sim::{occupancy, DeviceSpec};
use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch::kernels::fused::{gbtrf_batch_fused, FusedParams};
use gbatch::kernels::gbtrs_blocked::SolveParams;
use gbatch::kernels::gbtrs_trans::gbtrs_batch_blocked_trans;
use gbatch::kernels::reference::gbtrf_batch_reference;
use gbatch::kernels::window::{gbtrf_batch_window, WindowParams};
use proptest::prelude::*;

/// Strategy: valid square band problems small enough for fast shrinking.
fn band_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..40).prop_flat_map(|n| {
        let kmax = n - 1;
        ((Just(n)), 0..=kmax.min(8), 0..=kmax.min(8))
    })
}

fn fill_batch(batch: usize, n: usize, kl: usize, ku: usize, values: &[f64]) -> BandBatch {
    let mut k = 0usize;
    BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = values[k % values.len()] + if i == j { 3.0 } else { 0.0 };
                m.set(i, j, v);
                k += 1;
            }
        }
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Dense round-trip: band -> dense -> band is the identity.
    #[test]
    fn dense_roundtrip((n, kl, ku) in band_dims(), seed in 0.0f64..1.0) {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 1.61 + 0.313).fract();
                a.set(i, j, v - 0.5);
            }
        }
        let d = a.to_dense();
        let b = BandMatrix::from_dense(n, n, kl, ku, &d).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Every GPU factorization design produces identical factors + pivots
    /// (bit-for-bit) for arbitrary band shapes and window block sizes.
    #[test]
    fn kernel_designs_agree((n, kl, ku) in band_dims(),
                            nb in 1usize..24,
                            vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 2;
        let a0 = fill_batch(batch, n, kl, ku, &vals);

        let mut a1 = a0.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let _ = gbtrf_batch_fused(&dev, &mut a1, &mut p1, &mut i1, FusedParams::auto(&dev, kl)).unwrap();

        let mut a2 = a0.clone();
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i2 = InfoArray::new(batch);
        let _ = gbtrf_batch_window(&dev, &mut a2, &mut p2, &mut i2, WindowParams { nb, threads: 32, ..Default::default() })
            .unwrap();

        prop_assert_eq!(a1.data(), a2.data());
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(i1, i2);
    }

    /// Cross-algorithm equivalence against the sequential ground truth:
    /// for random `(n, kl, ku, batch)` the fused, sliding-window, and
    /// fork-join reference designs all reproduce `gbtf2` bit-for-bit —
    /// factors, pivots, and info — and stay bitwise-identical when the
    /// host executor runs the blocks on several threads.
    #[test]
    fn all_designs_match_gbtf2((n, kl, ku) in band_dims(),
                               batch in 1usize..6,
                               nb in 1usize..16,
                               vals in proptest::collection::vec(-1.0f64..1.0, 24)) {
        let dev = DeviceSpec::h100_pcie();
        let a0 = fill_batch(batch, n, kl, ku, &vals);
        let l = a0.layout();

        // Ground truth: sequential LAPACK-style gbtf2, one matrix at a time.
        let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch).map(|id| {
            let mut ab = a0.matrix(id).data.to_vec();
            let mut p = vec![0i32; n];
            let info = gbatch::core::gbtf2::gbtf2(&l, &mut ab, &mut p);
            (ab, p, info)
        }).collect();

        let policy = ParallelPolicy::threads(4);
        let mut runs: Vec<(&str, BandBatch, PivotBatch, InfoArray)> = Vec::new();
        {
            let mut a = a0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let _ = gbtrf_batch_fused(&dev, &mut a, &mut piv, &mut info,
                              FusedParams::auto(&dev, kl).with_parallel(policy)).unwrap();
            runs.push(("fused", a, piv, info));
        }
        {
            let mut a = a0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let _ = gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info,
                               WindowParams { nb, threads: 32, parallel: policy }).unwrap();
            runs.push(("window", a, piv, info));
        }
        {
            let mut a = a0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            gbtrf_batch_reference(&dev, &mut a, &mut piv, &mut info, policy).unwrap();
            runs.push(("reference", a, piv, info));
        }
        for (name, a, piv, info) in &runs {
            for (id, exp) in expected.iter().enumerate() {
                prop_assert_eq!(a.matrix(id).data, &exp.0[..],
                                "{} factors (n={} kl={} ku={} id={})", name, n, kl, ku, id);
                prop_assert_eq!(piv.pivots(id), &exp.1[..],
                                "{} pivots (n={} kl={} ku={} id={})", name, n, kl, ku, id);
                prop_assert_eq!(info.get(id), exp.2,
                                "{} info (n={} kl={} ku={} id={})", name, n, kl, ku, id);
            }
        }
    }

    /// Solutions from the full driver have small backward error whenever
    /// the factorization is nonsingular, for any nrhs.
    #[test]
    fn gbsv_backward_error((n, kl, ku) in band_dims(),
                           nrhs in 1usize..4,
                           vals in proptest::collection::vec(-1.0f64..1.0, 32)) {
        let dev = DeviceSpec::mi250x_gcd();
        let batch = 3;
        let a0 = fill_batch(batch, n, kl, ku, &vals);
        let b0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 13 + i * 3 + c * 7) as f64 * 0.23).sin()
        }).unwrap();
        let (mut a, mut b) = (a0.clone(), b0.clone());
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &GbsvOptions::default()).unwrap();
        for id in 0..batch {
            if info.get(id) != 0 { continue; }
            for c in 0..nrhs {
                let x = &b.block(id)[c * n..(c + 1) * n];
                let r = &b0.block(id)[c * n..(c + 1) * n];
                let berr = backward_error(a0.matrix(id), x, r);
                // Strict tolerance, annotated: random bands here are only
                // mildly diagonally shifted (+3 on the diagonal), so the
                // bound is looser than the dispatch tests' 1e-11 but still
                // catches any real pivoting or update-order regression.
                prop_assert!(berr < 1e-9, "berr {} (n={} kl={} ku={})", berr, n, kl, ku);
            }
        }
    }

    /// Pivot offsets never exceed the column's sub-diagonal count, and the
    /// pivot row index never exceeds `j + kl`.
    #[test]
    fn pivot_bounds((n, kl, ku) in band_dims(),
                    vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let dev = DeviceSpec::h100_pcie();
        let a0 = fill_batch(1, n, kl, ku, &vals);
        let mut a = a0.clone();
        let mut piv = PivotBatch::new(1, n, n);
        let mut info = InfoArray::new(1);
        let _ = gbtrf_batch_fused(&dev, &mut a, &mut piv, &mut info, FusedParams::auto(&dev, kl)).unwrap();
        for (j, &p) in piv.pivots(0).iter().enumerate() {
            let p = p as usize;
            prop_assert!(p >= j, "pivot row below the diagonal step");
            prop_assert!(p <= j + kl, "pivot row {} beyond j + kl", p);
            prop_assert!(p < n);
        }
    }

    /// Occupancy is monotone non-increasing in the shared-memory request
    /// and never exceeds device caps.
    #[test]
    fn occupancy_monotone(smem1 in 1u32..100_000, smem2 in 1u32..100_000, threads in 1u32..1024) {
        let dev = DeviceSpec::h100_pcie();
        let (lo, hi) = if smem1 <= smem2 { (smem1, smem2) } else { (smem2, smem1) };
        match (occupancy::occupancy(&dev, threads, lo), occupancy::occupancy(&dev, threads, hi)) {
            (Some(a), Some(b)) => {
                prop_assert!(a.blocks_per_sm >= b.blocks_per_sm);
                prop_assert!(a.blocks_per_sm <= dev.max_blocks_per_sm);
            }
            (None, Some(_)) => prop_assert!(false, "smaller request failed while larger passed"),
            _ => {}
        }
    }

    /// The `U` factor's bandwidth after factorization never exceeds
    /// `kl + ku` (fill-in stays within the reserved rows).
    #[test]
    fn fill_in_stays_in_reserved_rows((n, kl, ku) in band_dims(),
                                      vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let a0 = fill_batch(1, n, kl, ku, &vals);
        let l = a0.layout();
        let mut ab = a0.matrix(0).data.to_vec();
        let mut piv = vec![0i32; n];
        gbatch::core::gbtf2::gbtf2(&l, &mut ab, &mut piv);
        // Every stored factor entry lives in band rows [0, ldab); U's
        // topmost reachable row for column j is max(0, kv - j). Rows above
        // that must still hold the zeros the fill-in logic wrote (or the
        // untouched input — but we zero-initialized, so: zero).
        let kv = l.kv();
        for j in 0..n {
            let top = kv.saturating_sub(j);
            for r in 0..top {
                prop_assert_eq!(ab[l.idx(r, j)], 0.0,
                    "untouchable fill row ({}, {}) was written", r, j);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The blocked transpose solve equals the sequential transpose solve
    /// bit-for-bit for arbitrary shapes, block sizes and RHS counts.
    #[test]
    fn transpose_solve_matches_core((n, kl, ku) in band_dims(),
                                    nb in 1usize..16,
                                    nrhs in 1usize..4,
                                    vals in proptest::collection::vec(-1.0f64..1.0, 24)) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 2;
        let mut fac = fill_batch(batch, n, kl, ku, &vals);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = gbtrf_batch_fused(&dev, &mut fac, &mut piv, &mut info, FusedParams::auto(&dev, kl)).unwrap();
        prop_assume!(info.all_ok());
        let l = fac.layout();
        let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 5 + i * 2 + c) as f64 * 0.31).cos()
        }).unwrap();
        let mut expect = rhs.clone();
        for id in 0..batch {
            gbtrs(Transpose::Yes, &l, fac.matrix(id).data, piv.pivots(id),
                  expect.block_mut(id), n, nrhs);
        }
        gbtrs_batch_blocked_trans(&dev, &l, fac.data(), &piv, &mut rhs,
                                  SolveParams { nb, threads: 32, ..Default::default() }).unwrap();
        prop_assert_eq!(rhs.data(), expect.data());
    }

    /// The non-uniform batch kernel factors every member exactly like the
    /// sequential reference, whatever mix of layouts it gets.
    #[test]
    fn vbatch_matches_per_matrix_reference(
        shapes in proptest::collection::vec((2usize..24, 0usize..4, 0usize..4), 1..6),
        vals in proptest::collection::vec(-1.0f64..1.0, 24),
    ) {
        let layouts: Vec<BandLayout> = shapes
            .iter()
            .map(|&(n, kl, ku)| {
                BandLayout::factor(n, n, kl.min(n - 1), ku.min(n - 1)).unwrap()
            })
            .collect();
        let mut k = 0usize;
        let mut a = VarBandBatch::from_fn(layouts, |_, m| {
            let n = m.layout.n;
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    m.set(i, j, vals[k % vals.len()] + if i == j { 3.0 } else { 0.0 });
                    k += 1;
                }
            }
        }).unwrap();
        let orig = a.clone();
        let dev = DeviceSpec::h100_pcie();
        let mut piv = VarPivots::for_batch(&a);
        let mut info = InfoArray::new(a.batch());
        let _ = gbatch::kernels::vbatch::dgbtrf_vbatch(&dev, &mut a, &mut piv, &mut info, 4).unwrap();
        for id in 0..a.batch() {
            let l = orig.layout(id);
            let mut expect = orig.matrix(id).data.to_vec();
            let mut p = vec![0i32; l.n];
            let i = gbatch::core::gbtf2::gbtf2(&l, &mut expect, &mut p);
            prop_assert_eq!(info.get(id), i);
            prop_assert_eq!(piv.pivots(id), &p[..]);
            prop_assert_eq!(a.matrix(id).data, &expect[..]);
        }
    }

    /// The specialized register-file kernels agree with the generic path
    /// for every compiled band shape.
    #[test]
    fn specialized_matches_generic(n in 2usize..48,
                                   shape_idx in 0usize..5,
                                   vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
        let shapes = [(1usize, 1usize), (2, 2), (2, 3), (3, 3), (10, 7)];
        let (kl, ku) = shapes[shape_idx];
        prop_assume!(kl < n && ku < n);
        let dev = DeviceSpec::h100_pcie();
        let a0 = fill_batch(2, n, kl, ku, &vals);
        let mut a1 = a0.clone();
        let mut p1 = PivotBatch::new(2, n, n);
        let mut i1 = InfoArray::new(2);
        let _ = gbatch::kernels::specialized::specialized_gbtrf(&dev, &mut a1, &mut p1, &mut i1, 32)
            .expect("compiled shape").unwrap();
        let mut a2 = a0.clone();
        let mut p2 = PivotBatch::new(2, n, n);
        let mut i2 = InfoArray::new(2);
        let _ = gbtrf_batch_fused(&dev, &mut a2, &mut p2, &mut i2, FusedParams::auto(&dev, kl)).unwrap();
        prop_assert_eq!(a1.data(), a2.data());
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(i1, i2);
    }

    /// Iterative refinement never worsens the componentwise backward error.
    #[test]
    fn refinement_never_regresses((n, kl, ku) in band_dims(),
                                  vals in proptest::collection::vec(-1.0f64..1.0, 24)) {
        let a = fill_batch(1, n, kl, ku, &vals);
        let m = a.matrix(0).to_owned();
        let l = m.layout();
        let mut ab = m.data().to_vec();
        let mut piv = vec![0i32; n];
        prop_assume!(gbatch::core::gbtf2::gbtf2(&l, &mut ab, &mut piv) == 0);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let mut x = b.clone();
        gbtrs(Transpose::No, &l, &ab, &piv, &mut x, n, 1);
        let before = gbatch::core::gbrfs::componentwise_berr(m.as_ref(), &x, &b);
        let res = gbatch::core::gbrfs::gbrfs(m.as_ref(), &l, &ab, &piv, &b, &mut x);
        prop_assert!(res.berr <= before * (1.0 + 1e-12),
                     "berr {} -> {}", before, res.berr);
    }
}
