//! Enforce-mode hazard grid and negative fixtures.
//!
//! Every test in this binary flips the process-global hazard mode to
//! [`HazardMode::Enforce`], so every `LaunchConfig` the library builds
//! carries the enforcing tracker: the first shared-memory conflict between
//! distinct lanes inside one barrier epoch aborts the block with a located
//! panic. The grid tests then drive every kernel family over the paper's
//! band shapes, both storage layouts and both scheduling policies — a
//! completed launch *is* the race-freedom certificate. The negative
//! fixtures prove the detector is not vacuous: a deliberately missing
//! barrier is pinned to its exact (epoch, lane, offset), and an
//! out-of-band row write trips the provenance classifier with the exact
//! (band_row, column).

use std::panic::{catch_unwind, AssertUnwindSafe};

use gbatch::core::gbtrs::Transpose;
use gbatch::core::layout::BandLayout;
use gbatch::core::{BandBatch, InfoArray, InterleavedBandBatch, PivotBatch, RhsBatch};
use gbatch::gpu_sim::hazard::{set_global_mode, HazardKind, HazardMode};
use gbatch::gpu_sim::{launch, registry, DeviceSpec, LaunchConfig, ParallelPolicy};
use gbatch::kernels::dispatch::{
    dgbsv_batch, dgbtrf_batch, dgbtrs_batch, sgbsv_batch, GbsvOptions, MatrixLayout,
};
use gbatch::kernels::fused::{gbtrf_batch_fused, FusedParams};
use gbatch::kernels::gbsv_fused::gbsv_batch_fused;
use gbatch::kernels::gbtrs_blocked::{gbtrs_batch_blocked, SolveParams};
use gbatch::kernels::gbtrs_cols::gbtrs_batch_cols;
use gbatch::kernels::gbtrs_trans::gbtrs_batch_blocked_trans;
use gbatch::kernels::interleaved::{
    gbtrf_batch_interleaved, gbtrs_batch_interleaved, InterleavedParams,
};
use gbatch::kernels::reference::gbtrf_batch_reference;
use gbatch::kernels::spike::{spike_gbsv_batch, SpikeMode, SpikeParams};
use gbatch::kernels::step::SmemBand;
use gbatch::kernels::window::{gbtrf_batch_window, gbtrf_batch_window_relaunch, WindowParams};

/// The paper's two headline band shapes (§7).
const SHAPES: &[(usize, usize)] = &[(2, 3), (10, 7)];
const N: usize = 24;
const BATCH: usize = 6;

fn dev() -> DeviceSpec {
    registry::device(registry::H100_PCIE).expect("catalog entry")
}

fn policies() -> [ParallelPolicy; 2] {
    [ParallelPolicy::Serial, ParallelPolicy::threads(4)]
}

/// Deterministic diagonally dominant band batch: LU with partial pivoting
/// always succeeds, and the deterministic entries make any cross-policy
/// divergence reproducible.
fn band_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
    BandBatch::from_fn(batch, n, n, kl, ku, |b, m| {
        for j in 0..n {
            let lo = j.saturating_sub(ku);
            let hi = (j + kl).min(n - 1);
            for i in lo..=hi {
                let v = if i == j {
                    (kl + ku + 2) as f64 + (b % 3) as f64
                } else {
                    0.3 + 0.1 * ((i * 7 + j * 3 + b) % 5) as f64
                };
                m.set(i, j, v);
            }
        }
    })
    .unwrap()
}

fn rhs_batch(batch: usize, n: usize, nrhs: usize) -> RhsBatch {
    RhsBatch::from_fn(batch, n, nrhs, |b, i, c| {
        1.0 + ((b + 2 * i + 3 * c) % 7) as f64
    })
    .unwrap()
}

// =================================================================
// Enforce-mode grid: every kernel family, every layout, every policy
// =================================================================

#[test]
fn enforce_factor_kernels_run_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            // Fused (§5.2): whole factorization in one shared window.
            let mut a = band_batch(BATCH, N, kl, ku);
            let mut piv = PivotBatch::new(BATCH, N, N);
            let mut info = InfoArray::new(BATCH);
            let params = FusedParams {
                threads: 8,
                parallel: policy,
            };
            let rep = gbtrf_batch_fused(&dev, &mut a, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok(), "fused ({kl},{ku}) {policy:?}");
            assert_eq!(rep.counters.hazards, 0);

            // Sliding window (§5.3) with in-kernel shift.
            let mut a = band_batch(BATCH, N, kl, ku);
            let params = WindowParams {
                nb: 6,
                threads: 8,
                parallel: policy,
            };
            let rep = gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok(), "window ({kl},{ku}) {policy:?}");
            assert_eq!(rep.counters.hazards, 0);

            // Relaunch ablation: one launch per window iteration.
            let mut a = band_batch(BATCH, N, kl, ku);
            let reps =
                gbtrf_batch_window_relaunch(&dev, &mut a, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok(), "relaunch ({kl},{ku}) {policy:?}");
            assert!(reps.iter().all(|r| r.counters.hazards == 0));

            // Reference fork–join (§5.1).
            let mut a = band_batch(BATCH, N, kl, ku);
            gbtrf_batch_reference(&dev, &mut a, &mut piv, &mut info, policy).unwrap();
            assert!(info.all_ok(), "reference ({kl},{ku}) {policy:?}");
        }
    }
}

#[test]
fn enforce_solve_kernels_run_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        // Factor once per shape, reuse for every solver variant.
        let mut a = band_batch(BATCH, N, kl, ku);
        let mut piv = PivotBatch::new(BATCH, N, N);
        let mut info = InfoArray::new(BATCH);
        let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default()).unwrap();
        assert!(info.all_ok());
        let l = a.layout();

        for policy in policies() {
            for nrhs in [1usize, 10] {
                let params = SolveParams {
                    nb: 6,
                    threads: 4,
                    parallel: policy,
                };

                // Blocked solve with the per-RHS-column shared cache.
                let mut rhs = rhs_batch(BATCH, N, nrhs);
                let rep = gbtrs_batch_blocked(&dev, &l, a.data(), &piv, &mut rhs, params).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));
                if let Some(fwd) = &rep.forward {
                    assert_eq!(fwd.counters.hazards, 0);
                }
                assert_eq!(rep.backward.counters.hazards, 0);

                // One-thread-per-column variant.
                let mut rhs = rhs_batch(BATCH, N, nrhs);
                gbtrs_batch_cols(&dev, &l, a.data(), &piv, &mut rhs, policy).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));

                // Transpose solve (U^T then L^T).
                let mut rhs = rhs_batch(BATCH, N, nrhs);
                gbtrs_batch_blocked_trans(&dev, &l, a.data(), &piv, &mut rhs, params).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));

                // Dispatch-level solve, both transpose settings.
                for trans in [Transpose::No, Transpose::Yes] {
                    let mut rhs = rhs_batch(BATCH, N, nrhs);
                    let opts = GbsvOptions {
                        parallel: Some(policy),
                        ..GbsvOptions::default()
                    };
                    let _ = dgbtrs_batch(&dev, trans, &l, a.data(), &piv, &mut rhs, &opts).unwrap();
                    assert!(rhs.data().iter().all(|v| v.is_finite()));
                }
            }
        }
    }
}

#[test]
fn enforce_spike_coupling_kernels_run_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    // Large enough that a 3-way partition survives the clamp for the wide
    // (10, 7) band; both reduced-system modes exercise every coupling
    // kernel (extract, combine, residual) under the enforcing tracker.
    let n = 192;
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            for mode in [SpikeMode::Exact, SpikeMode::Truncated] {
                let mut a = band_batch(BATCH, n, kl, ku);
                let mut piv = PivotBatch::new(BATCH, n, n);
                let mut rhs = rhs_batch(BATCH, n, 2);
                let mut info = InfoArray::new(BATCH);
                let params = SpikeParams::auto(&dev, kl)
                    .with_parts(3)
                    .with_mode(mode)
                    .with_parallel(policy);
                let rep =
                    spike_gbsv_batch(&dev, &mut a, &mut piv, &mut rhs, &mut info, params).unwrap();
                assert!(info.all_ok(), "spike ({kl},{ku}) {mode:?} {policy:?}");
                assert!(rep.parts > 1, "partition must actually split");
                assert!(rhs.data().iter().all(|v| v.is_finite()));
            }
        }
    }
}

#[test]
fn enforce_fused_gbsv_runs_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            for nrhs in [1usize, 10] {
                let mut a = band_batch(BATCH, N, kl, ku);
                let mut piv = PivotBatch::new(BATCH, N, N);
                let mut rhs = rhs_batch(BATCH, N, nrhs);
                let mut info = InfoArray::new(BATCH);
                let rep = gbsv_batch_fused(&dev, &mut a, &mut piv, &mut rhs, &mut info, 8, policy)
                    .unwrap();
                assert!(info.all_ok(), "gbsv ({kl},{ku}) nrhs {nrhs} {policy:?}");
                assert_eq!(rep.counters.hazards, 0);
            }
        }
    }
}

#[test]
fn enforce_interleaved_kernels_run_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            let aos = band_batch(BATCH, N, kl, ku);
            let mut ia = InterleavedBandBatch::from_batch(&aos);
            let mut piv = PivotBatch::new(BATCH, N, N);
            let mut info = InfoArray::new(BATCH);
            let params = InterleavedParams {
                lanes_per_block: 3,
                threads: 2,
                parallel: policy,
                ..Default::default()
            };
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok(), "igbtrf ({kl},{ku}) {policy:?}");
            for nrhs in [1usize, 10] {
                let mut rhs = rhs_batch(BATCH, N, nrhs);
                let _ = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));
            }
        }
    }
}

#[test]
fn enforce_dispatch_grid_both_layouts() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            for layout in [MatrixLayout::ColumnMajor, MatrixLayout::Interleaved] {
                for nrhs in [1usize, 10] {
                    let mut a = band_batch(BATCH, N, kl, ku);
                    let mut piv = PivotBatch::new(BATCH, N, N);
                    let mut rhs = rhs_batch(BATCH, N, nrhs);
                    let mut info = InfoArray::new(BATCH);
                    let opts = GbsvOptions {
                        parallel: Some(policy),
                        layout,
                        ..GbsvOptions::default()
                    };
                    let _ =
                        dgbsv_batch(&dev, &mut a, &mut piv, &mut rhs, &mut info, &opts).unwrap();
                    assert!(
                        info.all_ok(),
                        "dgbsv ({kl},{ku}) nrhs {nrhs} {layout:?} {policy:?}"
                    );
                    assert!(rhs.data().iter().all(|v| v.is_finite()));
                }
            }
        }
    }
}

// =================================================================
// Enforce-mode grid, f32 instantiations
// =================================================================

/// The f32 counterpart of [`band_batch`].
fn band_batch_f32(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch<f32> {
    BandBatch::<f32>::from_fn(batch, n, n, kl, ku, |b, m| {
        for j in 0..n {
            let lo = j.saturating_sub(ku);
            let hi = (j + kl).min(n - 1);
            for i in lo..=hi {
                let v = if i == j {
                    (kl + ku + 2) as f32 + (b % 3) as f32
                } else {
                    0.3 + 0.1 * ((i * 7 + j * 3 + b) % 5) as f32
                };
                m.set(i, j, v);
            }
        }
    })
    .unwrap()
}

fn rhs_batch_f32(batch: usize, n: usize, nrhs: usize) -> RhsBatch<f32> {
    RhsBatch::<f32>::from_fn(batch, n, nrhs, |b, i, c| {
        1.0 + ((b + 2 * i + 3 * c) % 7) as f32
    })
    .unwrap()
}

/// Every kernel family instantiated at `f32` under Enforce: the halved
/// shared footprint must not introduce any cross-lane conflict the `f64`
/// instantiation doesn't have (the access *pattern* is precision-blind;
/// only the byte widths shrink).
#[test]
fn enforce_f32_kernel_instantiations_run_hazard_free() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            // Fused factorization.
            let mut a = band_batch_f32(BATCH, N, kl, ku);
            let mut piv = PivotBatch::new(BATCH, N, N);
            let mut info = InfoArray::new(BATCH);
            let params = FusedParams {
                threads: 8,
                parallel: policy,
            };
            let rep = gbtrf_batch_fused(&dev, &mut a, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok(), "f32 fused ({kl},{ku}) {policy:?}");
            assert_eq!(rep.counters.hazards, 0);
            let l = a.layout();

            // Sliding window.
            let mut aw = band_batch_f32(BATCH, N, kl, ku);
            let wparams = WindowParams {
                nb: 6,
                threads: 8,
                parallel: policy,
            };
            let rep = gbtrf_batch_window(&dev, &mut aw, &mut piv, &mut info, wparams).unwrap();
            assert!(info.all_ok(), "f32 window ({kl},{ku}) {policy:?}");
            assert_eq!(rep.counters.hazards, 0);

            // Solve kernels over the fused factors.
            for nrhs in [1usize, 10] {
                let sparams = SolveParams {
                    nb: 6,
                    threads: 4,
                    parallel: policy,
                };
                let mut rhs = rhs_batch_f32(BATCH, N, nrhs);
                let rep = gbtrs_batch_blocked(&dev, &l, a.data(), &piv, &mut rhs, sparams).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));
                if let Some(fwd) = &rep.forward {
                    assert_eq!(fwd.counters.hazards, 0);
                }
                assert_eq!(rep.backward.counters.hazards, 0);

                let mut rhs = rhs_batch_f32(BATCH, N, nrhs);
                gbtrs_batch_cols(&dev, &l, a.data(), &piv, &mut rhs, policy).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));

                let mut rhs = rhs_batch_f32(BATCH, N, nrhs);
                gbtrs_batch_blocked_trans(&dev, &l, a.data(), &piv, &mut rhs, sparams).unwrap();
                assert!(rhs.data().iter().all(|v| v.is_finite()));
            }

            // Fused GBSV driver.
            let mut af = band_batch_f32(BATCH, N, kl, ku);
            let mut rhs = rhs_batch_f32(BATCH, N, 1);
            let rep =
                gbsv_batch_fused(&dev, &mut af, &mut piv, &mut rhs, &mut info, 8, policy).unwrap();
            assert!(info.all_ok(), "f32 gbsv ({kl},{ku}) {policy:?}");
            assert_eq!(rep.counters.hazards, 0);

            // Interleaved factor + solve.
            let aos = band_batch_f32(BATCH, N, kl, ku);
            let mut ia = InterleavedBandBatch::from_batch(&aos);
            let iparams = InterleavedParams {
                lanes_per_block: 3,
                threads: 2,
                parallel: policy,
                ..Default::default()
            };
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, iparams).unwrap();
            assert!(info.all_ok(), "f32 igbtrf ({kl},{ku}) {policy:?}");
            let mut rhs = rhs_batch_f32(BATCH, N, 1);
            let _ = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, iparams).unwrap();
            assert!(rhs.data().iter().all(|v| v.is_finite()));
        }
    }
}

/// The single-precision dispatch driver under Enforce, both layouts.
#[test]
fn enforce_f32_dispatch_grid_both_layouts() {
    set_global_mode(HazardMode::Enforce);
    let dev = dev();
    for &(kl, ku) in SHAPES {
        for policy in policies() {
            for layout in [MatrixLayout::ColumnMajor, MatrixLayout::Interleaved] {
                for nrhs in [1usize, 10] {
                    let mut a = band_batch_f32(BATCH, N, kl, ku);
                    let mut piv = PivotBatch::new(BATCH, N, N);
                    let mut rhs = rhs_batch_f32(BATCH, N, nrhs);
                    let mut info = InfoArray::new(BATCH);
                    let opts = GbsvOptions {
                        parallel: Some(policy),
                        layout,
                        ..GbsvOptions::default()
                    };
                    let _ =
                        sgbsv_batch(&dev, &mut a, &mut piv, &mut rhs, &mut info, &opts).unwrap();
                    assert!(
                        info.all_ok(),
                        "sgbsv ({kl},{ku}) nrhs {nrhs} {layout:?} {policy:?}"
                    );
                    assert!(rhs.data().iter().all(|v| v.is_finite()));
                }
            }
        }
    }
}

// =================================================================
// Negative fixture 1: a missing barrier, located exactly
// =================================================================

/// The racy block program: lane 0 writes a cell and lane 1 reads it with
/// no barrier in between. An initial sync moves the conflict out of epoch
/// 0 so the report proves epochs are tracked, not just assumed.
fn missing_barrier_body(ctx: &mut gbatch::gpu_sim::BlockContext) {
    let off = ctx.smem.alloc(8);
    if let Some(t) = ctx.smem.tracker() {
        t.write(0, off + 3); // epoch 0: harmless single-lane write
    }
    ctx.sync(); // ---- barrier: epoch 0 -> 1
    if let Some(t) = ctx.smem.tracker() {
        t.write(0, off + 3);
        t.read(1, off + 3); // RAW: no barrier since lane 0's write
    }
}

#[test]
fn missing_barrier_is_reported_with_exact_location() {
    // Explicit Record override: the fixture must return a report, not
    // abort, regardless of the process-global Enforce the grid tests set.
    let cfg = LaunchConfig::new(4, 256)
        .with_hazard(HazardMode::Record)
        .with_label("missing_barrier_fixture");
    let mut data = vec![0usize; 2];
    let rep = launch(&dev(), &cfg, &mut data, |_, ctx| missing_barrier_body(ctx)).unwrap();

    assert_eq!(rep.counters.hazards, 2, "one RAW per block");
    assert_eq!(rep.hazards.len(), 2);
    for (block_id, r) in rep.hazards.iter().enumerate() {
        assert_eq!(r.block_id, block_id);
        assert_eq!(r.label, "missing_barrier_fixture");
        assert_eq!(r.total_hazards, 1);
        let h = &r.hazards[0];
        assert_eq!(h.kind, HazardKind::Raw);
        assert_eq!(h.offset, 3, "first arena allocation starts at 0");
        assert_eq!(h.epoch, 1, "conflict lands after the initial barrier");
        assert_eq!(h.first_lane, 0);
        assert_eq!(h.second_lane, 1);
    }
}

#[test]
fn missing_barrier_aborts_under_enforce_with_located_message() {
    let cfg = LaunchConfig::new(4, 256)
        .with_hazard(HazardMode::Enforce)
        .with_label("missing_barrier_fixture");
    let mut data = vec![0usize; 2];
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ = launch(&dev(), &cfg, &mut data, |_, ctx| missing_barrier_body(ctx));
    }))
    .expect_err("enforce must abort the racing block");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
    assert!(
        msg.contains("shared-memory hazard in `missing_barrier_fixture` block 0"),
        "{msg}"
    );
    assert!(
        msg.contains("RAW hazard at shared offset 3 in epoch 1: lane 0 then lane 1"),
        "{msg}"
    );
}

#[test]
fn inserting_the_barrier_clears_the_report() {
    // The corrected program — same accesses, a sync between them — must
    // run clean even under Enforce.
    let cfg = LaunchConfig::new(4, 256)
        .with_hazard(HazardMode::Enforce)
        .with_label("fixed_barrier_fixture");
    let mut data = vec![0usize; 2];
    let rep = launch(&dev(), &cfg, &mut data, |_, ctx| {
        let off = ctx.smem.alloc(8);
        if let Some(t) = ctx.smem.tracker() {
            t.write(0, off + 3);
        }
        ctx.sync();
        if let Some(t) = ctx.smem.tracker() {
            t.read(1, off + 3); // now a cross-epoch read: legal
        }
    })
    .unwrap();
    assert_eq!(rep.counters.hazards, 0);
    assert!(rep.hazards.is_empty());
}

// =================================================================
// Negative fixture 2: out-of-band row write caught by provenance
// =================================================================

/// Provenance checks are compiled in under `debug_assertions` or the
/// `verify` feature; the tier-1 `cargo test` run is a debug build, so the
/// gate is active here.
#[cfg(debug_assertions)]
#[test]
fn out_of_band_row_write_panics_with_exact_indices() {
    let l = BandLayout::factor(9, 9, 2, 3).unwrap();
    let len = l.ldab * l.n;
    let cfg = LaunchConfig::new(4, (len * 8) as u32).with_label("oob_write_fixture");

    // Positive control: a fill-in touch (row 0 of column 5 maps into the
    // workspace rows LU pivoting legitimately fills) passes the gate.
    let mut data = vec![0usize; 1];
    let _ = launch(&dev(), &cfg, &mut data, |_, ctx| {
        let off = ctx.smem.alloc(len);
        let mut w = SmemBand {
            data: ctx.smem.slice_mut(off, len),
            ldab: l.ldab,
            col0: 0,
            width: l.n,
            provenance: Some(l),
        };
        w.set(0, 5, 3.5);
    })
    .unwrap();

    // Band row 7 of column 8 maps to full-matrix row 7 + 8 - (kl+ku) = 10,
    // past m = 9: an out-of-range touch the classifier must reject with
    // the exact (band_row, column).
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut data = vec![0usize; 1];
        let _ = launch(&dev(), &cfg, &mut data, |_, ctx| {
            let off = ctx.smem.alloc(len);
            let mut w = SmemBand {
                data: ctx.smem.slice_mut(off, len),
                ldab: l.ldab,
                col0: 0,
                width: l.n,
                provenance: Some(l),
            };
            w.set(7, 8, 1.0);
        });
    }))
    .expect_err("provenance gate must reject the out-of-band write");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
    assert!(
        msg.contains("out-of-range band access in shared window: band_row 7, column 8"),
        "{msg}"
    );
}
