//! Integration tests for the beyond-the-paper extensions, combining them
//! with the application workloads.

use gbatch::core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::core::layout::BandLayout;
use gbatch::core::residual::backward_error;
use gbatch::core::vbatch::{VarBandBatch, VarPivots, VarRhs};
use gbatch::gpu_sim::multi::DeviceGroup;
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::mixed::{msgbsv_batch_fused, MixedStatus};
use gbatch::kernels::pbtrf::{pbsv_batch_fused, PbBatch};
use gbatch::kernels::tridiag::{pcr_solve_batch, TridiagBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// XGC-like SPD systems through the Cholesky path, residual-certified.
#[test]
fn xgc_systems_through_cholesky() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kd) = (32usize, 193usize, 3usize);
    // Symmetrized XGC-style stencil, diagonally dominant.
    let a0 = PbBatch::from_fn(batch, n, kd, |id, l, ab| {
        let phase = id as f64 * 0.37;
        for j in 0..n {
            let coeff = 1.0 + 0.5 * ((j as f64 * 0.05 + phase).sin());
            let mut sum = 0.0;
            for k in 1..=kd.min(n - 1 - j) {
                let w = -coeff / (k * k) as f64;
                ab[l.idx(j + k, j)] = w;
                sum += w.abs();
            }
            ab[l.idx(j, j)] = 2.0 * sum + 2.0 * coeff;
        }
    });
    let mut xs = vec![0.0; batch * n];
    for (k, v) in xs.iter_mut().enumerate() {
        *v = ((k % 23) as f64) * 0.1 - 1.0;
    }
    let mut rhs = vec![0.0; batch * n];
    for id in 0..batch {
        let mut y = vec![0.0; n];
        gbatch::core::pb::pbmv(
            &a0.layout(),
            a0.matrix(id),
            &xs[id * n..(id + 1) * n],
            &mut y,
        );
        rhs[id * n..(id + 1) * n].copy_from_slice(&y);
    }
    let mut a = a0.clone();
    let mut info = InfoArray::new(batch);
    let _ = pbsv_batch_fused(&dev, &mut a, &mut rhs, 1, &mut info, 32).unwrap();
    assert!(info.all_ok());
    for k in 0..batch * n {
        assert!((rhs[k] - xs[k]).abs() < 1e-9);
    }
}

/// SUNDIALS-like single-species tridiagonal systems through PCR, checked
/// against the pivoted LU path.
#[test]
fn sundials_tridiagonal_through_pcr() {
    let dev = DeviceSpec::mi250x_gcd();
    let (batch, n) = (64usize, 72usize);
    // I - gamma*J with weak coupling: diagonally dominant tridiagonal.
    let gamma = 0.02;
    let a = TridiagBatch::from_fn(
        batch,
        n,
        |id, i| -gamma * ((id + i) as f64 * 0.29).sin(),
        |id, i| 1.0 + gamma * (2.0 + ((id * 3 + i) as f64 * 0.11).cos()),
        |id, i| -gamma * ((id * 7 + i) as f64 * 0.17).cos(),
    );
    for id in 0..batch {
        assert!(a.is_diagonally_dominant(id));
    }
    let mut rhs =
        RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.13).sin()).unwrap();
    let rhs0 = rhs.clone();
    let _ = pcr_solve_batch(&dev, &a, &mut rhs, 64).unwrap();
    // Residual check through the tridiagonal matvec.
    for id in 0..batch {
        let mut y = vec![0.0; n];
        a.matvec(id, rhs.block(id), &mut y);
        for (i, (yi, r0)) in y.iter().zip(rhs0.block(id)).enumerate() {
            assert!((yi - r0).abs() < 1e-11, "id={id} row {i}");
        }
    }
}

/// Mixed precision on a PELE-like dominant batch: everything converges,
/// everything certified.
#[test]
fn pele_like_batch_through_mixed_precision() {
    let dev = DeviceSpec::h100_pcie();
    let mut rng = StdRng::seed_from_u64(7);
    let (batch, n, klu) = (24usize, 50usize, 4usize);
    let a = gbatch::workloads::random::random_band_batch(
        &mut rng,
        batch,
        n,
        klu,
        klu,
        gbatch::workloads::random::BandDistribution::DiagonallyDominant { margin: 0.5 },
    );
    let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id * 3 + i) as f64 * 0.21).cos()).unwrap();
    let mut b = b0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let (_, status) = msgbsv_batch_fused(&dev, &a, &mut piv, &mut b, &mut info, 32).unwrap();
    for (id, st) in status.iter().enumerate().take(batch) {
        assert!(matches!(st, MixedStatus::Converged(_)));
        let berr = backward_error(a.matrix(id), b.block(id), b0.block(id));
        assert!(berr < 1e-13, "id {id}: berr {berr:.2e}");
    }
}

/// Non-uniform AMR-style batch split across the two GCDs of a full
/// MI250x: partitions solve independently and all solutions certify.
#[test]
fn nonuniform_batch_on_multi_gcd() {
    let group = DeviceGroup::mi250x_full();
    let layouts: Vec<BandLayout> = (0..30)
        .map(|k| {
            let n = 24 + (k % 3) * 24;
            BandLayout::factor(n, n, 2, 2).unwrap()
        })
        .collect();
    let mut v = 0.83f64;
    let a0 = VarBandBatch::from_fn(layouts, |_, m| {
        let n = m.layout.n;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 2.3 + 0.041).fract();
                m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
    })
    .unwrap();
    let rhs0 = VarRhs::from_fn(&a0, 1, |id, i, _| ((id + i) as f64 * 0.19).sin()).unwrap();

    // Split: each device gets a contiguous id range; solve per partition.
    let batch = a0.batch();
    let mut solved: Vec<Option<Vec<f64>>> = vec![None; batch];
    let makespan = group
        .run_split::<gbatch::gpu_sim::LaunchError>(batch, |dev, lo, hi| {
            // Build the partition as its own VarBandBatch.
            let part_layouts: Vec<BandLayout> = (lo..hi).map(|id| a0.layout(id)).collect();
            let mut pa = VarBandBatch::from_fn(part_layouts, |k, m| {
                let src = a0.matrix(lo + k);
                let n = m.layout.n;
                for j in 0..n {
                    let (s, e) = m.layout.col_rows(j);
                    for i in s..e {
                        m.set(i, j, src.get(i, j));
                    }
                }
            })
            .unwrap();
            let mut prhs = VarRhs::from_fn(&pa, 1, |k, i, _| rhs0.block(lo + k)[i]).unwrap();
            let mut piv = VarPivots::for_batch(&pa);
            let mut info = InfoArray::new(pa.batch());
            let rep = gbatch::kernels::vbatch::dgbsv_vbatch(
                dev, &mut pa, &mut piv, &mut prhs, &mut info, 4,
            )?;
            assert!(info.all_ok());
            for k in 0..pa.batch() {
                solved[lo + k] = Some(prhs.block(k).to_vec());
            }
            Ok(rep.time)
        })
        .unwrap();
    assert!(makespan.secs() > 0.0);
    for (id, sol) in solved.iter().enumerate().take(batch) {
        let x = sol.as_ref().expect("every system solved");
        let berr = backward_error(a0.matrix(id), x, rhs0.block(id));
        assert!(berr < 1e-11, "id {id}: {berr:.2e}");
    }
}

/// The specialized registry and generic dispatch agree on the XGC
/// single-species band (3,3).
#[test]
fn specialized_on_xgc_band_shape() {
    let dev = DeviceSpec::h100_pcie();
    let mut rng = StdRng::seed_from_u64(11);
    let (batch, n) = (16usize, 193usize);
    let a0 = gbatch::workloads::random::random_band_batch(
        &mut rng,
        batch,
        n,
        3,
        3,
        gbatch::workloads::random::BandDistribution::Uniform,
    );
    let mut a1 = a0.clone();
    let mut p1 = PivotBatch::new(batch, n, n);
    let mut i1 = InfoArray::new(batch);
    let _ = gbatch::kernels::specialized::specialized_gbtrf(&dev, &mut a1, &mut p1, &mut i1, 32)
        .expect("(3,3) is compiled")
        .unwrap();
    let mut a2 = a0.clone();
    let mut p2 = PivotBatch::new(batch, n, n);
    let mut i2 = InfoArray::new(batch);
    let _ = gbatch::kernels::dispatch::dgbtrf_batch(
        &dev,
        &mut a2,
        &mut p2,
        &mut i2,
        &gbatch::kernels::dispatch::GbsvOptions::default(),
    )
    .unwrap();
    assert_eq!(a1.data(), a2.data());
    assert_eq!(p1, p2);
    let _ = BandBatch::<f64>::zeros(1, 2, 2, 1, 1).unwrap();
}

/// RHS blocks with padding (`ldb > n`) flow through the blocked GPU
/// solvers untouched outside the live rows.
#[test]
fn gpu_solvers_respect_ldb_padding() {
    use gbatch::core::gbtrs::Transpose;
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (4usize, 20usize, 2usize, 3usize);
    let mut rng = StdRng::seed_from_u64(21);
    let mut a = gbatch::workloads::random::random_band_batch(
        &mut rng,
        batch,
        n,
        kl,
        ku,
        gbatch::workloads::random::BandDistribution::DiagonallyDominant { margin: 1.0 },
    );
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = gbatch::kernels::dispatch::dgbtrf_batch(
        &dev,
        &mut a,
        &mut piv,
        &mut info,
        &gbatch::kernels::dispatch::GbsvOptions::default(),
    )
    .unwrap();
    assert!(info.all_ok());

    let ldb = n + 5;
    let mut rhs = RhsBatch::zeros_with_ldb(batch, n, 2, ldb).unwrap();
    for id in 0..batch {
        for c in 0..2 {
            for i in 0..n {
                rhs.block_mut(id)[c * ldb + i] = ((id + c + i) as f64 * 0.23).sin();
            }
            for i in n..ldb {
                rhs.block_mut(id)[c * ldb + i] = 999.0; // sentinel padding
            }
        }
    }
    let l = a.layout();
    for trans in [Transpose::No, Transpose::Yes] {
        let mut b = rhs.clone();
        let _ = gbatch::kernels::dispatch::dgbtrs_batch(
            &dev,
            trans,
            &l,
            a.data(),
            &piv,
            &mut b,
            &gbatch::kernels::dispatch::GbsvOptions::default(),
        )
        .unwrap();
        for id in 0..batch {
            for c in 0..2 {
                for i in n..ldb {
                    assert_eq!(
                        b.block(id)[c * ldb + i],
                        999.0,
                        "padding clobbered ({trans:?}, id {id}, col {c}, row {i})"
                    );
                }
                // Solution agrees with the sequential reference.
                let mut expect = vec![0.0; n];
                expect.copy_from_slice(&rhs.block(id)[c * ldb..c * ldb + n]);
                gbatch::core::gbtrs::gbtrs(
                    trans,
                    &l,
                    a.matrix(id).data,
                    piv.pivots(id),
                    &mut expect,
                    n,
                    1,
                );
                assert_eq!(&b.block(id)[c * ldb..c * ldb + n], &expect[..n]);
            }
        }
    }
}

/// Partial waves: a grid one block larger than the device's concurrency
/// costs a full extra wave in the model.
#[test]
fn partial_wave_pricing() {
    use gbatch::gpu_sim::{engine::validate, launch, LaunchConfig};
    let dev = DeviceSpec::h100_pcie();
    let cfg = LaunchConfig::new(64, 128 * 1024); // 1 block/SM -> 114 concurrent
    let occ = validate(&dev, &cfg).unwrap();
    assert_eq!(occ.concurrent_blocks, dev.sms);
    let body = |_: &mut (), ctx: &mut gbatch::gpu_sim::BlockContext| {
        ctx.seq_cycles(100_000.0);
    };
    let mut exact = vec![(); dev.sms as usize];
    let t1 = launch(&dev, &cfg, &mut exact, body).unwrap().time;
    let mut spill = vec![(); dev.sms as usize + 1];
    let t2 = launch(&dev, &cfg, &mut spill, body).unwrap().time;
    let ratio = (t2.secs() - dev.launch_overhead_s) / (t1.secs() - dev.launch_overhead_s);
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "one extra block = one extra wave: {ratio:.3}"
    );
}
