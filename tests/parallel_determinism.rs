//! Parallel-executor determinism: every factorization algorithm and both
//! solve paths must produce bitwise-identical results — factors, pivots,
//! info codes, aggregate counters, and modeled `SimTime` — under every
//! `ParallelPolicy`, because the work-stealing executor only changes *when*
//! a block runs on the host, never *what* it computes or how the per-block
//! counters are merged.

use gbatch::core::gbtrs::Transpose;
use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::{
    with_engine_mode, DeviceSpec, EngineMode, KernelCounters, ParallelPolicy, SimTime,
};
use gbatch::kernels::dispatch::{dgbsv_batch, FactorAlgo, GbsvOptions};
use gbatch::kernels::fused::{gbtrf_batch_fused, FusedParams};
use gbatch::kernels::gbsv_fused::gbsv_batch_fused;
use gbatch::kernels::gbtrs_blocked::{gbtrs_batch_blocked, SolveParams};
use gbatch::kernels::gbtrs_cols::gbtrs_batch_cols;
use gbatch::kernels::gbtrs_trans::gbtrs_batch_blocked_trans;
use gbatch::kernels::reference::gbtrf_batch_reference;
use gbatch::kernels::window::{gbtrf_batch_window, WindowParams};

const POLICIES: [ParallelPolicy; 3] = [
    ParallelPolicy::Threads(1),
    ParallelPolicy::Threads(2),
    ParallelPolicy::Threads(8),
];

fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
    let mut v = 0.37f64;
    BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 2.9 + 0.041 + id as f64 * 3e-4).fract();
                m.set(i, j, v - 0.5);
            }
        }
    })
    .unwrap()
}

fn random_rhs(batch: usize, n: usize, nrhs: usize) -> RhsBatch {
    RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
        ((id * 13 + c * 5 + i) as f64 * 0.29).sin()
    })
    .unwrap()
}

/// Exact equality of every counter field, with the f64 fields compared by
/// bit pattern (NaN-proof, rounding-proof).
fn assert_counters_bitwise(a: &KernelCounters, b: &KernelCounters, what: &str) {
    assert_eq!(a.global_read, b.global_read, "{what}: global_read");
    assert_eq!(a.global_write, b.global_write, "{what}: global_write");
    assert_eq!(a.flops, b.flops, "{what}: flops");
    assert_eq!(a.smem_trips, b.smem_trips, "{what}: smem_trips");
    assert_eq!(a.syncs, b.syncs, "{what}: syncs");
    assert_eq!(
        a.cycles.to_bits(),
        b.cycles.to_bits(),
        "{what}: cycles bits"
    );
    assert_eq!(
        a.smem_elems.to_bits(),
        b.smem_elems.to_bits(),
        "{what}: smem_elems bits"
    );
}

fn assert_time_bitwise(a: SimTime, b: SimTime, what: &str) {
    assert_eq!(
        a.secs().to_bits(),
        b.secs().to_bits(),
        "{what}: SimTime bits"
    );
}

/// One factorization outcome, fully materialized for comparison.
struct FactorRun {
    factors: Vec<f64>,
    pivots: PivotBatch,
    info: Vec<i32>,
    counters: Vec<KernelCounters>,
    time: SimTime,
}

fn run_factor(algo: FactorAlgo, a0: &BandBatch, policy: ParallelPolicy) -> FactorRun {
    let dev = DeviceSpec::h100_pcie();
    let batch = a0.batch();
    let n = a0.layout().n;
    let kl = a0.layout().kl;
    let mut a = a0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let (counters, time) = match algo {
        FactorAlgo::Fused => {
            let rep = gbtrf_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                FusedParams::auto(&dev, kl).with_parallel(policy),
            )
            .unwrap();
            (vec![rep.counters], rep.time)
        }
        FactorAlgo::Window => {
            let rep = gbtrf_batch_window(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                WindowParams::auto(&dev, kl).with_parallel(policy),
            )
            .unwrap();
            (vec![rep.counters], rep.time)
        }
        _ => {
            let rep = gbtrf_batch_reference(&dev, &mut a, &mut piv, &mut info, policy).unwrap();
            // The reference design is multi-launch: only the summed time is
            // reported, so that is what we pin down.
            (Vec::new(), rep.time)
        }
    };
    FactorRun {
        factors: a.data().to_vec(),
        pivots: piv,
        info: info.as_slice().to_vec(),
        counters,
        time,
    }
}

#[test]
fn all_factor_algorithms_are_policy_invariant() {
    let a0 = random_batch(37, 48, 5, 3);
    for algo in [FactorAlgo::Fused, FactorAlgo::Window, FactorAlgo::Reference] {
        let serial = run_factor(algo, &a0, ParallelPolicy::Serial);
        for policy in POLICIES {
            let par = run_factor(algo, &a0, policy);
            let what = format!("{algo:?} under {policy:?}");
            assert_eq!(serial.factors, par.factors, "{what}: factors");
            assert_eq!(serial.pivots, par.pivots, "{what}: pivots");
            assert_eq!(serial.info, par.info, "{what}: info");
            assert_eq!(serial.counters.len(), par.counters.len());
            for (s, p) in serial.counters.iter().zip(par.counters.iter()) {
                assert_counters_bitwise(s, p, &what);
            }
            assert_time_bitwise(serial.time, par.time, &what);
        }
    }
}

/// Both solve paths: the blocked no-transpose/transpose kernels and the
/// column-wise reference solve.
#[test]
fn all_solve_paths_are_policy_invariant() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku, nrhs) = (23usize, 40usize, 4usize, 3usize, 3usize);
    let mut fac = random_batch(batch, n, kl, ku);
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = gbtrf_batch_fused(
        &dev,
        &mut fac,
        &mut piv,
        &mut info,
        FusedParams::auto(&dev, kl),
    )
    .unwrap();
    assert!(info.all_ok());
    let l = fac.layout();
    let b0 = random_rhs(batch, n, nrhs);

    // Blocked no-transpose.
    let mut b_serial = b0.clone();
    let rep0 = gbtrs_batch_blocked(
        &dev,
        &l,
        fac.data(),
        &piv,
        &mut b_serial,
        SolveParams::auto(&dev, kl),
    )
    .unwrap();
    for policy in POLICIES {
        let mut b = b0.clone();
        let params = SolveParams::auto(&dev, kl).with_parallel(policy);
        let rep = gbtrs_batch_blocked(&dev, &l, fac.data(), &piv, &mut b, params).unwrap();
        let what = format!("blocked solve under {policy:?}");
        assert_eq!(b_serial.data(), b.data(), "{what}: solutions");
        assert_counters_bitwise(&rep0.backward.counters, &rep.backward.counters, &what);
        assert_counters_bitwise(
            &rep0.forward.as_ref().unwrap().counters,
            &rep.forward.as_ref().unwrap().counters,
            &what,
        );
        assert_time_bitwise(rep0.time(), rep.time(), &what);
    }

    // Blocked transpose.
    let mut bt_serial = b0.clone();
    let rep0 = gbtrs_batch_blocked_trans(
        &dev,
        &l,
        fac.data(),
        &piv,
        &mut bt_serial,
        SolveParams::auto(&dev, kl),
    )
    .unwrap();
    for policy in POLICIES {
        let mut b = b0.clone();
        let params = SolveParams::auto(&dev, kl).with_parallel(policy);
        let rep = gbtrs_batch_blocked_trans(&dev, &l, fac.data(), &piv, &mut b, params).unwrap();
        let what = format!("transpose solve under {policy:?}");
        assert_eq!(bt_serial.data(), b.data(), "{what}: solutions");
        assert_counters_bitwise(&rep0.ut.counters, &rep.ut.counters, &what);
        assert_time_bitwise(rep0.time(), rep.time(), &what);
    }

    // Column-wise reference solve.
    let mut bc_serial = b0.clone();
    let rep0 = gbtrs_batch_cols(
        &dev,
        &l,
        fac.data(),
        &piv,
        &mut bc_serial,
        ParallelPolicy::Serial,
    )
    .unwrap();
    for policy in POLICIES {
        let mut b = b0.clone();
        let rep = gbtrs_batch_cols(&dev, &l, fac.data(), &piv, &mut b, policy).unwrap();
        let what = format!("cols solve under {policy:?}");
        assert_eq!(bc_serial.data(), b.data(), "{what}: solutions");
        assert_time_bitwise(rep0.time, rep.time, &what);
    }
}

/// The fused factorize-and-solve kernel (§7) under every policy, including
/// its singular-system early-out.
#[test]
fn fused_gbsv_is_policy_invariant() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (19usize, 32usize, 2usize, 3usize);
    let a0 = {
        let mut a = random_batch(batch, n, kl, ku);
        let mut m = a.matrix_mut(7);
        m.set(0, 0, 0.0);
        m.set(1, 0, 0.0);
        m.set(2, 0, 0.0);
        a
    };
    let b0 = random_rhs(batch, n, 1);

    let run = |policy: ParallelPolicy| {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = gbsv_batch_fused(&dev, &mut a, &mut piv, &mut b, &mut info, 32, policy).unwrap();
        (a, b, piv, info.as_slice().to_vec(), rep.counters, rep.time)
    };
    let serial = run(ParallelPolicy::Serial);
    assert_eq!(serial.3[7], 1, "seeded singular system must be flagged");
    for policy in POLICIES {
        let par = run(policy);
        let what = format!("fused gbsv under {policy:?}");
        assert_eq!(serial.0.data(), par.0.data(), "{what}: factors");
        assert_eq!(serial.1.data(), par.1.data(), "{what}: solutions");
        assert_eq!(serial.2, par.2, "{what}: pivots");
        assert_eq!(serial.3, par.3, "{what}: info");
        assert_counters_bitwise(&serial.4, &par.4, &what);
        assert_time_bitwise(serial.5, par.5, &what);
    }
}

/// End to end through the dispatch layer: `GbsvOptions::parallel` must not
/// change a single bit of the solver output.
#[test]
fn dispatch_parallel_option_is_bitwise_invisible() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (17usize, 100usize, 3usize, 2usize);
    let a0 = random_batch(batch, n, kl, ku);
    let b0 = random_rhs(batch, n, 2);

    let run = |parallel: Option<ParallelPolicy>| {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let opts = GbsvOptions {
            parallel,
            ..Default::default()
        };
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
        (a, b, piv, info.as_slice().to_vec(), rep.time)
    };
    let serial = run(None);
    for policy in POLICIES {
        let par = run(Some(policy));
        let what = format!("dgbsv_batch under {policy:?}");
        assert_eq!(serial.0.data(), par.0.data(), "{what}: factors");
        assert_eq!(serial.1.data(), par.1.data(), "{what}: solutions");
        assert_eq!(serial.2, par.2, "{what}: pivots");
        assert_eq!(serial.3, par.3, "{what}: info");
        assert_time_bitwise(serial.4, par.4, &what);
    }
}

/// The resident engine against per-launch under 1/2/8 workers: factors,
/// solutions, pivots, info, counters and hazard reports are bitwise
/// identical (a singular lane included); the only difference is the
/// pricing — each launch trades the cold overhead for the warm one.
#[test]
fn resident_engine_soak_is_bitwise_identical_to_per_launch() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (41usize, 32usize, 2usize, 3usize);
    let a0 = {
        let mut a = random_batch(batch, n, kl, ku);
        let mut m = a.matrix_mut(11);
        m.set(0, 0, 0.0);
        m.set(1, 0, 0.0);
        m.set(2, 0, 0.0);
        a
    };
    let b0 = random_rhs(batch, n, 1);
    let run = |engine: EngineMode, policy: ParallelPolicy| {
        with_engine_mode(engine, || {
            let mut a = a0.clone();
            let mut b = b0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep =
                gbsv_batch_fused(&dev, &mut a, &mut piv, &mut b, &mut info, 32, policy).unwrap();
            (a, b, piv, info.as_slice().to_vec(), rep)
        })
    };
    for policy in POLICIES {
        let cold = run(EngineMode::PerLaunch, policy);
        let warm = run(EngineMode::Resident, policy);
        let what = format!("resident soak under {policy:?}");
        assert_eq!(cold.3[11], 1, "{what}: seeded singular lane flagged");
        assert_eq!(cold.0.data(), warm.0.data(), "{what}: factors");
        assert_eq!(cold.1.data(), warm.1.data(), "{what}: solutions");
        assert_eq!(cold.2, warm.2, "{what}: pivots");
        assert_eq!(cold.3, warm.3, "{what}: info");
        assert_counters_bitwise(&cold.4.counters, &warm.4.counters, &what);
        assert_eq!(cold.4.hazards, warm.4.hazards, "{what}: hazards");
        // Exactly one fused launch: the warm engine saves one overhead swap.
        let delta = dev.launch_overhead_s - dev.warm_launch_overhead_s;
        let diff = cold.4.time.secs() - warm.4.time.secs();
        assert!(
            (diff - delta).abs() < 1e-18,
            "{what}: expected {delta:.3e}s warm saving, got {diff:.3e}s"
        );
    }
}

/// The poisoned-batch bisect-retry through the serving layer, on a *real*
/// resident [`gbatch::serve::GpuBackend`]: a fault-injecting wrapper
/// refuses any batch containing one poisoned id, the server bisects until
/// the healthy halves run on the GPU and the stubborn singleton is rescued
/// on the CPU — and the whole retry cascade is bitwise identical between
/// engine modes at every worker count.
#[test]
fn resident_serve_bisect_retry_is_bitwise_identical_to_per_launch() {
    use gbatch::cpu::CpuSpec;
    use gbatch::gpu_sim::multi::DeviceGroup;
    use gbatch::serve::{
        BackendError, BackendKind, BatchSolution, CpuBackend, FlushPolicy, GpuBackend, Server,
        ServerConfig, ShapeKey, SolveBackend, SolveRequest, SolveStatus,
    };

    struct FaultOn {
        inner: GpuBackend,
        bad: u64,
    }
    impl SolveBackend for FaultOn {
        fn kind(&self) -> BackendKind {
            self.inner.kind()
        }
        fn solve(
            &self,
            shape: &ShapeKey,
            reqs: &[SolveRequest],
        ) -> Result<BatchSolution, BackendError> {
            if reqs.iter().any(|r| r.id == self.bad) {
                return Err(BackendError::Fault("poisoned batch".into()));
            }
            self.inner.solve(shape, reqs)
        }
    }

    let shape = ShapeKey::gbsv(16, 2, 3, 1);
    let l = shape.layout().unwrap();
    let request = |id: u64| {
        let mut ab = vec![0.0; shape.ab_len()];
        {
            let mut m = gbatch::core::BandMatrixMut {
                layout: l,
                data: &mut ab,
            };
            for j in 0..l.n {
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    m.set(
                        i,
                        j,
                        ((i * 7 + j * 3 + id as usize) % 5) as f64 * 0.1 + 0.05,
                    );
                }
                let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
                m.set(j, j, sum + 1.0);
            }
        }
        SolveRequest {
            id,
            shape,
            ab,
            rhs: vec![1.0; shape.rhs_len()],
            submitted_s: id as f64 * 1e-6,
            deadline_s: 1.0,
        }
    };

    let run = |engine: EngineMode, workers: usize| {
        let gpu = GpuBackend::new(
            DeviceGroup::new(vec![DeviceSpec::h100_pcie()]),
            ParallelPolicy::threads(workers),
        )
        .with_engine(engine);
        let mut s = Server::new(
            ServerConfig {
                queue_capacity: 64,
                policy: FlushPolicy::default().with_target_batch(16),
            },
            Box::new(FaultOn { inner: gpu, bad: 9 }),
            Box::new(CpuBackend::new(CpuSpec::xeon_gold_6140())),
        );
        for id in 0..16u64 {
            s.submit(request(id)).unwrap();
        }
        let mut resp = s.take_responses();
        resp.sort_by_key(|r| r.id);
        (resp, s.report())
    };
    for workers in [1usize, 2, 8] {
        let cold = run(EngineMode::PerLaunch, workers);
        let warm = run(EngineMode::Resident, workers);
        let what = format!("serve bisect under {workers} workers");
        assert_eq!(cold.0.len(), 16, "{what}: all requests answered");
        assert!(cold.1.bisect_retries >= 1, "{what}: bisect happened");
        assert_eq!(cold.1.bisect_retries, warm.1.bisect_retries, "{what}");
        assert_eq!(cold.1.fallback_singletons, 1, "{what}");
        assert_eq!(warm.1.fallback_singletons, 1, "{what}");
        for (c, w) in cold.0.iter().zip(&warm.0) {
            assert_eq!(c.id, w.id, "{what}");
            assert_eq!(c.status, SolveStatus::Solved, "{what}: lane {}", c.id);
            assert_eq!(c.status, w.status, "{what}: lane {}", c.id);
            assert_eq!(c.backend, w.backend, "{what}: lane {}", c.id);
            assert_eq!(c.x, w.x, "{what}: lane {} solutions differ", c.id);
            let expect = if c.id == 9 {
                BackendKind::Cpu
            } else {
                BackendKind::Gpu
            };
            assert_eq!(c.backend, expect, "{what}: lane {}", c.id);
        }
    }
}

#[test]
fn solve_respects_transpose_sanity() {
    // Guard: the transpose path above really is a different code path.
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (3usize, 16usize, 2usize, 1usize);
    let mut fac = random_batch(batch, n, kl, ku);
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = gbtrf_batch_fused(
        &dev,
        &mut fac,
        &mut piv,
        &mut info,
        FusedParams::auto(&dev, kl),
    )
    .unwrap();
    let l = fac.layout();
    let b0 = random_rhs(batch, n, 1);
    let mut bn = b0.clone();
    let mut bt = b0.clone();
    gbtrs_batch_blocked(
        &dev,
        &l,
        fac.data(),
        &piv,
        &mut bn,
        SolveParams::auto(&dev, kl),
    )
    .unwrap();
    gbtrs_batch_blocked_trans(
        &dev,
        &l,
        fac.data(),
        &piv,
        &mut bt,
        SolveParams::auto(&dev, kl),
    )
    .unwrap();
    assert_ne!(bn.data(), bt.data());
    let _ = Transpose::Yes; // the dispatch-level route is covered elsewhere
}
