//! Proptest grid for the lane-width abstraction: every chunked
//! (SIMD-style) hot path must be **bitwise** equal to its scalar loop at
//! both precisions — the chunked sweeps only regroup independent lanes,
//! they never reassociate an accumulation. The grid deliberately draws
//! vector lengths and batch sizes that are *not* multiples of
//! [`LANE_WIDTH`] (remainder loops included) and poisons lanes into
//! singularity so the masked sweeps are exercised under every mask shape.

use gbatch::core::blas1::{axpy, scal};
use gbatch::core::blas2::{gbmv, gemv, ger};
use gbatch::core::gbtf2::gbtf2;
use gbatch::core::{
    with_lane_mode, BandBatch, BandMatrixRef, InfoArray, InterleavedBandBatch, LaneMode,
    PivotBatch, RhsBatch, Scalar, LANE_WIDTH,
};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::interleaved::{
    gbtrf_batch_interleaved, gbtrs_batch_interleaved, InterleavedParams,
};
use proptest::prelude::*;

const MODES: [LaneMode; 2] = [LaneMode::Scalar, LaneMode::Chunked];

fn cast<S: Scalar>(v: &[f64]) -> Vec<S> {
    v.iter().map(|&x| S::from_f64(x)).collect()
}

fn bits<S: Scalar>(v: &[S]) -> Vec<u64> {
    v.iter().map(|&x| x.to_f64().to_bits()).collect()
}

/// BLAS-1: `scal` then `axpy` under both lane modes, any length.
fn blas1_case<S: Scalar>(alpha: f64, xs: &[f64], ys: &[f64]) -> Vec<Vec<u64>> {
    MODES
        .iter()
        .map(|&mode| {
            with_lane_mode(mode, || {
                let mut x: Vec<S> = cast(xs);
                let mut y: Vec<S> = cast(ys);
                scal(S::from_f64(alpha), &mut x);
                axpy(S::from_f64(alpha), &x, &mut y);
                let mut out = bits(&x);
                out.extend(bits(&y));
                out
            })
        })
        .collect()
}

/// BLAS-2: band matrix-vector product, rank-one update, dense `gemv`.
fn blas2_case<S: Scalar>(n: usize, kl: usize, ku: usize, vals: &[f64]) -> Vec<Vec<u64>> {
    let a0 = BandBatch::<S>::from_fn(1, n, n, kl, ku, |_, m| {
        let mut k = 0usize;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, S::from_f64(vals[k % vals.len()] - 0.5));
                k += 1;
            }
        }
    })
    .unwrap();
    let x: Vec<S> = (0..n).map(|i| S::from_f64(vals[i % vals.len()])).collect();
    MODES
        .iter()
        .map(|&mode| {
            with_lane_mode(mode, || {
                let a = BandMatrixRef {
                    layout: a0.layout(),
                    data: a0.data(),
                };
                let mut y: Vec<S> = cast(&vec![0.25f64; n]);
                gbmv(S::from_f64(1.5), a, &x, S::from_f64(-0.5), &mut y);
                let mut dense: Vec<S> = (0..n * n)
                    .map(|k| S::from_f64(vals[k % vals.len()]))
                    .collect();
                ger(n, n, S::from_f64(0.75), &y, &x, &mut dense, n);
                let mut z: Vec<S> = cast(&vec![0.125f64; n]);
                gemv(n, n, S::ONE, &dense, n, &x, S::ZERO, &mut z);
                let mut out = bits(&y);
                out.extend(bits(&dense));
                out.extend(bits(&z));
                out
            })
        })
        .collect()
}

/// Sequential band LU (`gbtf2`): the chunked `scal`/rank-one column steps
/// against the scalar ones, optionally with a singular leading column.
fn gbtf2_case<S: Scalar>(
    n: usize,
    kl: usize,
    ku: usize,
    vals: &[f64],
    poison: bool,
) -> Vec<(Vec<u64>, Vec<i32>, i32)> {
    let a0 = BandBatch::<S>::from_fn(1, n, n, kl, ku, |_, m| {
        let mut k = 0usize;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = if poison && j == 0 {
                    0.0
                } else {
                    vals[k % vals.len()] - 0.5
                };
                m.set(i, j, S::from_f64(v));
                k += 1;
            }
        }
    })
    .unwrap();
    MODES
        .iter()
        .map(|&mode| {
            with_lane_mode(mode, || {
                let mut ab = a0.data().to_vec();
                let mut piv = vec![0i32; n];
                let code = gbtf2(&a0.layout(), &mut ab, &mut piv);
                (bits(&ab), piv, code)
            })
        })
        .collect()
}

/// One lane-mode observation of the interleaved pipeline: factor bits,
/// pivots, info codes, and solution bits.
type InterleavedObservation = (Vec<u64>, PivotBatch, Vec<i32>, Vec<u64>);

/// Interleaved factor + solve: arbitrary batch size (remainder chunks),
/// arbitrary singular-lane mask, both precisions.
fn interleaved_case<S: Scalar>(
    batch: usize,
    lanes_per_block: usize,
    vals: &[f64],
    poison: &[usize],
) -> Vec<InterleavedObservation> {
    let (n, kl, ku, nrhs) = (12usize, 2usize, 3usize, 2usize);
    let dev = DeviceSpec::h100_pcie();
    let a0 = BandBatch::<S>::from_fn(batch, n, n, kl, ku, |id, m| {
        let mut k = id * 7;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                let v = if poison.contains(&id) && j == 0 {
                    0.0
                } else {
                    vals[k % vals.len()] - 0.5
                };
                m.set(i, j, S::from_f64(v));
                k += 1;
            }
        }
    })
    .unwrap();
    let rhs0 = RhsBatch::<S>::from_fn(batch, n, nrhs, |id, i, c| {
        S::from_f64(((id * 17 + c * 5 + i) as f64 * 0.73).sin())
    })
    .unwrap();
    MODES
        .iter()
        .map(|&mode| {
            let params = InterleavedParams {
                lanes_per_block,
                ..Default::default()
            }
            .with_lane_mode(mode);
            let mut ia = InterleavedBandBatch::from_batch(&a0);
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
            let mut rhs = rhs0.clone();
            let _ = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params).unwrap();
            (
                bits(ia.data()),
                piv,
                info.as_slice().to_vec(),
                bits(rhs.data()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn blas1_chunked_is_bitwise_scalar(
        alpha in -2.0f64..2.0,
        v in proptest::collection::vec(-1.0f64..1.0, 1..3 * LANE_WIDTH + 3),
    ) {
        let ys: Vec<f64> = v.iter().map(|x| x * 0.7 + 0.01).collect();
        let f64_runs = blas1_case::<f64>(alpha, &v, &ys);
        prop_assert_eq!(&f64_runs[0], &f64_runs[1], "f64 blas1 diverged");
        let f32_runs = blas1_case::<f32>(alpha, &v, &ys);
        prop_assert_eq!(&f32_runs[0], &f32_runs[1], "f32 blas1 diverged");
    }

    #[test]
    fn blas2_chunked_is_bitwise_scalar(
        n in 1usize..3 * LANE_WIDTH + 2,
        kl in 0usize..6,
        ku in 0usize..6,
        vals in proptest::collection::vec(0.05f64..1.0, 8..32),
    ) {
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        let f64_runs = blas2_case::<f64>(n, kl, ku, &vals);
        prop_assert_eq!(&f64_runs[0], &f64_runs[1], "f64 blas2 diverged");
        let f32_runs = blas2_case::<f32>(n, kl, ku, &vals);
        prop_assert_eq!(&f32_runs[0], &f32_runs[1], "f32 blas2 diverged");
    }

    #[test]
    fn gbtf2_chunked_is_bitwise_scalar(
        n in 2usize..40,
        kl in 0usize..8,
        ku in 0usize..8,
        vals in proptest::collection::vec(0.05f64..1.0, 8..32),
        poison_sel in 0usize..2,
    ) {
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        let poison = poison_sel == 1;
        let f64_runs = gbtf2_case::<f64>(n, kl, ku, &vals, poison);
        prop_assert_eq!(&f64_runs[0], &f64_runs[1], "f64 gbtf2 diverged");
        if poison && kl > 0 {
            prop_assert!(f64_runs[0].2 > 0, "poisoned column must be flagged");
        }
        let f32_runs = gbtf2_case::<f32>(n, kl, ku, &vals, poison);
        prop_assert_eq!(&f32_runs[0], &f32_runs[1], "f32 gbtf2 diverged");
    }

    #[test]
    fn interleaved_chunked_is_bitwise_scalar(
        batch in 1usize..4 * LANE_WIDTH + 5,
        lpb_sel in 0usize..3,
        vals in proptest::collection::vec(0.05f64..1.0, 8..32),
        mask in proptest::collection::vec(0usize..37, 0..4),
    ) {
        // Lanes-per-block straddling LANE_WIDTH: below, at, and above it.
        let lpb = [LANE_WIDTH - 3, LANE_WIDTH, 2 * LANE_WIDTH + 1][lpb_sel];
        let poison: Vec<usize> = mask.iter().map(|&i| i % batch).collect();
        let f64_runs = interleaved_case::<f64>(batch, lpb, &vals, &poison);
        prop_assert_eq!(&f64_runs[0], &f64_runs[1], "f64 interleaved diverged");
        for &id in &poison {
            prop_assert!(f64_runs[0].2[id] > 0, "poisoned lane {id} must be flagged");
        }
        let f32_runs = interleaved_case::<f32>(batch, lpb, &vals, &poison);
        prop_assert_eq!(&f32_runs[0], &f32_runs[1], "f32 interleaved diverged");
    }
}
