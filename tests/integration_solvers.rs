//! Cross-crate integration tests: workloads -> kernels/CPU -> residuals.

use gbatch::core::gbtrs::Transpose;
use gbatch::core::residual::backward_error;
use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::cpu::{cpu_gbsv_batch, CpuSpec};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::dispatch::{dgbsv_batch, dgbtrf_batch, dgbtrs_batch, FactorAlgo, GbsvOptions};
use gbatch::tuning::{sweep_band, SweepConfig};
use gbatch::workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn system(batch: usize, n: usize, kl: usize, ku: usize, nrhs: usize) -> (BandBatch, RhsBatch) {
    let mut rng = StdRng::seed_from_u64((n * 31 + kl * 7 + ku * 3 + nrhs) as u64);
    let a = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
    let b = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
        ((id + i * 3 + c * 5) as f64 * 0.17).sin()
    })
    .unwrap();
    (a, b)
}

/// Full pipeline on both GPUs and the CPU, for both paper band shapes and
/// both RHS counts: everyone solves, everyone agrees with the inputs.
#[test]
fn all_platforms_solve_paper_configurations() {
    for (kl, ku) in [(2usize, 3usize), (10, 7)] {
        for nrhs in [1usize, 10] {
            let (batch, n) = (24, 100);
            let (a0, b0) = system(batch, n, kl, ku, nrhs);

            for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
                let (mut a, mut b) = (a0.clone(), b0.clone());
                let mut piv = PivotBatch::new(batch, n, n);
                let mut info = InfoArray::new(batch);
                let _ = dgbsv_batch(
                    &dev,
                    &mut a,
                    &mut piv,
                    &mut b,
                    &mut info,
                    &GbsvOptions::default(),
                )
                .unwrap();
                assert!(info.all_ok());
                for id in 0..batch {
                    for c in 0..nrhs {
                        let x = &b.block(id)[c * n..(c + 1) * n];
                        let r = &b0.block(id)[c * n..(c + 1) * n];
                        let berr = backward_error(a0.matrix(id), x, r);
                        assert!(berr < 1e-11, "{}: berr {berr:.2e}", dev.name);
                    }
                }
            }

            let cpu = CpuSpec::xeon_gold_6140();
            let (mut a, mut b) = (a0.clone(), b0.clone());
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut b, &mut info);
            assert!(info.all_ok());
            for id in 0..batch {
                let berr = backward_error(a0.matrix(id), &b.block(id)[..n], &b0.block(id)[..n]);
                assert!(berr < 1e-11, "cpu berr {berr:.2e}");
            }
        }
    }
}

/// GPU and CPU paths produce bit-for-bit identical factors, pivots and
/// solutions: both execute the same LAPACK operation order.
#[test]
fn gpu_and_cpu_agree_bitwise() {
    let (batch, n, kl, ku) = (8, 64, 3, 2);
    let (a0, b0) = system(batch, n, kl, ku, 1);

    let dev = DeviceSpec::h100_pcie();
    let (mut ag, mut bg) = (a0.clone(), b0.clone());
    let mut pg = PivotBatch::new(batch, n, n);
    let mut ig = InfoArray::new(batch);
    // Separate factor+solve (disable the fused driver so both sides run
    // the same decomposition-then-substitution sequence).
    let opts = GbsvOptions {
        allow_fused_gbsv: Some(false),
        ..Default::default()
    };
    let _ = dgbsv_batch(&dev, &mut ag, &mut pg, &mut bg, &mut ig, &opts).unwrap();

    let cpu = CpuSpec::xeon_gold_6140();
    let (mut ac, mut bc) = (a0.clone(), b0.clone());
    let mut pc = PivotBatch::new(batch, n, n);
    let mut ic = InfoArray::new(batch);
    cpu_gbsv_batch(&cpu, &mut ac, &mut pc, &mut bc, &mut ic);

    assert_eq!(ag.data(), ac.data(), "factors");
    assert_eq!(pg, pc, "pivots");
    assert_eq!(bg.data(), bc.data(), "solutions");
}

/// Factor once, solve many times with different RHS batches (the LAPACK
/// GBTRF/GBTRS split the paper's interface exposes).
#[test]
fn factor_once_solve_many() {
    let (batch, n, kl, ku) = (10, 80, 2, 3);
    let (a0, _) = system(batch, n, kl, ku, 1);
    let dev = DeviceSpec::mi250x_gcd();
    let mut a = a0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default()).unwrap();
    assert!(info.all_ok());
    let l = a.layout();
    for round in 0..3 {
        let mut b = RhsBatch::from_fn(batch, n, 2, |id, i, c| {
            ((round * 100 + id * 10 + i + c) as f64 * 0.31).cos()
        })
        .unwrap();
        let b0 = b.clone();
        let _ = dgbtrs_batch(
            &dev,
            Transpose::No,
            &l,
            a.data(),
            &piv,
            &mut b,
            &GbsvOptions::default(),
        )
        .unwrap();
        for id in 0..batch {
            for c in 0..2 {
                let x = &b.block(id)[c * n..(c + 1) * n];
                let r = &b0.block(id)[c * n..(c + 1) * n];
                assert!(backward_error(a0.matrix(id), x, r) < 1e-11);
            }
        }
    }
}

/// Tuned window parameters from the sweep must solve correctly and not be
/// slower than untuned defaults (in modeled time).
#[test]
fn tuned_parameters_help_or_match() {
    let dev = DeviceSpec::mi250x_gcd();
    let (kl, ku) = (10usize, 7usize);
    let entry = sweep_band(&dev, &SweepConfig::default(), kl, ku).unwrap();
    let tuned = gbatch::kernels::window::WindowParams {
        nb: entry.nb,
        threads: entry.threads,
        ..Default::default()
    };
    let auto = gbatch::kernels::window::WindowParams::auto(&dev, kl);

    let (batch, n) = (32, 256);
    let (a0, _) = system(batch, n, kl, ku, 1);
    let mut times = Vec::new();
    for params in [tuned, auto] {
        let mut a = a0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep =
            gbatch::kernels::window::gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info, params)
                .unwrap();
        assert!(info.all_ok());
        times.push(rep.time.secs());
    }
    assert!(
        times[0] <= times[1] * 1.05,
        "tuned {:.2e}s should not lose to default {:.2e}s",
        times[0],
        times[1]
    );
}

/// The three forced factorization algorithms and the CPU all agree on a
/// workload from every generator.
#[test]
fn workload_generators_run_through_every_algorithm() {
    let mut rng = StdRng::seed_from_u64(5);
    let dev = DeviceSpec::h100_pcie();

    let pele = gbatch::workloads::pele_batch(
        &mut rng,
        12,
        &gbatch::workloads::pele::PeleConfig::default(),
    );
    let xgc =
        gbatch::workloads::xgc_batch(&mut rng, 12, &gbatch::workloads::xgc::XgcConfig::default());
    let react = gbatch::workloads::react_eval_batch(
        &mut rng,
        12,
        &gbatch::workloads::sundials::ReactEvalConfig::default(),
    );

    for a0 in [pele, xgc, react] {
        let n = a0.layout().n;
        let batch = a0.batch();
        let mut reference: Option<(Vec<f64>, PivotBatch)> = None;
        for algo in [FactorAlgo::Fused, FactorAlgo::Window, FactorAlgo::Reference] {
            let mut a = a0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let opts = GbsvOptions {
                algo,
                ..Default::default()
            };
            let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
            assert!(info.all_ok());
            match &reference {
                None => reference = Some((a.data().to_vec(), piv)),
                Some((fac, pv)) => {
                    assert_eq!(a.data(), &fac[..], "factors differ for {algo:?}");
                    assert_eq!(&piv, pv, "pivots differ for {algo:?}");
                }
            }
        }
    }
}
