//! Argument-validation error paths of the batched `gbtrf`/`gbtrs`/`gbsv`
//! interface: every malformed input is rejected with a typed error
//! (`BandError` at the container boundary, `LaunchError` at the launch
//! boundary) — never a silent wrong answer, and never an untyped panic.

use gbatch::core::error::BandError;
use gbatch::core::layout::{BandLayout, BandStorage};
use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::engine::validate;
use gbatch::gpu_sim::{DeviceSpec, LaunchConfig, LaunchError};
use gbatch::kernels::dispatch::{dgbsv_batch, dgbtrf_batch, GbsvOptions};

// ---------------------------------------------------------------- ldab --

#[test]
fn gbtrf_rejects_ldab_below_factor_minimum() {
    // Factor storage needs 2*kl + ku + 1 = 8 rows; 7 must fail with the
    // exact requirement in the error.
    let err = BandLayout::with_ldab(9, 9, 2, 3, 7, BandStorage::Factor).unwrap_err();
    assert_eq!(
        err,
        BandError::LdabTooSmall {
            ldab: 7,
            required: 8
        }
    );
    // Pure storage needs only kl + ku + 1 = 6.
    assert!(BandLayout::with_ldab(9, 9, 2, 3, 6, BandStorage::Pure).is_ok());
    let err = BandLayout::with_ldab(9, 9, 2, 3, 5, BandStorage::Pure).unwrap_err();
    assert_eq!(
        err,
        BandError::LdabTooSmall {
            ldab: 5,
            required: 6
        }
    );
}

// ------------------------------------------------------------- kl / ku --

#[test]
fn bandwidths_must_fit_inside_the_matrix() {
    // kl >= m: more sub-diagonals than rows below the first.
    let err = BandLayout::factor(4, 8, 4, 1).unwrap_err();
    assert!(matches!(err, BandError::BadDimension { arg: "kl/ku", .. }));
    // ku >= n symmetric case.
    let err = BandLayout::factor(8, 4, 1, 4).unwrap_err();
    assert!(matches!(err, BandError::BadDimension { arg: "kl/ku", .. }));
    // The container constructors forward the same rejection.
    assert!(BandBatch::<f64>::zeros(3, 4, 4, 4, 1).is_err());
    assert!(BandBatch::<f64>::zeros(3, 4, 4, 1, 4).is_err());
    // Boundary: kl = m - 1, ku = n - 1 is the widest legal band.
    assert!(BandLayout::factor(4, 4, 3, 3).is_ok());
}

// --------------------------------------------------------- zero batch --

#[test]
fn zero_batch_is_rejected_by_every_container() {
    assert!(matches!(
        BandBatch::<f64>::zeros(0, 9, 9, 2, 3).unwrap_err(),
        BandError::BadDimension { arg: "batch", .. }
    ));
    let layout = BandLayout::factor(9, 9, 2, 3).unwrap();
    assert!(BandBatch::<f64>::zeros_with_layout(layout, 0).is_err());
    assert!(matches!(
        RhsBatch::<f64>::zeros(0, 9, 1).unwrap_err(),
        BandError::BadDimension { .. }
    ));
}

// ------------------------------------------------------------ nrhs = 0 --

#[test]
fn zero_nrhs_is_rejected_by_the_rhs_container() {
    assert!(matches!(
        RhsBatch::<f64>::zeros(4, 9, 0).unwrap_err(),
        BandError::BadDimension { .. }
    ));
    assert!(RhsBatch::<f64>::zeros_with_ldb(4, 9, 0, 9).is_err());
    // n = 0 is rejected by the same gate.
    assert!(RhsBatch::<f64>::zeros(4, 0, 1).is_err());
}

// -------------------------------------------------- launch-level gates --

#[test]
fn oversized_shared_request_is_a_typed_launch_error() {
    let dev = DeviceSpec::h100_pcie();
    let cfg = LaunchConfig::new(32, dev.max_smem_per_block + 1);
    match validate(&dev, &cfg) {
        Err(LaunchError::SharedMemExceeded { requested, limit }) => {
            assert_eq!(requested, dev.max_smem_per_block + 1);
            assert_eq!(limit, dev.max_smem_per_block);
        }
        other => panic!("expected SharedMemExceeded, got {other:?}"),
    }
}

#[test]
fn bad_thread_count_is_a_typed_launch_error() {
    let dev = DeviceSpec::h100_pcie();
    assert!(matches!(
        validate(&dev, &LaunchConfig::new(0, 0)),
        Err(LaunchError::BadThreadCount { .. })
    ));
    assert!(matches!(
        validate(&dev, &LaunchConfig::new(dev.max_threads_per_block + 1, 0)),
        Err(LaunchError::BadThreadCount { .. })
    ));
}

// ------------------------------------------- well-formed inputs still run --

#[test]
fn minimal_valid_arguments_reach_the_kernels() {
    // The smallest arguments that pass every gate must factor and solve:
    // batch 1, n 1, kl = ku = 0, nrhs 1.
    let dev = DeviceSpec::h100_pcie();
    let mut a = BandBatch::from_fn(1, 1, 1, 0, 0, |_, m| m.set(0, 0, 2.0)).unwrap();
    let mut piv = PivotBatch::new(1, 1, 1);
    let mut rhs = RhsBatch::from_fn(1, 1, 1, |_, _, _| 6.0).unwrap();
    let mut info = InfoArray::new(1);
    let _ = dgbsv_batch(
        &dev,
        &mut a,
        &mut piv,
        &mut rhs,
        &mut info,
        &GbsvOptions::default(),
    )
    .unwrap();
    assert!(info.all_ok());
    assert_eq!(rhs.data()[0], 3.0);

    // And the factor-only path on a fresh batch.
    let mut a = BandBatch::from_fn(1, 1, 1, 0, 0, |_, m| m.set(0, 0, 2.0)).unwrap();
    let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default()).unwrap();
    assert!(info.all_ok());
}
