//! Interleaved-layout equivalence suite: converter round-trips, bitwise
//! cross-algorithm agreement with the sequential `gbtf2`/`gbtrs` ground
//! truth (mixed singular batches included), and invariance under the
//! parallel host executor (1/2/8 workers).

use gbatch::core::gbtf2::gbtf2;
use gbatch::core::gbtrs::{gbtrs, Transpose};
use gbatch::core::{BandBatch, InfoArray, InterleavedBandBatch, PivotBatch, RhsBatch};
use gbatch::gpu_sim::{DeviceSpec, ParallelPolicy};
use gbatch::kernels::dispatch::{dgbsv_batch, ChosenAlgo, GbsvOptions, MatrixLayout};
use gbatch::kernels::interleaved::{
    deinterleave_launch, gbtrf_batch_interleaved, gbtrs_batch_interleaved, interleave_launch,
    InterleavedParams,
};
use proptest::prelude::*;

/// Every policy the suite must be invariant under.
fn policies() -> [ParallelPolicy; 4] {
    [
        ParallelPolicy::Serial,
        ParallelPolicy::threads(1),
        ParallelPolicy::threads(2),
        ParallelPolicy::threads(8),
    ]
}

fn filled_batch(batch: usize, n: usize, kl: usize, ku: usize, seed: f64) -> BandBatch {
    let mut v = seed;
    BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 1.87 + 0.23).fract();
                m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
    })
    .unwrap()
}

/// Zero the whole structural column `col` of system `id` — the update into
/// that column multiplies by U entries that are themselves zero, so the
/// factorization must flag exactly `col + 1` (1-based).
fn make_singular(a: &mut BandBatch, id: usize, col: usize) {
    let mut m = a.matrix_mut(id);
    let (s, e) = m.layout.col_rows(col);
    for i in s..e {
        m.set(i, col, 0.0);
    }
}

/// Sequential ground truth per matrix.
fn gbtf2_oracle(a: &BandBatch) -> (Vec<Vec<f64>>, Vec<Vec<i32>>, Vec<i32>) {
    let l = a.layout();
    let per = l.m.min(l.n);
    let mut fs = Vec::new();
    let mut ps = Vec::new();
    let mut is = Vec::new();
    for id in 0..a.batch() {
        let mut ab = a.matrix(id).data.to_vec();
        let mut p = vec![0i32; per];
        is.push(gbtf2(&l, &mut ab, &mut p));
        fs.push(ab);
        ps.push(p);
    }
    (fs, ps, is)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Converter round-trip is lossless bit-for-bit: column-major ->
    /// interleaved -> column-major is the identity, both through the plain
    /// converters and through the modeled pack/unpack launches.
    #[test]
    fn layout_roundtrip_is_lossless(
        n in 1usize..40,
        kl in 0usize..6,
        ku in 0usize..6,
        batch in 1usize..20,
        seed in 0.0f64..1.0,
    ) {
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        let a0 = filled_batch(batch, n, kl, ku, seed);
        let packed = InterleavedBandBatch::from_batch(&a0);
        prop_assert_eq!(packed.to_batch().data(), a0.data());

        let dev = DeviceSpec::h100_pcie();
        let params = InterleavedParams::auto(&dev, &a0.layout(), 0);
        let (packed2, _) = interleave_launch(&dev, &a0, params).unwrap();
        prop_assert_eq!(packed2.data(), packed.data());
        let (back, _) = deinterleave_launch(&dev, &packed2, params).unwrap();
        prop_assert_eq!(back.data(), a0.data());
    }

    /// The interleaved factorization is bitwise-identical to the
    /// sequential `gbtf2` on every lane for arbitrary shapes and lane
    /// geometries.
    #[test]
    fn interleaved_factor_matches_gbtf2(
        n in 2usize..32,
        kl in 0usize..5,
        ku in 0usize..5,
        batch in 1usize..16,
        lanes in 1usize..24,
        seed in 0.0f64..1.0,
    ) {
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        let dev = DeviceSpec::h100_pcie();
        let a0 = filled_batch(batch, n, kl, ku, seed);
        let (fs, ps, is) = gbtf2_oracle(&a0);

        let mut ia = InterleavedBandBatch::from_batch(&a0);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let params = InterleavedParams {
            lanes_per_block: lanes,
            ..InterleavedParams::auto(&dev, &a0.layout(), 0)
        };
        let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        let back = ia.to_batch();
        for id in 0..batch {
            prop_assert_eq!(back.matrix(id).data, &fs[id][..], "factors, lane {}", id);
            prop_assert_eq!(piv.pivots(id), &ps[id][..], "pivots, lane {}", id);
            prop_assert_eq!(info.get(id), is[id], "info, lane {}", id);
        }
    }
}

/// Mixed singular/healthy batch: the interleaved factorization matches
/// `gbtf2` bit-for-bit on *every* lane — factors, pivots and 1-based info
/// codes, singular lanes included — under serial and parallel execution.
#[test]
fn mixed_singular_batch_is_bitwise_identical_under_all_policies() {
    let dev = DeviceSpec::h100_pcie();
    for (n, kl, ku) in [(24usize, 2usize, 3usize), (40, 5, 1), (17, 0, 4)] {
        let batch = 9;
        let mut a0 = filled_batch(batch, n, kl, ku, 0.61);
        make_singular(&mut a0, 1, 4);
        make_singular(&mut a0, 4, 0);
        make_singular(&mut a0, 8, n - 1);
        let (fs, ps, is) = gbtf2_oracle(&a0);
        assert_eq!(
            is.iter().filter(|&&i| i > 0).count(),
            3,
            "three singular lanes by construction"
        );

        for policy in policies() {
            let mut ia = InterleavedBandBatch::from_batch(&a0);
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let params = InterleavedParams::auto(&dev, &a0.layout(), 0).with_parallel(policy);
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
            let back = ia.to_batch();
            for id in 0..batch {
                assert_eq!(
                    back.matrix(id).data,
                    &fs[id][..],
                    "{policy:?} n {n}: factors, lane {id}"
                );
                assert_eq!(piv.pivots(id), &ps[id][..], "{policy:?} n {n}: pivots {id}");
                assert_eq!(info.get(id), is[id], "{policy:?} n {n}: info {id}");
            }
        }
    }
}

/// The interleaved triangular solve matches the sequential `gbtrs` on
/// every healthy lane bit-for-bit and leaves singular lanes' RHS
/// untouched, under every policy.
#[test]
fn interleaved_solve_matches_gbtrs_and_masks_singular_lanes() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku, nrhs) = (7usize, 30usize, 3usize, 2usize, 2usize);
    let mut a0 = filled_batch(batch, n, kl, ku, 0.43);
    make_singular(&mut a0, 2, 10);
    let l = a0.layout();
    let (fs, ps, is) = gbtf2_oracle(&a0);
    let b0 =
        RhsBatch::from_fn(batch, n, nrhs, |id, i, k| (id * 100 + i * nrhs + k) as f64).unwrap();

    // Sequential reference solutions for the healthy lanes.
    let mut want = Vec::new();
    for id in 0..batch {
        let mut b = b0.block(id).to_vec();
        if is[id] == 0 {
            gbtrs(Transpose::No, &l, &fs[id], &ps[id], &mut b, n, nrhs);
        }
        want.push(b);
    }

    for policy in policies() {
        let mut ia = InterleavedBandBatch::from_batch(&a0);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let params = InterleavedParams::auto(&dev, &l, nrhs).with_parallel(policy);
        let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        let mut b = b0.clone();
        let _ = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut b, &info, params).unwrap();
        for id in 0..batch {
            if is[id] == 0 {
                assert_eq!(
                    b.block(id),
                    &want[id][..],
                    "{policy:?}: solution, lane {id}"
                );
            } else {
                assert_eq!(b.block(id), b0.block(id), "{policy:?}: RHS untouched, {id}");
            }
        }
    }
}

/// Dispatch-level cross-layout agreement on a mixed singular batch: the
/// forced interleaved `dgbsv` produces the same factors, pivots, info
/// codes and solutions as the forced column-major path, under every
/// policy.
#[test]
fn dispatch_layouts_agree_on_mixed_singular_batches() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku, nrhs) = (8usize, 36usize, 2usize, 2usize, 1usize);
    let mut a0 = filled_batch(batch, n, kl, ku, 0.77);
    make_singular(&mut a0, 3, 6);
    let b0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, _| (id + i + 1) as f64).unwrap();

    let run = |layout: MatrixLayout, policy: ParallelPolicy| {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        // Disable the single-kernel fused GBSV so the column-major side
        // goes through the same factor-then-solve shape (the augmented
        // [A|B] kernel stores no separate factors to compare against).
        let opts = GbsvOptions {
            layout,
            parallel: Some(policy),
            allow_fused_gbsv: Some(false),
            ..Default::default()
        };
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
        (a, piv, b, info, rep.algo)
    };

    let (ca, cp, cb, ci, _) = run(MatrixLayout::ColumnMajor, ParallelPolicy::Serial);
    assert_eq!(ci.failures(), vec![3]);
    for policy in policies() {
        let (ia, ip, ib, ii, algo) = run(MatrixLayout::Interleaved, policy);
        assert_eq!(algo, ChosenAlgo::Interleaved);
        assert_eq!(ii, ci, "{policy:?}: info codes");
        assert_eq!(ip, cp, "{policy:?}: pivots");
        for id in 0..batch {
            if ci.get(id) == 0 {
                assert_eq!(
                    ia.matrix(id).data,
                    ca.matrix(id).data,
                    "{policy:?}: factors, lane {id}"
                );
                assert_eq!(
                    ib.block(id),
                    cb.block(id),
                    "{policy:?}: solution, lane {id}"
                );
            } else {
                assert_eq!(
                    ib.block(id),
                    b0.block(id),
                    "{policy:?}: RHS untouched, {id}"
                );
            }
        }
    }
}
