//! Closed-loop soak test of the serving layer: 10 000 requests over four
//! shape buckets, replayed under three host parallel policies.
//!
//! Checks the service's hard conservation and determinism contracts:
//!
//! - every admitted request is answered exactly once (no loss, no
//!   duplication), across all four shape buckets;
//! - poisoned (exactly singular) requests are flagged per-lane without
//!   harming batchmates;
//! - answers are *correct* (small backward residual on a sample);
//! - responses and the full metrics report are bitwise-identical under
//!   `ParallelPolicy::Serial`, `threads(2)`, and `threads(8)` — the
//!   serving-layer extension of the workspace's kernel determinism
//!   guarantee;
//! - the served schedule's total busy time beats pricing the same traffic
//!   as per-request `simulate_streams` launches (the Figure 1 economics,
//!   now at the service level).

use gbatch::cpu::model::{gbtrf_bytes, gbtrf_flops, gbtrs_bytes, gbtrs_flops};
use gbatch::cpu::CpuSpec;
use gbatch::gpu_sim::multi::DeviceGroup;
use gbatch::gpu_sim::stream::simulate_streams;
use gbatch::gpu_sim::{DeviceSpec, KernelCounters, LaunchConfig, ParallelPolicy};
use gbatch::serve::{
    FlushPolicy, ServeReport, Server, ServerConfig, SolveRequest, SolveResponse, SolveStatus,
};
use gbatch::workloads::{poisson_traffic, Arrival, ShapeMix, TrafficConfig};
use gbatch_core::ShapeKey;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const N_REQUESTS: usize = 10_000;
const POISON_EVERY: usize = 500;

/// Four small shape buckets (soak iterates thousands of solves in debug
/// builds, so the shapes are kept lean; the bucket structure — not the
/// matrix order — is what this test exercises).
fn soak_traffic() -> TrafficConfig {
    TrafficConfig {
        rate_hz: 2.0e5,
        deadline_s: 2.0e-3,
        mix: vec![
            ShapeMix {
                shape: ShapeKey::gbsv(24, 2, 2, 1),
                weight: 4.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(32, 3, 3, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(16, 1, 2, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(20, 1, 1, 2),
                weight: 1.0,
            },
        ],
        poison_every: Some(POISON_EVERY),
    }
}

fn arrivals() -> Vec<Arrival> {
    poisson_traffic(&mut StdRng::seed_from_u64(99), N_REQUESTS, &soak_traffic())
}

fn run_soak(policy: ParallelPolicy) -> (Vec<SolveResponse>, ServeReport) {
    let mut server = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        policy,
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    );
    for a in arrivals() {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab,
                rhs: a.rhs,
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("soak traffic fits the admission queue");
    }
    server.drain();
    let mut responses = server.take_responses();
    responses.sort_by_key(|r| r.id);
    (responses, server.report())
}

#[test]
fn soak_10k_requests_conserved_correct_and_deterministic() {
    let traffic = arrivals();
    let (responses, report) = run_soak(ParallelPolicy::Serial);

    // Conservation: every request answered exactly once.
    assert_eq!(responses.len(), N_REQUESTS, "no lost responses");
    for (k, r) in responses.iter().enumerate() {
        assert_eq!(r.id, k as u64, "no duplicated or missing ids");
    }
    assert!(report.is_conserved());
    assert_eq!(report.rejected, 0);
    assert_eq!(report.timed_out, 0, "infinite timeout slack drops nothing");

    // All four shape buckets saw traffic.
    let mut by_shape: BTreeMap<ShapeKey, usize> = BTreeMap::new();
    for r in &responses {
        *by_shape.entry(r.shape).or_insert(0) += 1;
    }
    assert!(by_shape.len() >= 4, "got {} shape buckets", by_shape.len());
    assert!(by_shape.values().all(|&c| c > 100));

    // Poisoned requests flagged singular; everything else solved.
    for r in &responses {
        if (r.id + 1) % POISON_EVERY as u64 == 0 {
            assert_eq!(
                r.status,
                SolveStatus::Singular { column: 1 },
                "request {} is poisoned",
                r.id
            );
        } else {
            assert_eq!(r.status, SolveStatus::Solved, "request {}", r.id);
        }
    }
    assert_eq!(report.singular, (N_REQUESTS / POISON_EVERY) as u64);
    assert_eq!(
        report.solved,
        (N_REQUESTS - N_REQUESTS / POISON_EVERY) as u64
    );

    // Correctness sample: small backward residual against the original
    // payload (the arrivals regenerate deterministically from the seed).
    for r in responses.iter().step_by(97) {
        if r.status != SolveStatus::Solved {
            continue;
        }
        let a = &traffic[r.id as usize];
        let l = r.shape.layout().unwrap();
        let m = gbatch_core::BandMatrixRef {
            layout: l,
            data: &a.ab,
        };
        for col in 0..r.shape.nrhs {
            let x = &r.x[col * l.n..(col + 1) * l.n];
            let b = &a.rhs[col * l.n..(col + 1) * l.n];
            for (i, bi) in b.iter().enumerate() {
                let lo = i.saturating_sub(l.kl);
                let hi = (i + l.ku + 1).min(l.n);
                let ax: f64 = x[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(k, xj)| m.get(i, lo + k) * xj)
                    .sum();
                assert!(
                    (ax - bi).abs() < 1e-9,
                    "request {} row {i}: residual {:e}",
                    r.id,
                    (ax - bi).abs()
                );
            }
        }
    }

    // Dynamic batching earned its keep: flushes are far fewer than
    // requests and the mean batch is substantial.
    assert!(report.flushes() < (N_REQUESTS / 10) as u64);
    assert!(report.mean_batch() > 10.0);

    // Determinism: identical responses and reports under 2- and 8-worker
    // host scheduling (bitwise, including every latency and busy time).
    for workers in [2usize, 8] {
        let (alt, alt_report) = run_soak(ParallelPolicy::threads(workers));
        assert_eq!(alt.len(), responses.len());
        for (a, b) in alt.iter().zip(&responses) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.x, b.x, "{workers}-worker solution differs (id {})", a.id);
            assert_eq!(a.status, b.status);
            assert_eq!(a.completed_s, b.completed_s);
            assert_eq!(a.batch_size, b.batch_size);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.backend, b.backend);
        }
        assert_eq!(alt_report, report, "{workers}-worker report differs");
    }
}

#[test]
fn served_schedule_beats_per_request_stream_launches() {
    let (responses, report) = run_soak(ParallelPolicy::Serial);

    // Price the same traffic as the naive alternative: every request is
    // its own kernel launch over 16 streams (the paper's Figure 1
    // baseline), per shape bucket, on one GCD.
    let dev = DeviceSpec::mi250x_gcd();
    let mut by_shape: BTreeMap<ShapeKey, usize> = BTreeMap::new();
    for r in &responses {
        *by_shape.entry(r.shape).or_insert(0) += 1;
    }
    let mut streams_s = 0.0;
    for (shape, count) in by_shape {
        let l = shape.layout().unwrap();
        let traffic_bytes = gbtrf_bytes(&l) + gbtrs_bytes(&l, shape.nrhs);
        let per_block = KernelCounters {
            global_read: traffic_bytes as u64 / 2,
            global_write: traffic_bytes as u64 / 2,
            flops: (gbtrf_flops(&l) + gbtrs_flops(&l, shape.nrhs)) as u64,
            cycles: (l.n * 30) as f64,
            ..Default::default()
        };
        let cfg = LaunchConfig::new(64, 0);
        streams_s += simulate_streams(&dev, &cfg, count, 16, &per_block).secs();
    }

    let served_s = report.gpu_busy_s + report.cpu_busy_s;
    assert!(
        served_s < streams_s / 2.0,
        "dynamic batching should clearly beat per-request streams: \
         served {served_s:.6} s vs streams {streams_s:.6} s"
    );
}
