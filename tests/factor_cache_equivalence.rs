//! Factor-cache equivalence grid: a cache-hit (GBTRS-only) solve must be
//! **bitwise identical** to a cold factorize-and-solve of the same
//! request, across the whole configuration lattice —
//!
//! - both precisions (`f64` and the `f32` single-precision surface),
//! - host parallelism 1 / 2 / 8 workers,
//! - auto and forced-interleaved (batch-major) kernel layouts,
//! - warm buckets of batch 1 and mixed-operator warm batches,
//! - and, in a separate deterministic pass, hazard `Enforce` mode.
//!
//! This is the serving-layer face of the workspace's determinism
//! guarantee: retained factors are harvested bit-for-bit from whatever
//! kernel family solved the cold flush, so replaying them through the
//! batched GBTRS driver cannot change a single bit of the answer.

use gbatch::cpu::CpuSpec;
use gbatch::gpu_sim::hazard::{set_global_mode, HazardMode};
use gbatch::gpu_sim::multi::DeviceGroup;
use gbatch::gpu_sim::ParallelPolicy;
use gbatch::kernels::dispatch::MatrixLayout;
use gbatch::serve::{
    CpuBackend, FlushPolicy, GpuBackend, Server, ServerConfig, SolveRequest, SolveStatus,
};
use gbatch_core::{BandMatrixMut, ShapeKey};
use proptest::prelude::*;

/// Deterministic diagonally-dominant operator for `shape`, keyed by `seed`.
fn operator(shape: &ShapeKey, seed: u64) -> Vec<f64> {
    let l = shape.layout().unwrap();
    let mut ab = vec![0.0; shape.ab_len()];
    let mut m = BandMatrixMut {
        layout: l,
        data: &mut ab,
    };
    for j in 0..l.n {
        let (lo, hi) = l.col_rows(j);
        for i in lo..hi {
            m.set(
                i,
                j,
                (((i * 13 + j * 7 + seed as usize * 3) % 9) as f64 - 4.0) * 0.25,
            );
        }
        let sum: f64 = (lo..hi)
            .filter(|&i| i != j)
            .map(|i| m.get(i, j).abs())
            .sum();
        m.set(j, j, sum + 1.5 + 0.0625 * seed as f64);
    }
    ab
}

fn rhs(shape: &ShapeKey, seed: u64) -> Vec<f64> {
    (0..shape.rhs_len())
        .map(|i| ((i as u64 * 31 + seed * 17) % 13) as f64 * 0.125 - 0.75)
        .collect()
}

fn req(id: u64, shape: ShapeKey, op_seed: u64, rhs_seed: u64, at: f64) -> SolveRequest {
    SolveRequest {
        id,
        shape,
        ab: operator(&shape, op_seed),
        rhs: rhs(&shape, rhs_seed),
        submitted_s: at,
        deadline_s: at + 1.0,
    }
}

fn server(policy: ParallelPolicy, layout: MatrixLayout, target_batch: usize) -> Server {
    Server::new(
        ServerConfig {
            queue_capacity: 1024,
            policy: FlushPolicy::default().with_target_batch(target_batch),
        },
        Box::new(GpuBackend::new(DeviceGroup::mi250x_full(), policy).with_layout(layout)),
        Box::new(CpuBackend::new(CpuSpec::xeon_gold_6140())),
    )
}

/// Cold reference: a fresh (empty-cache) server solves exactly this
/// request once.
fn cold_solve(policy: ParallelPolicy, layout: MatrixLayout, r: &SolveRequest) -> Vec<f64> {
    let mut s = server(policy, layout, 1);
    let mut r = r.clone();
    r.submitted_s = 0.0;
    r.deadline_s = 1.0;
    s.submit(r).unwrap();
    let resp = s.take_responses();
    assert_eq!(resp.len(), 1);
    assert_eq!(resp[0].status, SolveStatus::Solved);
    resp[0].x.clone()
}

/// Run the warm-vs-cold comparison for one shape under one
/// (parallelism, layout) point: two operators are primed cold, then
/// re-solved against fresh right-hand sides both as singleton warm
/// flushes and as one mixed-operator warm batch.
fn check_grid_point(shape: ShapeKey, policy: ParallelPolicy, layout: MatrixLayout) {
    // --- singleton warm flushes -------------------------------------
    let mut s = server(policy, layout, 1);
    for (i, (op, rh)) in [(1u64, 10u64), (2, 11), (1, 12), (2, 13)]
        .iter()
        .enumerate()
    {
        let r = req(i as u64, shape, *op, *rh, i as f64 * 1e-3);
        let want = cold_solve(policy, layout, &r);
        s.submit(r).unwrap();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].status, SolveStatus::Solved);
        assert_eq!(
            resp[0].x, want,
            "warm/cold divergence: shape {shape:?} policy {policy:?} layout {layout:?} req {i}"
        );
    }
    let rep = s.report();
    assert_eq!(
        rep.warm_requests, 2,
        "second touch of each operator is warm"
    );
    assert_eq!(rep.warm_flushes, 2);
    assert_eq!(rep.warm_fallbacks, 0);
    assert!(rep.is_conserved());

    // --- mixed-operator warm batch ----------------------------------
    let mut s = server(policy, layout, 2);
    s.submit(req(0, shape, 1, 20, 0.0)).unwrap();
    s.submit(req(1, shape, 2, 21, 1e-6)).unwrap();
    assert_eq!(s.take_responses().len(), 2, "cold priming flush");
    // Two warm requests with *different* operators share one ShapeKey and
    // one warm tier: they flush as a single batched GBTRS launch whose
    // lanes gather from two distinct cached factorizations.
    let wa = req(2, shape, 1, 22, 1e-3);
    let wb = req(3, shape, 2, 23, 1e-3 + 1e-6);
    let want_a = cold_solve(policy, layout, &wa);
    let want_b = cold_solve(policy, layout, &wb);
    s.submit(wa).unwrap();
    s.submit(wb).unwrap();
    let resp = s.take_responses();
    assert_eq!(resp.len(), 2);
    for r in &resp {
        assert_eq!(r.status, SolveStatus::Solved);
        assert_eq!(r.batch_size, 2, "one batched warm launch");
        let want = if r.id == 2 { &want_a } else { &want_b };
        assert_eq!(
            &r.x, want,
            "batched warm divergence: shape {shape:?} policy {policy:?} layout {layout:?}"
        );
    }
    let rep = s.report();
    assert_eq!(rep.warm_flushes, 1);
    assert!(rep.is_conserved());
}

const POLICIES: [ParallelPolicy; 3] = [
    ParallelPolicy::Serial,
    ParallelPolicy::Threads(2),
    ParallelPolicy::Threads(8),
];
const LAYOUTS: [MatrixLayout; 2] = [MatrixLayout::Auto, MatrixLayout::Interleaved];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Warm solves are bitwise cold across precision × parallelism ×
    /// layout, for arbitrary small band geometries.
    #[test]
    fn warm_equals_cold_across_the_grid(
        n in 4usize..24,
        kl in 0usize..3,
        ku in 0usize..3,
    ) {
        for shape in [ShapeKey::gbsv(n, kl, ku, 1), ShapeKey::sgbsv(n, kl, ku, 1)] {
            for policy in POLICIES {
                for layout in LAYOUTS {
                    check_grid_point(shape, policy, layout);
                }
            }
        }
    }
}

/// The same grid point under hazard `Enforce`: warm GBTRS-only launches
/// must be as hazard-clean as every other kernel in the workspace, and
/// the bitwise contract must survive enforcement.
#[test]
fn warm_equals_cold_under_hazard_enforce() {
    set_global_mode(HazardMode::Enforce);
    for shape in [ShapeKey::gbsv(17, 2, 2, 1), ShapeKey::sgbsv(17, 2, 2, 1)] {
        for policy in POLICIES {
            for layout in LAYOUTS {
                check_grid_point(shape, policy, layout);
            }
        }
    }
    set_global_mode(HazardMode::Off);
}
