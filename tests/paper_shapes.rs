//! End-to-end regression tests for the paper's headline *shapes* — the
//! success criteria of this reproduction (see EXPERIMENTS.md). Each test
//! pins one qualitative claim of the paper against the measurement
//! pipeline used by the `repro` binary.

use gbatch::kernels::dispatch::FactorAlgo;
use gbatch_bench::experiments::{gbsv_cpu_ms, gbsv_gpu_ms, gbtrf_cpu_ms, gbtrf_gpu_ms};
use gbatch_bench::Platforms;

fn platforms() -> Platforms {
    Platforms::tuned(12)
}

/// Figure 3: the fused kernel's staircase — on the MI250x the modeled time
/// jumps superlinearly when the occupancy steps down, and the kernel
/// eventually fails outright for (10,7).
#[test]
fn fused_staircase_and_failure() {
    let p = platforms();
    // (2,3) on MI250x: 96 -> 128 crosses an occupancy boundary (see
    // results/repro_all.txt): superlinear jump.
    let t96 = gbtrf_gpu_ms(&p.mi250x, 96, 2, 3, FactorAlgo::Fused, None).unwrap();
    let t128 = gbtrf_gpu_ms(&p.mi250x, 128, 2, 3, FactorAlgo::Fused, None).unwrap();
    let jump = t128 / t96;
    let size_ratio = 128.0 / 96.0;
    assert!(
        jump > 1.5 * size_ratio,
        "staircase jump missing: {jump:.2}x for {size_ratio:.2}x"
    );
    // (10,7): fails beyond the 64 KB LDS, succeeds on the H100.
    assert!(gbtrf_gpu_ms(&p.mi250x, 512, 10, 7, FactorAlgo::Fused, None).is_none());
    assert!(gbtrf_gpu_ms(&p.h100, 512, 10, 7, FactorAlgo::Fused, None).is_some());
}

/// Figure 5 / Table 1: the final dispatched GBTRF beats the CPU on the
/// H100 for both bands; the MI250x is near-parity at (10,7) — and the
/// H100/MI250x gap exceeds their 1.47x bandwidth ratio (§8's argument).
#[test]
fn final_gbtrf_orderings() {
    let p = platforms();
    let n = 512;
    for (kl, ku, h_min, mi_lo, mi_hi) in [(2usize, 3usize, 2.0, 1.4, 3.0), (10, 7, 2.5, 0.7, 1.8)] {
        let params_h = p.window_params(&p.h100, kl, ku);
        let params_m = p.window_params(&p.mi250x, kl, ku);
        let cpu = gbtrf_cpu_ms(&p.cpu, n, kl, ku);
        let h = gbtrf_gpu_ms(&p.h100, n, kl, ku, FactorAlgo::Window, params_h).unwrap();
        let m = gbtrf_gpu_ms(&p.mi250x, n, kl, ku, FactorAlgo::Window, params_m).unwrap();
        assert!(
            cpu / h > h_min,
            "H100 speedup {:.2} at ({kl},{ku})",
            cpu / h
        );
        let mi_speedup = cpu / m;
        assert!(
            (mi_lo..mi_hi).contains(&mi_speedup),
            "MI250x speedup {mi_speedup:.2} outside [{mi_lo}, {mi_hi}] at ({kl},{ku})"
        );
        // H100 vs MI250x gap above the bandwidth ratio at the wide band.
        if kl == 10 {
            assert!(
                m / h > 1.47,
                "gap {:.2} should exceed the 1.47x bandwidth ratio",
                m / h
            );
        }
    }
}

/// Figure 7's crossover: the fused GBSV wins for small systems; the
/// standard factor+solve wins on the MI250x once the system outgrows the
/// cutoff region (the basis of the paper's `n <= 64` rule). Uses the
/// repro binary's own figure runner so pricing is consistent.
#[test]
fn fused_gbsv_crossover_on_mi250x() {
    let p = platforms();
    let figs = gbatch_bench::experiments::fig7(&p);
    let fig23 = &figs[0]; // (kl, ku) = (2, 3)
    let fused_mi = fig23
        .series
        .iter()
        .find(|s| s.label.starts_with("Fused - MI250x"))
        .expect("series");
    let std_mi = fig23
        .series
        .iter()
        .find(|s| s.label.starts_with("Std - MI250x"))
        .expect("series");
    // Small: fused wins; large: standard wins (the crossover).
    assert!(
        fused_mi.at(32).unwrap() < std_mi.at(32).unwrap(),
        "fused must win at n=32"
    );
    assert!(
        std_mi.at(160).unwrap() < fused_mi.at(160).unwrap(),
        "standard must win at n=160"
    );
    // On the H100 the fused driver still wins at 64 (the cutoff choice).
    let fused_h = fig23
        .series
        .iter()
        .find(|s| s.label.starts_with("Fused - H100"))
        .expect("series");
    let std_h = fig23
        .series
        .iter()
        .find(|s| s.label.starts_with("Std - H100"))
        .expect("series");
    assert!(fused_h.at(64).unwrap() < std_h.at(64).unwrap());
}

/// Figure 9 / Table 3's MKL effect: ten right-hand sides roughly double
/// the CPU's time while the GPU grows far less — so the GPU speedup
/// *increases* with nrhs for the thin band.
#[test]
fn ten_rhs_helps_the_gpu() {
    let p = platforms();
    let n = 256;
    let cpu1 = gbsv_cpu_ms(&p.cpu, n, 2, 3, 1);
    let cpu10 = gbsv_cpu_ms(&p.cpu, n, 2, 3, 10);
    let cpu_growth = cpu10 / cpu1;
    assert!(
        (1.7..2.6).contains(&cpu_growth),
        "paper: ~2.18x, got {cpu_growth:.2}x"
    );
    let params = p.window_params(&p.h100, 2, 3);
    let h1 = gbsv_gpu_ms(&p.h100, n, 2, 3, 1, params, true).unwrap();
    let h10 = gbsv_gpu_ms(&p.h100, n, 2, 3, 10, params, true).unwrap();
    let gpu_growth = h10 / h1;
    assert!(
        gpu_growth < cpu_growth,
        "GPU growth {gpu_growth:.2} must undercut CPU {cpu_growth:.2}"
    );
    assert!(cpu10 / h10 > cpu1 / h1, "speedup must increase with nrhs");
}

/// §8's bandwidth probe: the ratio is 1.47x by construction, and the gap
/// in actual solver performance exceeds it (shared memory, not bandwidth).
#[test]
fn bandwidth_ratio_vs_solver_gap() {
    let p = platforms();
    let bw_ratio = p.h100.mem_bw / p.mi250x.mem_bw;
    assert!((bw_ratio - 1.47).abs() < 0.02);
    let params_h = p.window_params(&p.h100, 10, 7);
    let params_m = p.window_params(&p.mi250x, 10, 7);
    let h = gbsv_gpu_ms(&p.h100, 512, 10, 7, 1, params_h, true).unwrap();
    let m = gbsv_gpu_ms(&p.mi250x, 512, 10, 7, 1, params_m, true).unwrap();
    assert!(
        m / h > bw_ratio,
        "solver gap {:.2} must exceed bandwidth ratio {bw_ratio:.2}",
        m / h
    );
}
