//! Shared-memory envelope boundary checks (analyzer vs dispatch).
//!
//! For each modeled family the analyzer bisects the symbolic footprint
//! formula into the largest feasible matrix order per device
//! ([`max_feasible_n`]). These tests pin that table to reality on the two
//! production device models: the boundary order must launch, one past it
//! must be rejected by the launch validation, and the symbolic formula
//! must agree byte-for-byte with the kernel's own `*_smem_bytes` helper.

use gbatch_analyzer::{max_feasible_n, Env, MaxN};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::{DeviceSpec, ParallelPolicy};
use gbatch_kernels::access_model::{
    fused_model, gbsv_model, gbtrs_backward_model, gbtrs_forward_model, interleaved_solve_model,
    window_model, Rigor,
};
use gbatch_kernels::fused::{fused_smem_bytes, gbtrf_batch_fused, FusedParams};
use gbatch_kernels::gbsv_fused::{gbsv_batch_fused, gbsv_smem_bytes};
use gbatch_kernels::interleaved::{
    gbtrf_batch_interleaved, gbtrs_batch_interleaved, interleave_launch, solve_mode,
    solve_smem_bytes, InterleavedParams, LaneTrafficMode,
};
use gbatch_kernels::window::{gbtrf_batch_window, WindowParams};

const KL: usize = 2;
const KU: usize = 1;
const NRHS: usize = 2;
const NB: usize = 4;
const LANES: usize = 2;

fn band_env(sbytes: usize) -> Env {
    Env::from([
        ("kl", KL as i64),
        ("ku", KU as i64),
        ("kv", (KL + KU) as i64),
        ("ldab", (2 * KL + KU + 1) as i64),
        ("nrhs", NRHS as i64),
        ("nb", NB as i64),
        ("lanes", LANES as i64),
        ("sbytes", sbytes as i64),
    ])
}

fn devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::h100_pcie(),
        DeviceGroup::mi250x_full().devices[0].clone(),
    ]
}

/// Identity-diagonal band batch: factorization is trivial, so boundary
/// launches at very large `n` stay fast.
fn identity_band(n: usize) -> BandBatch<f64> {
    BandBatch::from_fn(1, n, n, KL, KU, |_, m| {
        for j in 0..n {
            m.set(j, j, 1.0);
        }
    })
    .unwrap()
}

fn launch_fused(dev: &DeviceSpec, n: usize) -> bool {
    let mut a = identity_band(n);
    let mut piv = PivotBatch::new(1, n, n);
    let mut info = InfoArray::new(1);
    gbtrf_batch_fused(
        dev,
        &mut a,
        &mut piv,
        &mut info,
        FusedParams {
            threads: 8,
            parallel: ParallelPolicy::Serial,
        },
    )
    .is_ok()
}

#[test]
fn fused_boundary_matches_dispatch() {
    let model = fused_model(Rigor::Quick);
    for dev in devices() {
        let env = band_env(8);
        let MaxN::Bounded(nmax) =
            max_feasible_n(&model.smem_bytes, &env, dev.max_smem_per_block as usize)
        else {
            panic!("fused must be n-bounded on {}", dev.name)
        };
        let nmax = nmax as usize;
        let ldab = 2 * KL + KU + 1;
        let mut e = env.clone();
        e.insert("n", nmax as i64);
        assert_eq!(
            model.smem_bytes.eval(&e) as usize,
            fused_smem_bytes::<f64>(ldab, nmax),
            "model formula disagrees with the kernel helper on {}",
            dev.name
        );
        assert!(
            launch_fused(&dev, nmax),
            "n = {nmax} must fit on {}",
            dev.name
        );
        assert!(
            !launch_fused(&dev, nmax + 1),
            "n = {} must be rejected on {}",
            nmax + 1,
            dev.name
        );
    }
}

fn launch_gbsv(dev: &DeviceSpec, n: usize) -> bool {
    let mut a = identity_band(n);
    let mut rhs = RhsBatch::<f64>::from_fn(1, n, NRHS, |_, r, c| (r + c) as f64).unwrap();
    let mut piv = PivotBatch::new(1, n, n);
    let mut info = InfoArray::new(1);
    gbsv_batch_fused(
        dev,
        &mut a,
        &mut piv,
        &mut rhs,
        &mut info,
        8,
        ParallelPolicy::Serial,
    )
    .is_ok()
}

#[test]
fn gbsv_boundary_matches_dispatch() {
    let model = gbsv_model(Rigor::Quick);
    for dev in devices() {
        let env = band_env(8);
        let MaxN::Bounded(nmax) =
            max_feasible_n(&model.smem_bytes, &env, dev.max_smem_per_block as usize)
        else {
            panic!("gbsv must be n-bounded on {}", dev.name)
        };
        let nmax = nmax as usize;
        let l = BandLayout::factor(nmax, nmax, KL, KU).unwrap();
        let mut e = env.clone();
        e.insert("n", nmax as i64);
        assert_eq!(
            model.smem_bytes.eval(&e) as usize,
            gbsv_smem_bytes::<f64>(&l, NRHS),
            "model formula disagrees with the kernel helper on {}",
            dev.name
        );
        assert!(
            launch_gbsv(&dev, nmax),
            "n = {nmax} must fit on {}",
            dev.name
        );
        assert!(
            !launch_gbsv(&dev, nmax + 1),
            "n = {} must be rejected on {}",
            nmax + 1,
            dev.name
        );
    }
}

fn launch_interleaved_solve(dev: &DeviceSpec, n: usize) -> bool {
    let src = identity_band(n);
    let params = InterleavedParams {
        lanes_per_block: LANES,
        threads: 8,
        parallel: ParallelPolicy::Serial,
        ..InterleavedParams::default()
    };
    let (mut il, _) = interleave_launch(dev, &src, params).unwrap();
    let mut piv = PivotBatch::new(1, n, n);
    let mut info = InfoArray::new(1);
    let _ = gbtrf_batch_interleaved(dev, &mut il, &mut piv, &mut info, params).unwrap();
    let mut rhs = RhsBatch::<f64>::from_fn(1, n, NRHS, |_, r, c| (r + c) as f64).unwrap();
    gbtrs_batch_interleaved(dev, &il, &piv, &mut rhs, &info, params).is_ok()
}

#[test]
fn interleaved_solve_boundary_matches_dispatch() {
    let model = interleaved_solve_model();
    for dev in devices() {
        let env = band_env(8);
        let MaxN::Bounded(nmax) =
            max_feasible_n(&model.smem_bytes, &env, dev.max_smem_per_block as usize)
        else {
            panic!("interleaved solve must be n-bounded on {}", dev.name)
        };
        let nmax = nmax as usize;
        let l = BandLayout::factor(nmax, nmax, KL, KU).unwrap();
        let mut e = env.clone();
        e.insert("n", nmax as i64);
        assert_eq!(
            model.smem_bytes.eval(&e) as usize,
            solve_smem_bytes::<f64>(&l, NRHS, LANES),
            "model formula disagrees with the kernel helper on {}",
            dev.name
        );
        // The interleaved solve never rejects a launch: past the window
        // boundary it degrades to streaming mode (smem = 0) instead. The
        // analyzer boundary must coincide exactly with that mode switch,
        // and both sides must still launch.
        assert_eq!(
            solve_mode::<f64>(&dev, &l, NRHS, LANES),
            LaneTrafficMode::Windowed,
            "n = {nmax} must stay windowed on {}",
            dev.name
        );
        let l_next = BandLayout::factor(nmax + 1, nmax + 1, KL, KU).unwrap();
        assert_eq!(
            solve_mode::<f64>(&dev, &l_next, NRHS, LANES),
            LaneTrafficMode::Streaming,
            "n = {} must fall back to streaming on {}",
            nmax + 1,
            dev.name
        );
        assert!(launch_interleaved_solve(&dev, nmax));
        assert!(launch_interleaved_solve(&dev, nmax + 1));
    }
}

/// The window-buffered families saturate: their footprint stops growing
/// once the cache covers the band, so the analyzer reports them unbounded
/// in `n` — and a window launch must succeed at an order the fused kernel
/// cannot fit on the same device.
#[test]
fn window_buffered_families_are_unbounded_and_outlive_fused() {
    let dev = DeviceGroup::mi250x_full().devices[0].clone();
    let env = band_env(8);
    let limit = dev.max_smem_per_block as usize;
    for model in [
        window_model(Rigor::Quick),
        gbtrs_forward_model(Rigor::Quick),
        gbtrs_backward_model(Rigor::Quick),
    ] {
        assert_eq!(
            max_feasible_n(&model.smem_bytes, &env, limit),
            MaxN::Unbounded,
            "family {} should saturate in n",
            model.family
        );
    }
    let fused = fused_model(Rigor::Quick);
    let MaxN::Bounded(fused_max) = max_feasible_n(&fused.smem_bytes, &env, limit) else {
        panic!("fused must be n-bounded")
    };
    let n = fused_max as usize + 1;
    assert!(!launch_fused(&dev, n));
    let mut a = identity_band(n);
    let mut piv = PivotBatch::new(1, n, n);
    let mut info = InfoArray::new(1);
    let _ = gbtrf_batch_window(
        &dev,
        &mut a,
        &mut piv,
        &mut info,
        WindowParams {
            nb: NB,
            threads: 8,
            parallel: ParallelPolicy::Serial,
        },
    )
    .expect("window must handle orders past the fused limit");
}
