//! Failure-injection tests: singular systems, shared-memory pressure,
//! dispatch fallbacks, and degenerate inputs.

use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, ParallelPolicy};
use gbatch::kernels::dispatch::{
    dgbsv_batch, dgbtrf_batch, ChosenAlgo, FactorAlgo, GbsvOptions, MatrixLayout,
};
use gbatch::kernels::fused::{gbtrf_batch_fused, FusedParams};

fn healthy_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
    let mut v = 0.41f64;
    BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 2.13 + 0.19).fract();
                m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
    })
    .unwrap()
}

/// A batch where several systems are singular: every healthy system is
/// solved, every singular one is flagged with the right 1-based column and
/// the factorization never panics.
#[test]
fn mixed_singular_batch_reports_exact_columns() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (10, 30, 2, 1);
    let mut a = healthy_batch(batch, n, kl, ku);
    // Zero the *entire structural column* 4 of systems 2 and 7. Updates
    // into column 4 multiply by U(j, 4) entries that are themselves zero,
    // so elimination cannot resurrect the column: the factorization must
    // flag exactly column 5 (1-based).
    for id in [2usize, 7] {
        let mut m = a.matrix_mut(id);
        let (s, e) = m.layout.col_rows(4);
        for i in s..e {
            m.set(i, 4, 0.0);
        }
    }
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = gbtrf_batch_fused(
        &dev,
        &mut a,
        &mut piv,
        &mut info,
        FusedParams::auto(&dev, kl),
    )
    .unwrap();
    assert_eq!(info.failures(), vec![2, 7]);
    assert_eq!(info.get(2), 5);
    assert_eq!(info.get(7), 5);
    for id in [0usize, 1, 3, 4, 5, 6, 8, 9] {
        assert_eq!(info.get(id), 0);
    }
}

/// dgbsv on a batch with singular members: healthy systems solved, failed
/// systems' RHS preserved, info codes exact.
#[test]
fn dgbsv_mixed_batch_preserves_failed_rhs() {
    let dev = DeviceSpec::mi250x_gcd();
    let (batch, n) = (6, 20);
    let mut a = healthy_batch(batch, n, 1, 1);
    {
        // Completely zero system 3 -> fails at column 1 (info = 1).
        let mut m = a.matrix_mut(3);
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, 0.0);
            }
        }
    }
    let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| (id * n + i) as f64).unwrap();
    let mut b = b0.clone();
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let _ = dgbsv_batch(
        &dev,
        &mut a,
        &mut piv,
        &mut b,
        &mut info,
        &GbsvOptions::default(),
    )
    .unwrap();
    assert_eq!(info.failures(), vec![3]);
    assert_eq!(info.get(3), 1);
    assert_eq!(b.block(3), b0.block(3), "failed RHS untouched");
    for id in [0usize, 1, 2, 4, 5] {
        assert_ne!(b.block(id), b0.block(id), "healthy system {id} solved");
    }
}

/// Shared-memory pressure: the fused kernel must refuse (not corrupt, not
/// panic) when a matrix exceeds the device's shared memory, and auto
/// dispatch must transparently pick the window kernel instead.
#[test]
fn fused_overflow_is_a_clean_error_and_dispatch_recovers() {
    let dev = DeviceSpec::mi250x_gcd();
    let (batch, n, kl, ku) = (3, 1200, 2, 3); // 8 * 1200 * 8 = 75 KB > 64 KB
    let mut a = healthy_batch(batch, n, kl, ku);
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);

    let before = a.data().to_vec();
    let err = gbtrf_batch_fused(
        &dev,
        &mut a,
        &mut piv,
        &mut info,
        FusedParams::auto(&dev, kl),
    )
    .unwrap_err();
    assert!(matches!(err, LaunchError::SharedMemExceeded { .. }));
    assert_eq!(a.data(), &before[..], "failed launch must not touch data");

    // Pin the column-major layout: the claim under test is the fused ->
    // window *algorithm* recovery (at batch = 3 the layout dimension
    // would route to the interleaved kernels instead).
    let opts = GbsvOptions {
        layout: MatrixLayout::ColumnMajor,
        ..Default::default()
    };
    let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
    assert_eq!(rep.algo, ChosenAlgo::Window);
    assert!(info.all_ok());
}

/// Forcing the fused algorithm on an impossible size surfaces the launch
/// error instead of silently switching.
#[test]
fn forcing_impossible_algorithm_errors() {
    let dev = DeviceSpec::mi250x_gcd();
    let (batch, n) = (2, 1200);
    let mut a = healthy_batch(batch, n, 2, 3);
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let opts = GbsvOptions {
        algo: FactorAlgo::Fused,
        ..Default::default()
    };
    let err = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap_err();
    assert!(matches!(err, LaunchError::SharedMemExceeded { .. }));
}

/// Degenerate shapes: 1x1 systems, diagonal-only bands, bands wider than
/// the matrix.
#[test]
fn degenerate_shapes_work() {
    let dev = DeviceSpec::h100_pcie();
    for (n, kl, ku) in [(1usize, 0usize, 0usize), (4, 0, 0), (3, 2, 2), (2, 1, 1)] {
        let mut a = healthy_batch(4, n, kl, ku);
        let b0 = RhsBatch::from_fn(4, n, 1, |id, i, _| (id + i + 1) as f64).unwrap();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(4, n, n);
        let mut info = InfoArray::new(4);
        let _ = dgbsv_batch(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            &GbsvOptions::default(),
        )
        .unwrap();
        assert!(info.all_ok(), "n={n} kl={kl} ku={ku}");
        for id in 0..4 {
            let berr = gbatch::core::residual::backward_error(
                healthy_batch(4, n, kl, ku).matrix(id),
                b.block(id),
                b0.block(id),
            );
            assert!(berr < 1e-12, "n={n} kl={kl} ku={ku} id={id}: {berr:.2e}");
        }
    }
}

/// Mixed singular/healthy batch under the parallel executor: the 1-based
/// info columns and every factor bit must match the serial run — failure
/// isolation is per matrix, regardless of which worker hits the singular
/// block.
#[test]
fn parallel_mixed_singular_batch_matches_serial_info() {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (24, 30, 2, 1);
    let a0 = {
        let mut a = healthy_batch(batch, n, kl, ku);
        // Structurally zero column 4 of a scattered set of systems.
        for id in [2usize, 7, 11, 23] {
            let mut m = a.matrix_mut(id);
            let (s, e) = m.layout.col_rows(4);
            for i in s..e {
                m.set(i, 4, 0.0);
            }
        }
        a
    };

    let run = |params: FusedParams| {
        let mut a = a0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = gbtrf_batch_fused(&dev, &mut a, &mut piv, &mut info, params).unwrap();
        (a, piv, info)
    };
    let base = FusedParams::auto(&dev, kl);
    let serial = run(base);
    assert_eq!(serial.2.failures(), vec![2, 7, 11, 23]);
    for id in [2usize, 7, 11, 23] {
        assert_eq!(serial.2.get(id), 5, "1-based singular column");
    }
    let par = run(base.with_parallel(ParallelPolicy::threads(4)));
    assert_eq!(serial.0.data(), par.0.data(), "factors");
    assert_eq!(serial.1, par.1, "pivots");
    assert_eq!(serial.2, par.2, "info codes");
}

/// A panicking block must be caught by the executor without corrupting its
/// siblings: every other block completes its work, and the propagated
/// panic is the one from the lowest block id in both serial and parallel
/// runs (observational equivalence).
#[test]
fn panicking_block_does_not_corrupt_siblings() {
    let dev = DeviceSpec::h100_pcie();
    let cfg_for = |policy: ParallelPolicy| LaunchConfig::new(32, 0).with_parallel(policy);
    for policy in [ParallelPolicy::Serial, ParallelPolicy::threads(4)] {
        let mut data: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            launch(&dev, &cfg_for(policy), &mut data, |v, ctx| {
                if *v == 13 || *v == 40 {
                    panic!("injected failure in block {}", *v);
                }
                *v += 1000;
                ctx.gst(8);
            })
        }))
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().unwrap();
        assert_eq!(
            msg, "injected failure in block 13",
            "{policy:?}: lowest block id's panic must win"
        );
        for (i, v) in data.iter().enumerate() {
            if i == 13 || i == 40 {
                assert_eq!(*v, i as u64, "{policy:?}: panicked block left as-is");
            } else {
                assert_eq!(
                    *v,
                    i as u64 + 1000,
                    "{policy:?}: sibling block {i} completed"
                );
            }
        }
    }
}

/// The engine validates thread counts exactly like CUDA.
#[test]
fn invalid_thread_counts_rejected() {
    let dev = DeviceSpec::h100_pcie();
    let bad = LaunchConfig::new(0, 0);
    assert!(gbatch::gpu_sim::engine::validate(&dev, &bad).is_err());
    let too_many = LaunchConfig::new(dev.max_threads_per_block + 1, 0);
    assert!(gbatch::gpu_sim::engine::validate(&dev, &too_many).is_err());
}
