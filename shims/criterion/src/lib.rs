//! Offline shim for `criterion` 0.5 (see `shims/README.md`).
//!
//! A minimal wall-clock benchmark harness exposing the subset of the
//! criterion API this workspace uses. There is no statistical analysis:
//! each benchmark runs a warm-up pass, then up to `sample_size`
//! iterations bounded by `measurement_time`, and reports the mean
//! iteration time on stdout in a `name ... time: [...]`-style line so
//! existing log-scraping keeps working.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up budget (one untimed pass, capped at this).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = (self.sample_size, self.warm_up_time, self.measurement_time);
        run_benchmark(&id.to_string(), None, config, &mut f);
        self
    }
}

/// Throughput annotation (reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let c = &*self.criterion;
        let config = (c.sample_size, c.warm_up_time, c.measurement_time);
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.throughput,
            config,
            &mut f,
        );
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let c = &*self.criterion;
        let config = (c.sample_size, c.warm_up_time, c.measurement_time);
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.throughput,
            config,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// How much setup output to batch per measured pass (ignored: the shim
/// always runs one setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up: bool,
    /// Filled in by `iter`/`iter_batched`.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.warm_up {
            black_box(routine());
            return;
        }
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Time `routine` on fresh state from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.warm_up {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    (sample_size, _warm_up_time, measurement_time): (usize, Duration, Duration),
    f: &mut F,
) {
    // One untimed warm-up pass.
    let mut warm = Bencher {
        sample_size,
        measurement_time,
        warm_up: true,
        samples: Vec::new(),
    };
    f(&mut warm);

    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        warm_up: false,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<60} time: [no samples]");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  thrpt: {:.3e} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  thrpt: {:.3e} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<60} time: [{} {} {}]{rate}",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group runner (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // warm-up pass + up to 3 samples
        assert!(runs >= 2);
    }

    #[test]
    fn groups_and_batched_iters_work() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
