//! Derive macros for the offline `serde` shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` offline): supports the
//! type shapes this workspace derives on —
//!
//! - structs with named fields (any visibility, `#[...]` attributes),
//! - tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! - enums whose variants all carry no data (serialized as the variant
//!   name string).
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether `#[serde(default)]` was
/// present (missing keys then fall back to `Default::default()` instead of
/// erroring, matching real serde).
struct Field {
    name: String,
    default: bool,
}

/// Parsed shape of the deriving type.
enum Shape {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` already consumed: expect a bracket group).
fn skip_attr(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            iter.next();
        }
    }
}

/// Consume one attribute like [`skip_attr`], reporting whether it was
/// `#[serde(default)]` (possibly alongside other serde items).
fn consume_attr_is_default(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> bool {
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            let mut inner = g.stream().into_iter();
            let is_serde = matches!(
                inner.next(),
                Some(TokenTree::Ident(id)) if id.to_string() == "serde"
            );
            let mut found = false;
            if is_serde {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    found = args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"));
                }
            }
            iter.next();
            return found;
        }
    }
    false
}

/// Parse the derive input into a [`Shape`].
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    // Header: attributes / visibility / `struct` | `enum` keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Optional `pub(...)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => {}
            None => return Err("unexpected end of derive input".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics (type `{name}`); \
                 implement Serialize/Deserialize manually"
            ));
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if kind == "struct" {
                    let arity = count_tuple_fields(g.stream());
                    return Ok(Shape::Tuple { name, arity });
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Ok(Shape::Unit { name });
            }
            Some(_) => {}
            None => return Ok(Shape::Unit { name }),
        }
    };
    let body = body.unwrap();
    if kind == "struct" {
        Ok(Shape::Named {
            name,
            fields: named_fields(body.stream())?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: enum_variants(body.stream())?,
        })
    }
}

/// Count comma-separated fields of a tuple struct (angle-depth aware).
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

/// Extract field names from a named-fields body.
fn named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = ts.into_iter().peekable();
    let mut fields = Vec::new();
    let mut default = false;
    loop {
        // Skip attributes and visibility before the field name, noting a
        // `#[serde(default)]` when present.
        let field = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    default |= consume_attr_is_default(&mut iter);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => {
                    return Err(format!("unexpected token `{other}` in struct body"));
                }
                None => break None,
            }
        };
        let Some(field) = field else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        for t in iter.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: field,
            default,
        });
        default = false;
    }
    Ok(fields)
}

/// Extract variant names from an enum body; reject payload variants.
fn enum_variants(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let v = id.to_string();
                match iter.peek() {
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "serde shim derive supports only unit enum variants \
                             (variant `{v}` carries data)"
                        ));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Explicit discriminant: consume `= expr` up to `,`.
                        iter.next();
                        for t in iter.by_ref() {
                            if let TokenTree::Punct(p) = &t {
                                if p.as_char() == ',' {
                                    break;
                                }
                            }
                        }
                    }
                    _ => {
                        iter.next(); // trailing comma, if any
                    }
                }
                variants.push(v);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
            None => break,
        }
    }
    Ok(variants)
}

/// `#[derive(Serialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize_content(&self) -> ::serde::Content {{
                        ::serde::Content::Map(::std::vec![{}])
                    }}
                }}",
                entries.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize_content(&self) -> ::serde::Content {{
                    ::serde::Serialize::serialize_content(&self.0)
                }}
            }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize_content(&self) -> ::serde::Content {{
                        ::serde::Content::Seq(::std::vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn serialize_content(&self) -> ::serde::Content {{
                    ::serde::Content::Null
                }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Content::Str(::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize_content(&self) -> ::serde::Content {{
                        match self {{ {} }}
                    }}
                }}",
                arms.join(", ")
            )
        }
    };
    src.parse().unwrap()
}

/// `#[derive(Deserialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (name, default) = (&f.name, f.default);
                    if default {
                        format!("{name}: ::serde::field_or_default(m, {name:?})?")
                    } else {
                        format!("{name}: ::serde::field(m, {name:?})?")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize_content(
                        c: &::serde::Content,
                    ) -> ::std::result::Result<Self, ::std::string::String> {{
                        let m = c.as_map().ok_or_else(|| {{
                            ::std::string::String::from(concat!(\"expected object for \", stringify!({name})))
                        }})?;
                        ::std::result::Result::Ok({name} {{ {} }})
                    }}
                }}",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn deserialize_content(
                    c: &::serde::Content,
                ) -> ::std::result::Result<Self, ::std::string::String> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_content(c)?))
                }}
            }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::deserialize_content(&s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize_content(
                        c: &::serde::Content,
                    ) -> ::std::result::Result<Self, ::std::string::String> {{
                        let s = c.as_seq().ok_or_else(|| {{
                            ::std::string::String::from(\"expected array\")
                        }})?;
                        if s.len() != {arity} {{
                            return ::std::result::Result::Err(
                                ::std::string::String::from(\"wrong tuple arity\"));
                        }}
                        ::std::result::Result::Ok({name}({}))
                    }}
                }}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn deserialize_content(
                    _c: &::serde::Content,
                ) -> ::std::result::Result<Self, ::std::string::String> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize_content(
                        c: &::serde::Content,
                    ) -> ::std::result::Result<Self, ::std::string::String> {{
                        match c.as_str() {{
                            {}
                            other => ::std::result::Result::Err(::std::format!(
                                \"unknown variant {{other:?}} for {name}\")),
                        }}
                    }}
                }}",
                arms.join("\n")
            )
        }
    };
    src.parse().unwrap()
}
