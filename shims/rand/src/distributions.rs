//! Distributions: `Uniform` over the numeric types this workspace
//! samples, plus the `Standard` unit distribution.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Map 64 random bits to a `f64` uniform in `[0, 1)` (53-bit mantissa).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from an `Rng` given distribution parameters.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a type: `f64`/`f32` in `[0, 1)`, full
/// range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform distribution over an interval of `T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T: SampleUniform> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over the half-open `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(
            T::valid_range(&lo, &hi, false),
            "Uniform::new requires lo < hi"
        );
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over the closed `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(
            T::valid_range(&lo, &hi, true),
            "Uniform::new_inclusive requires lo <= hi"
        );
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(&self.lo, &self.hi, self.inclusive, rng)
    }
}

/// Types that support uniform interval sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Check interval validity.
    fn valid_range(lo: &Self, hi: &Self, inclusive: bool) -> bool {
        if inclusive {
            lo <= hi
        } else {
            lo < hi
        }
    }

    /// Draw uniformly from the interval.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        // The closed/open distinction is measure-zero for floats; both
        // use lo + u*(hi - lo) like upstream rand.
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: &Self,
        hi: &Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Unbiased integer sampling from `[0, span]` by rejection on the top
/// multiple of `span + 1`.
fn uniform_u64_closed<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let m = span + 1;
    let zone = u64::MAX - (u64::MAX % m);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % m;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: &Self,
                hi: &Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let hi_closed = if inclusive { *hi } else { *hi - 1 };
                let span = (hi_closed as i128 - *lo as i128) as u64;
                let off = uniform_u64_closed(span, rng);
                ((*lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range-argument support for `Rng::gen_range`.
pub mod uniform {
    pub use super::SampleUniform;
    use super::*;

    /// Ranges acceptable to `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(
                T::valid_range(&self.start, &self.end, false),
                "gen_range requires a non-empty range"
            );
            T::sample_uniform(&self.start, &self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(
                T::valid_range(&lo, &hi, true),
                "gen_range requires a non-empty range"
            );
            T::sample_uniform(&lo, &hi, true, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_f64_stays_in_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = Uniform::new_inclusive(-1.0f64, 1.0);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_int_covers_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
