//! Offline shim for `rand` 0.8 (see `shims/README.md`).
//!
//! Provides the subset of the rand API this workspace uses: `RngCore`,
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}`, and
//! `distributions::{Distribution, Uniform, Standard}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — *not* the
//! upstream ChaCha12 `StdRng`, so streams differ from real `rand`, but
//! every in-repo use only needs reproducibility (same seed → same
//! stream), which holds.

pub mod distributions;
pub mod rngs;

/// Core randomness source: 64 bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Construct from OS entropy. Offline shim: uses the monotonic
    /// address-space entropy of a fresh allocation plus the process id —
    /// adequate for the non-cryptographic uses in this workspace.
    fn from_entropy() -> Self {
        let probe = Box::new(0u8);
        let seed = (&*probe as *const u8 as u64) ^ (std::process::id() as u64).rotate_left(32);
        Self::seed_from_u64(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        crate::distributions::unit_f64(self.next_u64()) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude-style re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}
