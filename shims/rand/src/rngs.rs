//! Generator implementations: xoshiro256** behind the `StdRng` and
//! `SmallRng` names.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used for key expansion from a 64-bit seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — fast, high-quality, 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot emit
        // four zeros in a row, so this is unreachable — assert anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256StarStar { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's standard reproducible generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256StarStar);

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng(Xoshiro256StarStar::from_u64(state))
    }
}

/// Small fast generator; identical to [`StdRng`] in this shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng(Xoshiro256StarStar);

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng(Xoshiro256StarStar::from_u64(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
