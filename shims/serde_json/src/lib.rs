//! Offline shim for `serde_json` 1 (see `shims/README.md`).
//!
//! Renders and parses the `serde` shim's [`Content`] tree as JSON.
//! Floats are printed with Rust's shortest round-trip formatting, so a
//! serialize → parse cycle reproduces every finite `f64` bit-for-bit.

use serde::{Content, Deserialize, Serialize};

/// JSON error (message only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Re-export of the intermediate tree under serde_json's `Value` name.
pub type Value = Content;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), None, 0)?;
    Ok(out)
}

/// Serialize to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    T::deserialize_content(&content).map_err(Error)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::Float(v) => {
            if !v.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {v}")));
            }
            // `{}` on f64 is the shortest representation that parses
            // back to the identical bits.
            out.push_str(&v.to_string());
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Content::Bool(true)),
            b'f' => self.parse_keyword("false", Content::Bool(false)),
            b'n' => self.parse_keyword("null", Content::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest.get(1).ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unpaired surrogate".into()))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", *other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bitwise() {
        for v in [
            0.0f64,
            1.5,
            -2.75,
            1.92e12,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e-300,
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn maps_and_seqs_round_trip() {
        let v: Vec<(usize, Option<f64>)> = vec![(1, Some(0.5)), (2, None)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,null]]");
        let back: Vec<(usize, Option<f64>)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_output_parses() {
        let v: Vec<(usize, Option<f64>)> = vec![(7, Some(1.25))];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(usize, Option<f64>)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<String>("{").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
