//! Offline shim for `parking_lot` 0.12 (see `shims/README.md`).
//!
//! Thin wrappers over the std primitives with parking_lot's
//! poison-free API: `lock()` returns the guard directly. A poisoned
//! std lock (a panic while held) is transparently recovered, matching
//! parking_lot's behavior of not poisoning at all.

use std::sync::{self, TryLockError};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; the guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot waits in place on `&mut guard`; std's wait
        // consumes and returns the guard, so temporarily move it out.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        // std does not report the count; parking_lot returns the number
        // of woken threads. Callers in this workspace ignore it.
        0
    }
}

/// Replace `*slot` through a by-value transform. Aborts on panic in `f`
/// (cannot happen for `Condvar::wait`, which only re-locks).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old))) {
            Ok(v) => v,
            Err(_) => std::process::abort(),
        };
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
