//! Offline shim for `serde` 1 (see `shims/README.md`).
//!
//! Instead of serde's visitor-based data model, this shim serializes
//! through a small JSON-shaped [`Content`] tree; the companion
//! `serde_json` shim renders and parses it. The derive macros (from the
//! `serde_derive` shim) cover the shapes this workspace uses: structs
//! with named fields, newtype structs, and unit-variant enums.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// View as an object's key/value list.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view widened to `f64` (exact for integers < 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::UInt(v) => Some(v as f64),
            Content::Int(v) => Some(v as f64),
            Content::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Integer view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::UInt(v) => Some(v),
            Content::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Integer view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::Int(v) => Some(v),
            _ => None,
        }
    }
}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Convert to the intermediate tree.
    fn serialize_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the intermediate tree.
    fn deserialize_content(c: &Content) -> Result<Self, String>;
}

/// Fetch + deserialize a named field from an object (derive helper).
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, String> {
    let c = map
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))?;
    T::deserialize_content(c).map_err(|e| format!("field `{name}`: {e}"))
}

/// Like [`field`], but a missing key yields `Default::default()` — the
/// behavior real serde gives fields annotated `#[serde(default)]`.
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    name: &str,
) -> Result<T, String> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, c)) => T::deserialize_content(c).map_err(|e| format!("field `{name}`: {e}")),
        None => Ok(T::default()),
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err("expected bool".into()),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                let v = c.as_u64().ok_or_else(|| "expected unsigned integer".to_string())?;
                <$t>::try_from(v).map_err(|_| "integer out of range".to_string())
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::UInt(v as u64) } else { Content::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                let v = c.as_i64().ok_or_else(|| "expected integer".to_string())?;
                <$t>::try_from(v).map_err(|_| "integer out of range".to_string())
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_f64().ok_or_else(|| "expected number".to_string())
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| "expected number".to_string())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| "expected string".to_string())
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_seq()
            .ok_or_else(|| "expected array".to_string())?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                let s = c.as_seq().ok_or_else(|| "expected tuple array".to_string())?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(format!("expected {expected}-tuple, got {} items", s.len()));
                }
                Ok(($($t::deserialize_content(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_map()
            .ok_or_else(|| "expected object".to_string())?
            .iter()
            .map(|(k, v)| V::deserialize_content(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // Deterministic output: sort keys like a BTreeMap.
        let mut pairs: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        c.as_map()
            .ok_or_else(|| "expected object".to_string())?
            .iter()
            .map(|(k, v)| V::deserialize_content(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize_content(&7u32.serialize_content()), Ok(7));
        assert_eq!(
            i32::deserialize_content(&(-7i32).serialize_content()),
            Ok(-7)
        );
        assert_eq!(
            f64::deserialize_content(&1.5f64.serialize_content()),
            Ok(1.5)
        );
        assert_eq!(
            String::deserialize_content(&"hi".to_string().serialize_content()),
            Ok("hi".to_string())
        );
        let v: Vec<(usize, Option<f64>)> = vec![(1, Some(2.0)), (3, None)];
        assert_eq!(
            Vec::<(usize, Option<f64>)>::deserialize_content(&v.serialize_content()),
            Ok(v)
        );
    }
}
