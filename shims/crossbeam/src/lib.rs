//! Offline shim for `crossbeam` 0.8 (see `shims/README.md`).
//!
//! Provides scoped threads (over `std::thread::scope`) and the
//! work-stealing deque types (`deque::{Worker, Stealer, Injector}`)
//! used by the simulated-GPU parallel executor. The deques are
//! mutex-based rather than lock-free — functionally identical
//! (exactly-once delivery, LIFO owner pops, FIFO steals), which is what
//! the executor's determinism argument relies on; only the contention
//! profile differs from upstream crossbeam.

pub mod deque;
pub mod thread;
