//! Work-stealing deques with the crossbeam-deque API shape.
//!
//! Mutex-based implementation: an owner [`Worker`] pushes and pops at
//! the back (LIFO — cache-warm work first), [`Stealer`]s take from the
//! front (FIFO — oldest work migrates). Every item is delivered exactly
//! once, which is the property the simulated-GPU executor's determinism
//! proof needs; lock-freedom is only a performance concern and is not
//! required at simulation scale.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// Transient contention; try again. (Never produced by this shim —
    /// the mutex always resolves — but kept for API compatibility.)
    Retry,
}

impl<T> Steal<T> {
    /// `Some(item)` on success.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// True when the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// Owner end of a work-stealing deque.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// New LIFO worker queue (the only flavor the executor uses).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// New FIFO worker queue.
    pub fn new_fifo() -> Self {
        // Pop side is chosen per call in this shim; construction is
        // identical.
        Self::new_lifo()
    }

    /// Push work onto the owner end.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Pop the most recently pushed item (owner side, LIFO).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Create a stealer handle for other workers.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// Thief end of a work-stealing deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest queued item (FIFO side).
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

/// Shared FIFO injector queue (global submission side).
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push work into the global queue.
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn every_item_delivered_exactly_once_under_contention() {
        const N: usize = 10_000;
        let inj = Injector::new();
        for i in 0..N {
            inj.push(i);
        }
        let seen = Mutex::new(HashSet::new());
        let count = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| loop {
                    match inj.steal() {
                        Steal::Success(v) => {
                            assert!(lock(&seen).insert(v), "duplicate delivery of {v}");
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), N);
    }
}
