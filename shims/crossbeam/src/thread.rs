//! Scoped threads with crossbeam's `Result`-returning API, implemented
//! over `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope result: `Err` carries the payload of the first child panic.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Handle to the spawn API inside a [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result (`Err` on panic).
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam
    /// convention — usually ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned.
/// All spawned threads are joined before this returns. Returns `Err`
/// with the panic payload if any unjoined child panicked (crossbeam
/// semantics; std would propagate the panic instead).
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(chunk.iter().sum::<u64>() as usize, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
