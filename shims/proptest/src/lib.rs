//! Offline shim for `proptest` 1 (see `shims/README.md`).
//!
//! Samples strategies with a deterministic per-test RNG (seeded from
//! the test's module path and case index) instead of proptest's
//! adaptive runner. There is **no shrinking**: a failing case panics
//! with the sampled values still bound, so the assertion message plus
//! the deterministic seed reproduce it exactly.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then sample the strategy `f` builds from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + (rng.next_u64() % (span + 1)) as $t
                    }
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                    }
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (field-update syntax compatible).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before the test
        /// aborts.
        pub max_global_rejects: u32,
        /// Unused (shrinking is not implemented); kept for source
        /// compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
                max_shrink_iters: 0,
            }
        }
    }

    /// Marker returned by `prop_assume!` when a case is discarded.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejection;

    /// Deterministic per-test RNG (SplitMix64 over a name-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        base: u64,
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (the test's module path + name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { base: h, state: h }
        }

        /// Rewind to the start of case `case` (cases are independent).
        pub fn reseed_case(&mut self, case: u64) {
            self.state = self
                .base
                .wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `pat in strategy` binding is sampled per
/// case; the body runs `config.cases` times with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    rng.reseed_case(case);
                    case += 1;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::Rejection> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(_) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "too many prop_assume! rejections ({rejected}) in {}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejection);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("shim::ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = Strategy::sample(&(0usize..=5), &mut rng);
            assert!(i <= 5);
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = TestRng::deterministic("shim::det");
        let mut b = TestRng::deterministic("shim::det");
        a.reseed_case(4);
        b.reseed_case(4);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("shim::vec");
        let strat = (2usize..8).prop_flat_map(|n| (Just(n), 0usize..=n));
        for _ in 0..200 {
            let (n, k) = Strategy::sample(&strat, &mut rng);
            assert!(k <= n);
            let v = Strategy::sample(&crate::collection::vec(0.0f64..1.0, 1..5), &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: bindings, assume, and assertions.
        fn macro_works((n, k) in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..10)),
                       x in 0.0f64..1.0) {
            prop_assume!(k < n);
            prop_assert!(k < n);
            prop_assert_eq!(n, n, "n={} k={} x={}", n, k, x);
        }
    }
}
